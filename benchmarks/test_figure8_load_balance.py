"""Benchmark: Figure 8 — fish per-epoch time with and without load balancing.

After the initial rebalancing epoch, the balanced configuration's epochs are
consistently cheaper than the unbalanced one's, whose epochs reflect most of
the school being simulated by a couple of workers.
"""

import pytest

from repro.harness import run_figure8


def test_figure8_smoke_tiny(once):
    """Tiny-size smoke: per-epoch accounting is produced for both arms."""
    result = once(
        run_figure8, workers=4, num_fish=80, epochs=2, ticks_per_epoch=2, seed=47
    )
    rows = result.rows()
    assert len(rows) == 2
    assert all(row["seconds_lb"] > 0 and row["seconds_no_lb"] > 0 for row in rows)


@pytest.mark.slow
def test_figure8_epoch_times(once):
    result = once(
        run_figure8, workers=16, num_fish=800, epochs=8, ticks_per_epoch=3, seed=47
    )
    print()
    print(result.format_table())

    rows = result.rows()
    assert len(rows) == 8
    later_lb = [row["seconds_lb"] for row in rows[1:]]
    later_no_lb = [row["seconds_no_lb"] for row in rows[1:]]
    # Balanced epochs are cheaper once the first rebalance has happened...
    assert sum(later_lb) < sum(later_no_lb)
    # ...and stay essentially flat (no epoch twice as expensive as the cheapest).
    assert max(later_lb) < 2.5 * min(later_lb)
