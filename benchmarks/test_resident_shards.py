"""Benchmark: resident shards ship boundary deltas, not the world.

The collocation argument of the paper, measured for real: with resident
worker shards (the process backend's default), the driver exchanges only
migrations, boundary replicas and effect partials with the pool processes
each tick.  This benchmark grows the world while holding the partition
*boundary* constant — a strip world whose length scales with the population
at fixed density — and checks that the measured per-tick IPC bytes track the
boundary, not the agent count.  The legacy ship-everything path's traffic is
modeled from the same worlds for comparison (it pickles every owned agent
every tick, so it scales linearly with the population).

World geometry: agents are spread along the x axis of a ``length x 30`` box
at a constant ~0.5 agents per unit of length, partitioned into 4 strips.
Each strip edge sees a fixed-width visibility band (Boid visibility is 10),
so replicas per tick stay roughly constant as the world grows.
"""

import pickle
import statistics

import numpy as np
import pytest

from benchmarks._bench_io import write_bench
from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.core.world import World
from repro.harness.common import format_table
from repro.spatial.bbox import BBox

from tests.conftest import Boid

NUM_WORKERS = 4
TICKS = 3
SEED = 19
#: Agents per unit of world length: fixed, so boundary population is fixed.
LINEAR_DENSITY = 0.5
SIZES = (150, 600)


def build_strip_world(num_agents: int, seed: int = SEED) -> World:
    """A long thin Boid world whose length grows with the population."""
    length = num_agents / LINEAR_DENSITY
    world = World(bounds=BBox(((0.0, length), (0.0, 30.0))), seed=seed)
    rng = np.random.default_rng(seed)
    slot = length / num_agents
    for index in range(num_agents):
        world.add_agent(
            Boid(
                x=min((index + float(rng.uniform(0.0, 1.0))) * slot, length - 1e-6),
                y=float(rng.uniform(0.0, 30.0)),
                vx=float(rng.uniform(-1.0, 1.0)),
                vy=float(rng.uniform(-1.0, 1.0)),
            )
        )
    return world


def run_resident(num_agents: int):
    """Run the resident process backend; returns measured per-tick numbers."""
    world = build_strip_world(num_agents)
    config = BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=1000,  # no epoch events inside the measurement
        load_balance=False,
        executor="process",
        max_workers=NUM_WORKERS,
    )
    with Simulation.from_agents(world, config=config) as session:
        session.runtime.run_tick()  # warm the pools and seed the shards
        session.run(TICKS)
        ticks = session.metrics.ticks[1:]
        assert all(tick.resident for tick in ticks)
        per_tick_ipc = statistics.mean(tick.ipc_bytes_total for tick in ticks)
        boundary = statistics.mean(
            tick.replicas_created + tick.agents_migrated for tick in ticks
        )
    return world, per_tick_ipc, boundary


def modeled_legacy_bytes(world: World) -> int:
    """Per-tick bytes the legacy path ships: every owned agent, pickled.

    The pre-resident process backend pickled each worker's full owned and
    replica lists to the pool every tick; the owned agents alone are a lower
    bound, which is all the comparison needs.
    """
    return len(pickle.dumps(world.agents(), pickle.HIGHEST_PROTOCOL))


def test_ipc_scales_with_boundary_not_world(once):
    def measure():
        rows = []
        for num_agents in SIZES:
            world, per_tick_ipc, boundary = run_resident(num_agents)
            rows.append(
                {
                    "agents": num_agents,
                    "ipc_per_tick": per_tick_ipc,
                    "boundary": boundary,
                    "legacy_model": modeled_legacy_bytes(world),
                }
            )
        return rows

    rows = once(measure)
    write_bench("resident_shards", rows, ticks=TICKS, workers=NUM_WORKERS)
    print()
    print(
        format_table(
            ["Agents", "Boundary (replicas+migrations)", "Resident IPC/tick", "Legacy model/tick"],
            [
                [
                    row["agents"],
                    f"{row['boundary']:.0f}",
                    f"{row['ipc_per_tick']:.0f} B",
                    f"{row['legacy_model']} B",
                ]
                for row in rows
            ],
            title="Per-tick driver<->shard traffic vs world size (4 strips, fixed density)",
        )
    )

    small, large = rows
    world_growth = large["agents"] / small["agents"]
    ipc_growth = large["ipc_per_tick"] / small["ipc_per_tick"]
    legacy_growth = large["legacy_model"] / small["legacy_model"]

    # The partition boundary barely moves as the world quadruples...
    assert large["boundary"] < 2.0 * small["boundary"]
    # ...and the measured IPC follows the boundary, not the world.
    assert ipc_growth < 0.5 * world_growth, (
        f"resident IPC grew {ipc_growth:.2f}x for {world_growth:.0f}x more agents"
    )
    # The legacy ship-everything model is world-bound (sanity of the model)...
    assert legacy_growth > 0.8 * world_growth
    # ...and at scale the deltas are much cheaper than shipping the world.
    assert large["ipc_per_tick"] < 0.5 * large["legacy_model"]


def test_resident_benchmark_world_is_bit_identical_to_serial():
    """The measured configuration still produces exact serial results."""
    process_world, _, _ = run_resident(SIZES[0])
    serial_world = build_strip_world(SIZES[0])
    config = BraceConfig(
        num_workers=NUM_WORKERS, ticks_per_epoch=1000, load_balance=False
    )
    with Simulation.from_agents(serial_world, config=config) as session:
        session.run(TICKS + 1)
    assert serial_world.same_state_as(process_world, tolerance=0.0)
