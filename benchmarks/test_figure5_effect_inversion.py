"""Benchmark: Figure 5 — predator throughput under the four optimizations.

No-Opt, Idx-Only, Inv-Only and Idx+Inv on a 16-worker BRACE cluster.  The
paper reports that effect inversion improves throughput by more than 20%
with indexing enabled and noticeably without it; indexing always helps.
"""

from repro.harness import run_figure5


def test_figure5_effect_inversion(once):
    result = once(run_figure5, num_fish=600, workers=16, ticks=5, seed=23)
    print()
    print(result.format_table())
    print(
        f"inversion improvement: {result.improvement_from_inversion(False):+.1%} (no index), "
        f"{result.improvement_from_inversion(True):+.1%} (with index)"
    )

    throughputs = result.throughputs
    assert throughputs["Idx-Only"] > throughputs["No-Opt"]
    assert throughputs["Idx+Inv"] > throughputs["Inv-Only"]
    assert throughputs["Inv-Only"] > throughputs["No-Opt"]
    assert throughputs["Idx+Inv"] == max(throughputs.values())
    # Effect inversion is worth a double-digit percentage with indexing on.
    assert result.improvement_from_inversion(with_index=True) > 0.10
    assert result.improvement_from_inversion(with_index=False) > 0.0
