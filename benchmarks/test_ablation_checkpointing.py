"""Ablation: checkpoint interval versus failure-recovery cost.

Checkpointing every epoch costs virtual time but bounds how many ticks are
lost when a failure strikes; checkpointing rarely is cheap but loses more
work.  This ablation measures both sides of the trade-off the paper cites
(tuning the checkpoint interval to minimise expected runtime).
"""

from repro.api import Simulation
from repro.brace.checkpoint import FailureInjector
from repro.brace.config import BraceConfig

from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


def _run(checkpoint_interval, ticks=12, workers=8, num_fish=320, seed=13,
         failure_probability=0.0):
    parameters = CouzinParameters(seed_region=300.0)
    fish_class = make_fish_class(parameters)
    world = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
    config = BraceConfig(
        num_workers=workers,
        ticks_per_epoch=2,
        checkpointing=True,
        checkpoint_interval_epochs=checkpoint_interval,
        load_balance=False,
        check_visibility=False,
    )
    with Simulation.from_agents(world, config=config) as session:
        # Failure injection drives the runtime directly (the session's
        # escape hatch); plain runs use the unified API.
        runtime = session.runtime
        if failure_probability > 0:
            runtime.run_with_failures(ticks, FailureInjector(failure_probability, seed=seed))
        else:
            session.run(ticks)
    return {
        "virtual_seconds": runtime.metrics.total_virtual_seconds,
        "checkpoints": runtime.master.checkpoint_manager.total_checkpoints,
        "final_tick": world.tick,
    }


def test_ablation_checkpoint_interval(once):
    def sweep():
        return {
            "every epoch": _run(checkpoint_interval=1),
            "every 2 epochs": _run(checkpoint_interval=2),
            "every 4 epochs": _run(checkpoint_interval=4),
            "every epoch + failures": _run(checkpoint_interval=1, failure_probability=0.15),
        }

    results = once(sweep)
    print()
    for name, metrics in results.items():
        print(f"  {name:24s} checkpoints={metrics['checkpoints']:2d}"
              f"  virtual={metrics['virtual_seconds']:.4f}s  tick={metrics['final_tick']}")

    assert results["every epoch"]["checkpoints"] > results["every 4 epochs"]["checkpoints"]
    # Every run, including the one with injected failures, reaches the target tick.
    assert all(metrics["final_tick"] == 12 for metrics in results.values())
