"""Benchmark: compiled plan kernels vs the interpreted BRASIL evaluator.

The plan kernels (:mod:`repro.brasil.kernels`) replace the per-agent tree
walk over the query/update plans with whole-phase columnar passes: one
scatter-add per inverted effect, one segment reduction per aggregate, one
vector expression per update rule.  This benchmark times the fish-school
script whole-tick — spatial join, query phase, effect routing and update
phase together — under both settings of ``plan_backend``:

* ``interpreted`` — the reference evaluator, one Python plan walk per
  agent per phase;
* ``compiled`` — the columnar kernels over the structure-of-arrays agent
  table (:mod:`repro.core.soa`).

Both backends produce bit-identical final states (asserted here); only the
speed differs.  The full-size configuration (10k agents, ``-m slow``) must
show at least a 3x whole-tick speedup; the tiny smoke configuration runs on
every CI push, writes ``BENCH_plan_compile.json`` and fails whenever the
compiled path is *slower* than the interpreter — the perf-regression guard.
"""

import time

import pytest

from benchmarks._bench_io import write_bench
from repro.api import Simulation
from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

SEED = 1
#: Whole ticks per timing sample: enough to amortize the first-tick index
#: build without turning the interpreted 10k run into a minutes-long wait.
TICKS = 3
#: Wall-clock best-of; keeps CI noise down.
TIMING_ROUNDS = 2


def tick_seconds(num_agents, plan_backend):
    """Best-of wall-clock seconds for ``TICKS`` whole ticks on ``plan_backend``."""
    best = float("inf")
    states = None
    for _ in range(TIMING_ROUNDS):
        session = (
            Simulation.from_script(FISH_SCHOOL_SCRIPT, num_agents=num_agents, seed=SEED)
            .with_workers(1)
            .with_plan_backend(plan_backend)
        )
        with session:
            start = time.perf_counter()
            session.run(TICKS)
            best = min(best, time.perf_counter() - start)
            states = session.states()
    return best, states


def run_comparison(num_agents):
    """Time both plan backends on the same world; assert identical results."""
    interpreted_seconds, interpreted_states = tick_seconds(num_agents, "interpreted")
    compiled_seconds, compiled_states = tick_seconds(num_agents, "compiled")
    assert compiled_states == interpreted_states
    return {
        "agents": num_agents,
        "ticks": TICKS,
        "interpreted_seconds": interpreted_seconds,
        "compiled_seconds": compiled_seconds,
        "interpreted_ticks_per_sec": TICKS / interpreted_seconds,
        "compiled_ticks_per_sec": TICKS / compiled_seconds,
        "speedup": interpreted_seconds / compiled_seconds,
    }


def write_results(rows):
    """Persist the measurements for the CI perf-regression job to archive."""
    write_bench("plan_compile", rows)


class TestPlanCompileSmoke:
    """Tiny configuration: runs on every push, guards against regressions."""

    def test_compiled_not_slower_and_identical(self, once):
        row = once(run_comparison, 2000)
        write_results([row])
        # The regression bar for CI: the compiled plan must never lose to
        # the interpreter at smoke size (it wins comfortably locally; a
        # ratio below 1.0 means the kernel path rotted).
        assert row["speedup"] >= 1.0, (
            f"compiled plan slower than interpreted: {row['speedup']:.2f}x"
        )


class TestPlanCompileFull:
    """Paper-scale configuration: the >=3x whole-tick compilation claim."""

    @pytest.mark.slow
    def test_ten_thousand_agent_tick_speedup(self, once):
        row = once(run_comparison, 10_000)
        write_results([row])
        assert row["speedup"] >= 3.0, (
            f"expected >=3x on 10k-agent fish whole ticks, got {row['speedup']:.2f}x "
            f"(interpreted {row['interpreted_seconds']:.3f}s, "
            f"compiled {row['compiled_seconds']:.3f}s)"
        )
