"""Benchmark: the cluster backend ships boundary deltas over sockets.

The collocation argument survives the move from shared memory to TCP: a
cluster run hosts the resident shards in socket-connected node processes,
but each tick still crosses the wire as the same three-round columnar
delta frames the process backend uses.  This benchmark reuses the
strip-world methodology of :mod:`benchmarks.test_resident_shards` — grow
the world at fixed density so the partition *boundary* stays constant —
and checks that the measured per-tick socket bytes track the boundary,
not the agent count: quadrupling the population must not grow the
traffic by more than ~10%.

The equivalence half pins the correctness bar the numbers stand on:
cluster runs (including one with a forced mid-run shard migration
between nodes) are bit-identical to serial on both evaluation models.
"""

import statistics

import pytest

from benchmarks._bench_io import write_bench
from benchmarks.test_resident_shards import build_strip_world
from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.harness.common import format_table
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.traffic.workload import build_traffic_world

NUM_WORKERS = 4
NUM_NODES = 2
TICKS = 3
#: 4x population growth at fixed density (and so a fixed strip boundary).
SIZES = (150, 600)
#: Socket traffic may grow this much while the world quadruples.
MAX_BYTE_GROWTH = 1.1


def cluster_config(**overrides) -> BraceConfig:
    return BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=1000,  # no epoch events inside the measurement
        load_balance=False,
        executor="cluster",
        max_workers=NUM_WORKERS,
        cluster_nodes=NUM_NODES,
        heartbeat_interval_seconds=0.1,
        **overrides,
    )


def run_cluster(num_agents: int):
    """Run the cluster backend on the strip world; returns per-tick bytes."""
    world = build_strip_world(num_agents)
    with Simulation.from_agents(world, config=cluster_config()) as session:
        session.runtime.run_tick()  # spawn the nodes and seed the shards
        session.run(TICKS)
        ticks = session.metrics.ticks[1:]
        assert all(tick.resident for tick in ticks)
        per_tick_bytes = statistics.mean(tick.ipc_bytes_total for tick in ticks)
        boundary = statistics.mean(
            tick.replicas_created + tick.agents_migrated for tick in ticks
        )
    return per_tick_bytes, boundary


def test_socket_bytes_scale_with_boundary_not_world(once):
    def measure():
        rows = []
        for num_agents in SIZES:
            per_tick_bytes, boundary = run_cluster(num_agents)
            rows.append(
                {
                    "agents": num_agents,
                    "socket_bytes_per_tick": per_tick_bytes,
                    "boundary": boundary,
                }
            )
        return rows

    rows = once(measure)
    write_bench(
        "cluster", rows, ticks=TICKS, workers=NUM_WORKERS, nodes=NUM_NODES
    )
    print()
    print(
        format_table(
            ["Agents", "Boundary (replicas+migrations)", "Socket bytes/tick"],
            [
                [
                    row["agents"],
                    f"{row['boundary']:.0f}",
                    f"{row['socket_bytes_per_tick']:.0f} B",
                ]
                for row in rows
            ],
            title="Per-tick driver<->node socket traffic vs world size "
            f"({NUM_WORKERS} strips on {NUM_NODES} nodes, fixed density)",
        )
    )

    small, large = rows
    world_growth = large["agents"] / small["agents"]
    byte_growth = large["socket_bytes_per_tick"] / small["socket_bytes_per_tick"]
    # The boundary barely moves as the world quadruples...
    assert large["boundary"] < 2.0 * small["boundary"]
    # ...and the socket traffic follows the boundary, not the world.
    assert byte_growth < MAX_BYTE_GROWTH, (
        f"cluster socket bytes grew {byte_growth:.2f}x for "
        f"{world_growth:.0f}x more agents"
    )


class TestClusterBitIdenticalWithMigration:
    """The measured backend is exact, even across a physical migration."""

    @pytest.mark.parametrize("model", ["fish", "traffic"])
    def test_matches_serial_with_forced_mid_run_migration(self, model):
        if model == "fish":
            # The importable module-level Fish: dynamic classes cannot
            # cross a node boundary by reference.
            build = lambda: build_fish_world(48, seed=7, fish_class=Fish)  # noqa: E731
        else:
            build = lambda: build_traffic_world(seed=11, num_vehicles=80)  # noqa: E731

        serial_world = build()
        serial_config = BraceConfig(
            num_workers=NUM_WORKERS, ticks_per_epoch=1000, load_balance=False
        )
        with BraceRuntime(serial_world, serial_config) as runtime:
            runtime.run(2 * TICKS)

        cluster_world = build()
        with BraceRuntime(cluster_world, cluster_config()) as runtime:
            runtime.run(TICKS)
            shard_id = 0
            source = runtime.executor.shard_node(shard_id)
            destination = (source + 1) % NUM_NODES
            moved_bytes = runtime.migrate_shard(shard_id, destination)
            assert moved_bytes > 0
            assert runtime.executor.shard_node(shard_id) == destination
            runtime.run(TICKS)
        assert serial_world.same_state_as(cluster_world, tolerance=0.0)
