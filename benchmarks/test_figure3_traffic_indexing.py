"""Benchmark: Figure 3 — traffic single-node time vs segment length.

The un-indexed engine grows roughly quadratically with segment length, the
indexed engine log-linearly, and the hand-coded baseline stays fastest —
the same ordering and growth shape the paper reports.
"""

from repro.harness import run_figure3


def test_figure3_indexing_vs_segment_length(once):
    result = once(
        run_figure3, segment_lengths=(500.0, 1000.0, 2000.0, 4000.0), ticks=8, seed=11
    )
    print()
    print(result.format_table())

    rows = result.rows()
    largest = rows[-1]
    # Ordering at the largest segment: MITSIM < BRACE-indexing < BRACE-no-indexing.
    assert largest["mitsim_seconds"] < largest["brace_index_seconds"]
    assert largest["brace_index_seconds"] < largest["brace_no_index_seconds"]

    # Growth: the un-indexed curve grows much faster than the indexed one.
    no_index_growth = rows[-1]["brace_no_index_seconds"] / rows[0]["brace_no_index_seconds"]
    index_growth = rows[-1]["brace_index_seconds"] / rows[0]["brace_index_seconds"]
    assert no_index_growth > 1.5 * index_growth
