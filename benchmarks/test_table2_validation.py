"""Benchmark: Table 2 — RMSPE validation of the traffic model.

Regenerates the paper's Table 2 (per-lane RMSPE between the agent
implementation and the hand-coded MITSIM-style baseline) and prints the same
rows.  The paper reports strong agreement on velocity and density with a
larger error on the sparsely used right-most lane.
"""

from repro.harness import run_table2


def test_table2_rmspe_validation(once):
    result = once(run_table2, segment_length=2000.0, ticks=60, seed=17)
    print()
    print(result.format_table())

    rows = result.rows()
    assert len(rows) == 4
    # Velocities agree to within a few percent on every lane.
    assert all(row["average_velocity_rmspe"] < 10.0 for row in rows)
    # Densities agree on the busy lanes (the right-most lane is sparse and noisy).
    busy = rows[:-1]
    assert all(row["average_density_rmspe"] < 25.0 for row in busy)
