"""Benchmark: Figure 7 — fish scale-up with and without load balancing.

The school is concentrated in a small part of the ocean, so without load
balancing only a few strips do any work and throughput stops growing; with
the one-dimensional load balancer throughput keeps growing with the cluster.
"""

import pytest

from repro.harness import run_figure7


def test_figure7_smoke_tiny(once):
    """Tiny-size smoke: both load-balancing arms of the harness run."""
    result = once(
        run_figure7,
        worker_counts=(1, 4),
        fish_per_worker=15,
        ticks=2,
        ticks_per_epoch=1,
        seed=41,
    )
    rows = result.rows()
    assert len(rows) == 2
    assert all(row["throughput_lb"] > 0 and row["throughput_no_lb"] > 0 for row in rows)


@pytest.mark.slow
def test_figure7_fish_scaleup(once):
    result = once(
        run_figure7,
        worker_counts=(1, 2, 4, 8, 16, 24),
        fish_per_worker=50,
        ticks=6,
        ticks_per_epoch=2,
        seed=41,
    )
    print()
    print(result.format_table())

    rows = result.rows()
    largest = rows[-1]
    # Load balancing wins at scale.
    assert largest["throughput_lb"] > largest["throughput_no_lb"]
    # The balanced curve keeps growing from the smallest to the largest cluster.
    assert largest["throughput_lb"] > 2.0 * rows[0]["throughput_lb"]
    # The unbalanced curve falls well short of the balanced one at scale.
    assert largest["throughput_no_lb"] < 0.9 * largest["throughput_lb"]
