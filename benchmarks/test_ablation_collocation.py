"""Ablation: collocation of map and reduce tasks.

BRACE collocates the map and reduce tasks of a partition on the same worker,
so agents that stay in their partition never touch the network — only
replicas, migrations and effect partials do.  This ablation estimates what a
non-collocated runtime would pay: every owned agent would additionally be
shipped to its reducer every tick.
"""

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


def test_ablation_collocation(once):
    parameters = CouzinParameters(seed_region=400.0)
    fish_class = make_fish_class(parameters)
    config = BraceConfig(num_workers=16, load_balance=False, check_visibility=False,
                         ticks_per_epoch=5)

    def run():
        world = build_fish_world(800, parameters, seed=21, fish_class=fish_class)
        with Simulation.from_agents(world, config=config) as session:
            return session.run(5), world

    result, world = once(run)

    actual_bytes = result.bytes_over_network()
    # Without collocation every owned agent would cross the network once per tick.
    agent_size = world.agents()[0].approximate_size_bytes()
    hypothetical_extra = sum(stats.num_agents for stats in result.metrics.ticks) * agent_size
    bandwidth = config.bandwidth_bytes_per_second
    extra_seconds = hypothetical_extra / bandwidth / config.num_workers
    actual_seconds = result.metrics.total_virtual_seconds
    degraded_throughput = result.metrics.total_agent_ticks / (actual_seconds + extra_seconds)

    print()
    print(f"  collocated:      {result.throughput():12,.0f} agent ticks/s, "
          f"{actual_bytes:,} bytes over the network")
    print(f"  non-collocated*: {degraded_throughput:12,.0f} agent ticks/s "
          f"(+{hypothetical_extra:,} bytes)   *estimated")

    # Collocation saves real traffic: the hypothetical extra volume dwarfs the
    # replication traffic the collocated runtime actually pays.
    assert hypothetical_extra > actual_bytes
    assert result.throughput() > degraded_throughput
