"""Benchmark: Figure 6 — traffic scale-up.

Problem size grows with the worker count; throughput should grow nearly
linearly because the uniform traffic keeps every strip equally loaded even
without load balancing.
"""

import pytest

from repro.harness import run_figure6


def test_figure6_smoke_tiny(once):
    """Tiny-size smoke: the harness still runs end to end and scales up."""
    result = once(
        run_figure6,
        worker_counts=(1, 4),
        vehicles_per_worker=20,
        ticks=2,
        seed=31,
    )
    throughputs = result.throughputs
    assert len(throughputs) == 2
    assert throughputs[-1] > throughputs[0]


@pytest.mark.slow
def test_figure6_traffic_scaleup(once):
    result = once(
        run_figure6,
        worker_counts=(1, 2, 4, 8, 16, 24, 32, 36),
        vehicles_per_worker=80,
        ticks=3,
        seed=31,
    )
    print()
    print(result.format_table())

    throughputs = result.throughputs
    # Monotone growth with the cluster size.
    assert all(later > earlier for earlier, later in zip(throughputs, throughputs[1:]))
    # Large configurations stay well above half of the ideal linear scale-up
    # once communication is part of the picture.
    efficiencies = [row["scaleup_efficiency"] for row in result.rows()]
    assert all(efficiency > 0.45 for efficiency in efficiencies[2:])
    # 36 workers deliver at least 15x the single-worker throughput.
    assert throughputs[-1] > 15 * throughputs[0]
