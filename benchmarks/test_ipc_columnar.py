"""Benchmark: columnar delta frames vs pickled protocol objects.

The resident process backend ships three payload families per tick —
replica maps, routed effect partials, and spawn/kill results.  The
``"pickle"`` IPC backend pickles the protocol objects whole; the
``"columnar"`` backend re-encodes them as SoA delta frames, ships replicas
as :class:`~repro.ipc.frames.ReplicaDelta` rows (only what each
destination doesn't already hold), and routes still-packed frames through
the driver without decoding them.

The workload is the regime the wire format exists for: wide-state
"sensor" agents with unbounded visibility, so every agent replicates to
every other shard and the replica map dwarfs the rest of the traffic.  A
sparse active fraction (1 in 16) drifts each tick, exercising the
changed-row resend path; the dormant majority is exactly what the delta
protocol avoids reshipping.  Both backends are timed interleaved
(pickle, columnar, pickle, ...) and compared round-by-round, because a
busy single-core host shifts absolute wall-clock between rounds far more
than it shifts the within-round ratio.

Measurements land in ``BENCH_ipc.json`` for the CI ``ipc-perf-smoke``
job; the slow configuration asserts the headline bar — columnar at least
1.5x faster per tick, with fewer measured bytes on the wire.
"""

import statistics
import time

import numpy as np
import pytest

from benchmarks._bench_io import write_bench
from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.core.agent import Agent
from repro.core.fields import StateField
from repro.core.world import World
from repro.harness.common import format_table
from repro.spatial.bbox import BBox

NUM_WORKERS = 4
SEED = 19
#: 1 in ACTIVE_STRIDE agents rewrites its state each tick; the rest hold
#: every field object steady, so their replica rows never reship.
ACTIVE_STRIDE = 16
PAYLOAD_FIELDS = 48

WORLD_WIDTH = 30.0
WORLD_LENGTH = 400.0


def _sensor_namespace() -> dict:
    namespace = {
        "__doc__": "Wide-state agent whose replicas dominate tick traffic.",
        # Built through the metaclass call, __module__ would otherwise point
        # at the metaclass's frame — pin it so pickle finds the class here.
        "__module__": __name__,
        "__qualname__": "Sensor",
        "x": StateField(0.0, spatial=True, visibility=None, reachability=2.0),
        "y": StateField(0.0, spatial=True, visibility=None, reachability=2.0),
        "update": _sensor_update,
    }
    for index in range(PAYLOAD_FIELDS):
        namespace[f"f{index}"] = StateField(0.0)
    return namespace


def _sensor_update(self, ctx):
    if self.agent_id % ACTIVE_STRIDE == 0:
        self.x = min(self.x + 0.125, WORLD_LENGTH - 1e-6)
        self.f0 = self.f0 + 0.001


#: Built via ``type`` so the 50 fields don't need 50 assignment lines; the
#: module-level binding keeps the class importable (process-pool picklable).
Sensor = type(Agent)("Sensor", (Agent,), _sensor_namespace())


def build_sensor_world(num_agents: int, seed: int = SEED) -> World:
    world = World(bounds=BBox(((0.0, WORLD_LENGTH), (0.0, WORLD_WIDTH))), seed=seed)
    rng = np.random.default_rng(seed)
    slot = WORLD_LENGTH / num_agents
    for index in range(num_agents):
        payload = {
            f"f{j}": float(rng.uniform(0.0, 1.0)) for j in range(PAYLOAD_FIELDS)
        }
        world.add_agent(
            Sensor(
                x=min((index + float(rng.uniform(0.0, 1.0))) * slot, WORLD_LENGTH - 1e-6),
                y=float(rng.uniform(0.0, WORLD_WIDTH)),
                **payload,
            )
        )
    return world


def run_backend(ipc_backend: str, num_agents: int, ticks: int):
    """One timed run; returns (world, seconds/tick, bytes/tick, phases)."""
    world = build_sensor_world(num_agents)
    config = BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=1000,  # no epoch events inside the measurement
        load_balance=False,
        executor="process",
        max_workers=NUM_WORKERS,
        ipc_backend=ipc_backend,
        spatial_backend="python",
    )
    with Simulation.from_agents(world, config=config) as session:
        session.runtime.run_tick()  # warm the pools and seed the shards
        start = time.perf_counter()
        session.run(ticks)
        seconds_per_tick = (time.perf_counter() - start) / ticks
        assert all(tick.resident for tick in session.metrics.ticks)
        bytes_per_tick = session.metrics.mean_ipc_bytes_per_tick(skip_ticks=1)
        phases = session.metrics.ipc_phase_breakdown(skip_ticks=1)
    return world, seconds_per_tick, bytes_per_tick, phases


def measure_interleaved(num_agents: int, ticks: int, rounds: int):
    """Interleave backends and keep per-round ratios (noise-robust)."""
    # The process's very first pool spawn pays import and page-fault costs
    # that later spawns don't; burn them in an untimed round per backend.
    run_backend("pickle", min(num_agents, 200), 1)
    run_backend("columnar", min(num_agents, 200), 1)
    pickle_rows, columnar_rows, ratios = [], [], []
    worlds = {}
    for _ in range(rounds):
        worlds["pickle"], pickle_wall, pickle_bytes, _ = run_backend(
            "pickle", num_agents, ticks
        )
        worlds["columnar"], columnar_wall, columnar_bytes, phases = run_backend(
            "columnar", num_agents, ticks
        )
        pickle_rows.append((pickle_wall, pickle_bytes))
        columnar_rows.append((columnar_wall, columnar_bytes))
        ratios.append(pickle_wall / columnar_wall)
    # Host noise is additive (a busy core only ever makes a round slower),
    # so the minimum wall per backend is the noise floor — the speedup of
    # the floors is far more stable than any single round's ratio.
    pickle_floor = min(wall for wall, _ in pickle_rows)
    columnar_floor = min(wall for wall, _ in columnar_rows)
    return {
        "agents": num_agents,
        "ticks": ticks,
        "rounds": rounds,
        "pickle_seconds_per_tick": pickle_floor,
        "columnar_seconds_per_tick": columnar_floor,
        "pickle_bytes_per_tick": pickle_rows[-1][1],
        "columnar_bytes_per_tick": columnar_rows[-1][1],
        "speedup": pickle_floor / columnar_floor,
        "speedup_median": statistics.median(ratios),
        "columnar_serialize_seconds_per_tick": phases["serialize"] / ticks,
        "worlds": worlds,
    }


def report(rows: list[dict]) -> None:
    print()
    print(
        format_table(
            ["Agents", "Pickle s/tick", "Columnar s/tick", "Speedup (min/med)", "Bytes pickle", "Bytes columnar"],
            [
                [
                    row["agents"],
                    f"{row['pickle_seconds_per_tick']:.3f}",
                    f"{row['columnar_seconds_per_tick']:.3f}",
                    f"{row['speedup']:.2f} / {row['speedup_median']:.2f}",
                    f"{row['pickle_bytes_per_tick']:.0f} B",
                    f"{row['columnar_bytes_per_tick']:.0f} B",
                ]
                for row in rows
            ],
            title="Per-tick wall-clock and wire bytes: pickle vs columnar IPC",
        )
    )


def persist(rows: list[dict]) -> None:
    write_bench(
        "ipc",
        [{key: value for key, value in row.items() if key != "worlds"} for row in rows],
        workers=NUM_WORKERS,
        agent="Sensor",
        payload_fields=PAYLOAD_FIELDS,
        active_stride=ACTIVE_STRIDE,
    )


def test_columnar_never_slower_at_smoke_scale(once):
    row = once(measure_interleaved, num_agents=600, ticks=3, rounds=4)
    report([row])
    persist([row])
    # The wire carries strictly less: byte counts are deterministic.
    assert row["columnar_bytes_per_tick"] < row["pickle_bytes_per_tick"]
    # Wall-clock is noisy on a shared host; the noise floors must still
    # come out at least even.
    assert row["speedup"] >= 1.0, f"columnar slower: {row['speedup']:.2f}x"
    # The measured configuration stays bit-identical across wire formats.
    assert row["worlds"]["pickle"].same_state_as(
        row["worlds"]["columnar"], tolerance=0.0
    )


@pytest.mark.slow
def test_columnar_beats_pickle_at_scale(once):
    row = once(measure_interleaved, num_agents=3000, ticks=5, rounds=3)
    report([row])
    persist([row])
    assert row["columnar_bytes_per_tick"] < row["pickle_bytes_per_tick"]
    assert row["speedup"] >= 1.5, (
        f"columnar speedup {row['speedup']:.2f}x (noise floors over "
        f"{row['rounds']} rounds), below the 1.5x bar"
    )
