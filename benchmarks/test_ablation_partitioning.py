"""Ablation: partitioning scheme granularity.

Compares strip partitioning against square grid partitionings for the fish
workload on 16 workers.  Narrow strips replicate more agents (their visible
regions cross more boundaries), so the grid layouts should move fewer bytes.
"""

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


def _run(partitioning, grid_cells, num_fish=640, workers=16, ticks=4, seed=9):
    parameters = CouzinParameters(seed_region=400.0)
    fish_class = make_fish_class(parameters)
    world = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
    config = BraceConfig(
        num_workers=workers,
        partitioning=partitioning,
        grid_cells=grid_cells,
        load_balance=False,
        check_visibility=False,
        ticks_per_epoch=ticks,
    )
    with Simulation.from_agents(world, config=config) as session:
        run = session.run(ticks)
    return {
        "throughput": run.throughput(),
        "bytes": run.bytes_over_network(),
    }


def test_ablation_partition_granularity(once):
    def sweep():
        return {
            "strips 16x1": _run("strip", None),
            "grid 4x4": _run("grid", (4, 4)),
            "grid 8x2": _run("grid", (8, 2)),
        }

    results = once(sweep)
    print()
    for name, metrics in results.items():
        print(f"  {name:12s} throughput={metrics['throughput']:12,.0f}"
              f"  network bytes={metrics['bytes']:12,}")

    # The square grid replicates less than 16 narrow strips.
    assert results["grid 4x4"]["bytes"] < results["strips 16x1"]["bytes"]
    for metrics in results.values():
        assert metrics["throughput"] > 0
