"""Shared writer for machine-readable benchmark measurements.

Benchmarks that feed a CI artifact (the perf-regression smokes) persist
their numbers as ``BENCH_<name>.json`` at the repository root, all through
this one helper so every file carries the same shape::

    {
        "benchmark": "<name>",
        "rows": [ {...}, {...} ],
        ...optional metadata...
    }

The CI jobs ``cat`` and archive these files; keeping the writer in one
place keeps the schema from drifting per benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Repository root — the directory the CI jobs read BENCH_*.json from.
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_path(name: str) -> Path:
    """Where :func:`write_bench` puts the measurements for ``name``."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench(name: str, rows: list[dict[str, Any]], **metadata: Any) -> Path:
    """Persist one benchmark's measurement rows (plus optional metadata).

    Returns the path written, so callers can print it next to their table.
    """
    payload: dict[str, Any] = {"benchmark": name, "rows": rows}
    payload.update(metadata)
    target = bench_path(name)
    target.write_text(json.dumps(payload, indent=2))
    return target
