"""Benchmark: what does recording the tick history cost?

Recording rides inside the tick loop (delta extraction + an eager flush per
tick, a full checkpoint every ``checkpoint_every``), so its overhead is the
price of the record-once / analyze-later workflow.  This smoke measures it
on the fish workload — wall-clock with and without ``with_history`` on
otherwise identical sessions — plus the store's on-disk footprint and the
cost of a ``state_at`` time-travel query, and writes ``BENCH_history.json``
for the CI artifact.

The regression bars are deliberately loose (CI wall-clock is noisy): the
recorded run must stay within an order of magnitude of the bare run, and
recording must not perturb the simulation (bit-identical final states —
the cheap end of the differential-replay guarantee, asserted here so the
benchmark configuration itself stays honest).
"""

import time

from benchmarks._bench_io import write_bench
from repro.api import Simulation
from repro.harness.common import format_table
from repro.history import History
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world

NUM_AGENTS = 150
TICKS = 20
SEED = 7
CHECKPOINT_EVERY = 8


def world():
    # The module-level Fish class is picklable by name, as recorded clones
    # require.
    return build_fish_world(NUM_AGENTS, seed=SEED, fish_class=Fish)


def run_bare():
    session = Simulation.from_agents(world())
    with session:
        start = time.perf_counter()
        session.run(TICKS)
        seconds = time.perf_counter() - start
        return seconds, session.states()


def run_recorded(path):
    session = Simulation.from_agents(world()).with_history(
        path, checkpoint_every=CHECKPOINT_EVERY
    )
    with session:
        start = time.perf_counter()
        session.run(TICKS)
        seconds = time.perf_counter() - start
        return seconds, session.states()


def measure(tmp_path):
    bare_seconds, bare_states = run_bare()
    recorded_seconds, recorded_states = run_recorded(tmp_path / "run")
    assert recorded_states == bare_states, "recording perturbed the simulation"

    history = History.open(tmp_path / "run")
    start = time.perf_counter()
    replayed = history.state_at(TICKS)
    query_seconds = time.perf_counter() - start
    assert replayed == bare_states

    store_bytes = history.store.size_bytes()
    return {
        "agents": NUM_AGENTS,
        "ticks": TICKS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "bare_seconds": bare_seconds,
        "recorded_seconds": recorded_seconds,
        "overhead_ratio": recorded_seconds / bare_seconds,
        "store_bytes": store_bytes,
        "bytes_per_tick": store_bytes / TICKS,
        "state_at_seconds": query_seconds,
    }


def test_recording_overhead_is_bounded(once, tmp_path):
    row = once(measure, tmp_path)
    write_bench("history", [row])
    print()
    print(
        format_table(
            ["Agents", "Ticks", "Bare", "Recorded", "Overhead", "Store", "state_at"],
            [
                [
                    row["agents"],
                    row["ticks"],
                    f"{row['bare_seconds']:.3f}s",
                    f"{row['recorded_seconds']:.3f}s",
                    f"{row['overhead_ratio']:.2f}x",
                    f"{row['store_bytes']:,} B",
                    f"{row['state_at_seconds'] * 1000:.1f}ms",
                ]
            ],
            title="Tick-history recording overhead (fish workload, serial)",
        )
    )
    # Loose CI bars: recording costs ticks, not orders of magnitude.
    assert row["overhead_ratio"] < 10.0, (
        f"history recording made the run {row['overhead_ratio']:.1f}x slower"
    )
    # Time travel answers from one checkpoint + a bounded delta roll, so a
    # single query must be far cheaper than re-running the simulation.
    assert row["state_at_seconds"] < max(row["bare_seconds"], 0.05)
