"""Benchmark: executor backends on the traffic workload.

Runs the same traffic simulation through every executor backend at several
parallel-slot counts and records the wall-clock speedup curve relative to
the serial baseline — the repo's first *real* (non-virtual-time) parallelism
measurement.

Interpretation notes:

* the thread backend overlaps pure-Python phases but is GIL-bound, so its
  curve stays near 1.0x;
* the process backend pays per-tick serialization of agents, so it only
  wins once per-worker query phases are expensive relative to agent state
  size (and only when real CPUs are available — on a single-CPU container
  the whole table degenerates to overhead accounting, which is still useful
  for tracking the abstraction's cost).

Every configuration must remain *bit-identical* to the serial baseline;
this benchmark asserts that before it reports any timing.
"""

import time

import pytest

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.harness.common import format_table
from repro.simulations.traffic.workload import build_traffic_world

TICKS = 3
NUM_VEHICLES = 160
NUM_WORKERS = 4
SEED = 23

CONFIGURATIONS = [
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
]


def run_backend(executor: str, max_workers: int):
    """One traffic run; returns (world, wall seconds, mean query imbalance)."""
    world = build_traffic_world(seed=SEED, num_vehicles=NUM_VEHICLES)
    config = BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=TICKS,
        check_visibility=False,
        load_balance=False,
        executor=executor,
        max_workers=max_workers,
    )
    with Simulation.from_agents(world, config=config) as session:
        # Warm the pool (and the first tick's caches) outside the timing.
        session.runtime.run_tick()
        start = time.perf_counter()
        session.run(TICKS)
        wall_seconds = time.perf_counter() - start
        imbalance = session.metrics.mean_query_wall_imbalance(skip_ticks=1)
    return world, wall_seconds, imbalance


def run_scaleup():
    """Run every configuration; returns the serial world plus result rows."""
    results = []
    serial_world = None
    serial_seconds = None
    for executor, max_workers in CONFIGURATIONS:
        world, wall_seconds, imbalance = run_backend(executor, max_workers)
        if executor == "serial":
            serial_world = world
            serial_seconds = wall_seconds
        results.append(
            {
                "executor": executor,
                "max_workers": max_workers,
                "wall_seconds": wall_seconds,
                "speedup": serial_seconds / wall_seconds if wall_seconds > 0 else 0.0,
                "query_imbalance": imbalance,
                "world": world,
            }
        )
    return serial_world, results


def _run_tiny(executor: str, max_workers: int):
    world = build_traffic_world(seed=SEED, num_vehicles=40)
    config = BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=2,
        check_visibility=False,
        load_balance=False,
        executor=executor,
        max_workers=max_workers,
    )
    with Simulation.from_agents(world, config=config) as session:
        session.run(2)
    return world


def test_executor_smoke_tiny():
    """Tiny-size smoke: one serial and one process run stay bit-identical."""
    serial_world = _run_tiny("serial", 1)
    process_world = _run_tiny("process", 2)
    assert serial_world.same_state_as(process_world, tolerance=0.0)


@pytest.mark.slow
def test_executor_scaleup(once):
    serial_world, results = once(run_scaleup)

    rows = [
        [
            row["executor"],
            row["max_workers"],
            f"{row['wall_seconds'] * 1000:.1f} ms",
            f"{row['speedup']:.2f}x",
            f"{row['query_imbalance']:.2f}",
        ]
        for row in results
    ]
    print()
    print(
        format_table(
            ["Executor", "Slots", "Wall clock", "Speedup vs serial", "Query imbalance"],
            rows,
            title=(
                f"Executor scale-up: traffic, {NUM_VEHICLES} vehicles, "
                f"{NUM_WORKERS} partitions, {TICKS} timed ticks"
            ),
        )
    )

    # Every backend/worker-count combination ran and was timed.
    assert len(results) == len(CONFIGURATIONS)
    assert all(row["wall_seconds"] > 0.0 for row in results)
    # The parallel backends are *correct*: bit-identical to the serial run.
    for row in results:
        assert serial_world.same_state_as(row["world"], tolerance=0.0), (
            f"{row['executor']} x{row['max_workers']} diverged from serial"
        )
    # Load accounting is live: imbalance is a finite ratio >= 1.
    assert all(1.0 <= row["query_imbalance"] < float("inf") for row in results)
