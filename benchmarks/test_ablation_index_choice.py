"""Ablation: choice of spatial index for the query-phase join.

The paper's prototype uses a k-d tree; this ablation compares it against the
uniform grid and the quadtree on the fish workload.  Any index must beat the
nested-loop scan; the relative ordering of the indexes is reported.
"""

import time

import pytest

from repro.core.engine import SequentialEngine
from repro.simulations.fish import CouzinParameters, build_fish_world, make_fish_class


def _run(index, num_fish=500, ticks=4, seed=3):
    parameters = CouzinParameters(seed_region=120.0)
    fish_class = make_fish_class(parameters)
    world = build_fish_world(num_fish, parameters, seed=seed, fish_class=fish_class)
    engine = SequentialEngine(
        world, index=index, cell_size=parameters.rho, check_visibility=False
    )
    start = time.perf_counter()
    engine.run(ticks)
    return time.perf_counter() - start


def test_ablation_index_choice(once):
    def sweep():
        return {
            index: _run(index) for index in (None, "kdtree", "grid", "quadtree")
        }

    seconds = once(sweep)
    print()
    for index, value in seconds.items():
        print(f"  {str(index):10s} {value:8.3f} s")

    for index in ("kdtree", "grid", "quadtree"):
        assert seconds[index] < seconds[None]
