"""Benchmark: the columnar spatial kernel vs the interpreted join.

Processing one tick *is* a spatial self-join, so this is the repository's
hottest path.  The benchmark times the fish neighbour query — every agent
asking for its neighbours within the Couzin attraction radius — through
:class:`~repro.core.context.QueryContext` on both spatial backends:

* ``python`` — one interpreted k-d tree range query per agent, per-pair
  ``tuple`` conversions and Python distance filters;
* ``vectorized`` — one columnar :class:`~repro.spatial.columnar.PointSet`
  snapshot per tick, all probes answered by the batched grid kernel.

Both backends return bit-identical neighbour lists (asserted here); only
the speed differs.  The full-size configuration (10k agents, ``--m slow``)
must show at least a 5x speedup; the tiny smoke configuration runs on every
CI push, writes ``BENCH_spatial.json`` and fails whenever the vectorized
backend is *slower* than the interpreted one — the perf-regression guard.
"""

import time

import pytest

from benchmarks._bench_io import write_bench
from repro.core.context import QueryContext
from repro.simulations.fish import build_fish_world

SEED = 1
#: The query radius: the default Couzin attraction radius rho.
RADIUS = 6.0
#: Wall-clock floor per timing sample; best-of keeps CI noise down.
TIMING_ROUNDS = 2


def join_seconds(agents, backend):
    """Best-of wall-clock seconds for the full neighbour join on ``backend``."""
    best = float("inf")
    matches = None
    for _ in range(TIMING_ROUNDS):
        context = QueryContext(
            agents, tick=0, seed=SEED, index="kdtree", spatial_backend=backend
        )
        start = time.perf_counter()
        round_matches = [context.neighbors(agent, RADIUS) for agent in agents]
        best = min(best, time.perf_counter() - start)
        matches = round_matches
    return best, matches


def run_comparison(num_agents):
    """Time both backends on the same world; assert identical results."""
    world = build_fish_world(num_agents, seed=SEED)
    agents = world.agents()
    python_seconds, python_matches = join_seconds(agents, "python")
    vectorized_seconds, vectorized_matches = join_seconds(agents, "vectorized")
    for python_list, vectorized_list in zip(python_matches, vectorized_matches):
        assert [a.agent_id for a in python_list] == [a.agent_id for a in vectorized_list]
    return {
        "agents": num_agents,
        "radius": RADIUS,
        "python_seconds": python_seconds,
        "vectorized_seconds": vectorized_seconds,
        "python_joins_per_sec": num_agents / python_seconds,
        "vectorized_joins_per_sec": num_agents / vectorized_seconds,
        "speedup": python_seconds / vectorized_seconds,
    }


def write_results(rows):
    """Persist the measurements for the CI perf-regression job to archive."""
    write_bench("spatial", rows)


class TestSpatialKernelSmoke:
    """Tiny configuration: runs on every push, guards against regressions."""

    def test_vectorized_not_slower_and_identical(self, once):
        row = once(run_comparison, 2000)
        write_results([row])
        # The regression bar for CI: the columnar kernel must never lose to
        # the interpreted join at smoke size (it wins by ~5-10x locally; a
        # ratio below 1.0 means the batch path rotted).
        assert row["speedup"] >= 1.0, (
            f"vectorized backend slower than python: {row['speedup']:.2f}x"
        )


class TestSpatialKernelFull:
    """Paper-scale configuration: the >=5x columnar speedup claim."""

    @pytest.mark.slow
    def test_ten_thousand_agent_join_speedup(self, once):
        row = once(run_comparison, 10_000)
        write_results([row])
        assert row["speedup"] >= 5.0, (
            f"expected >=5x on the 10k-agent radius join, got {row['speedup']:.2f}x "
            f"(python {row['python_seconds']:.3f}s, "
            f"vectorized {row['vectorized_seconds']:.3f}s)"
        )
