"""Benchmark: Figure 4 — fish single-node time vs visibility range.

Indexing wins at every visibility range, but its advantage shrinks as the
range grows (each index probe returns a larger share of the school), matching
the paper's figure.
"""

from repro.harness import run_figure4


def test_figure4_indexing_vs_visibility(once):
    result = once(
        run_figure4,
        visibility_ranges=(3.0, 6.0, 12.0, 24.0, 48.0),
        num_fish=500,
        ticks=4,
        seed=5,
    )
    print()
    print(result.format_table())

    rows = result.rows()
    # Indexing is faster at every visibility value.
    assert all(row["brace_index_seconds"] < row["brace_no_index_seconds"] for row in rows)
    # The advantage shrinks as the visibility range grows.
    first_ratio = rows[0]["brace_no_index_seconds"] / rows[0]["brace_index_seconds"]
    last_ratio = rows[-1]["brace_no_index_seconds"] / rows[-1]["brace_index_seconds"]
    assert last_ratio < first_ratio
