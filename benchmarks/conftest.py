"""Shared pytest-benchmark configuration.

Every benchmark runs its workload exactly once per round (the workloads are
multi-second experiment drivers, not micro-benchmarks) and asserts the
qualitative shape of the paper's corresponding result.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` for the common single-shot pattern."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
