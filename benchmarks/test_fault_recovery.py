"""Benchmark: how fast a supervised cluster run absorbs a node kill.

The robustness claim has a latency dimension: when a node is SIGKILLed
mid-run, the driver must detect the death (heartbeat timeout), supervise
the loss (retire, resync survivors, refill or rehome the slot), recover
from the last checkpoint (re-seeding only the lost shards — survivors
rewind in place from their local stash) and re-execute the lost ticks.
This benchmark measures the whole span — SIGKILL to the first completed
post-recovery tick — for both degradation paths:

``respawn``
    Spawned mode: the driver starts a fresh subprocess into the dead slot.
``rehome``
    External mode with no replacement: the lost shards are re-seeded onto
    the surviving node.

Both runs must still end bit-identical to the uninterrupted serial run —
a fast recovery that diverges is worthless.  The rows land in
``BENCH_faults.json`` for the CI chaos-smoke artifact.
"""

import os
import signal
import socket
import subprocess
import sys
import time

from benchmarks._bench_io import write_bench
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.harness.common import format_table
from repro.simulations.traffic.workload import build_traffic_world

SEED = 23
VEHICLES = 80
TOTAL_TICKS = 8
KILL_AT_TICK = 5  # after the tick-4 checkpoint: one tick is re-executed
NUM_WORKERS = 3
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_TIMEOUT = 1.5


def build_world():
    return build_traffic_world(seed=SEED, num_vehicles=VEHICLES)


def make_config(**overrides) -> BraceConfig:
    return BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=2,
        checkpointing=True,
        checkpoint_interval_epochs=1,
        load_balance=False,
        executor="cluster",
        max_workers=2,
        heartbeat_interval_seconds=HEARTBEAT_INTERVAL,
        heartbeat_timeout_seconds=HEARTBEAT_TIMEOUT,
        **overrides,
    )


def serial_reference():
    world = build_traffic_world(seed=SEED, num_vehicles=VEHICLES)
    config = BraceConfig(
        num_workers=NUM_WORKERS,
        ticks_per_epoch=2,
        checkpointing=True,
        checkpoint_interval_epochs=1,
        load_balance=False,
    )
    with BraceRuntime(world, config) as runtime:
        runtime.run(TOTAL_TICKS)
    return world


def _start_node(port):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.node",
            "--connect",
            f"127.0.0.1:{port}",
            "--heartbeat-interval",
            str(HEARTBEAT_INTERVAL),
            "--retry-seconds",
            "30",
        ],
        env=env,
    )


def measure_path(path, reference):
    """Kill a node at KILL_AT_TICK and time SIGKILL -> first new tick."""
    external = []
    port = None
    if path == "rehome":
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        external = [_start_node(port), _start_node(port)]
        config = make_config(
            cluster_listen=f"127.0.0.1:{port}",
            cluster_spawn=False,
            readmission_timeout_seconds=0.0,
        )
    else:
        config = make_config()
    world = build_world()
    try:
        with BraceRuntime(world, config) as runtime:
            runtime.run(KILL_AT_TICK)
            victim_pid = runtime.executor.node_pids()[1]
            killed_at = time.monotonic()
            os.kill(victim_pid, signal.SIGKILL)
            # run(1) detects the death, supervises, recovers and
            # re-executes up to the first genuinely new tick.
            runtime.run(1)
            recovery_seconds = time.monotonic() - killed_at
            runtime.run(TOTAL_TICKS - world.tick)
            loss = next(
                event
                for event in runtime.fault_events
                if event["event"] == "node_loss"
            )
            recovered = next(
                event
                for event in runtime.fault_events
                if event["event"] == "recovered"
            )
            assert loss["action"] == ("respawned" if path == "respawn" else "rehomed")
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(reference, tolerance=0.0)
        return {
            "path": path,
            "action": loss["action"],
            "recovery_seconds": recovery_seconds,
            "supervision_seconds": loss["wall_seconds"],
            "ticks_reexecuted": recovered["ticks_lost"],
            "partial_recovery": recovered["partial"],
            "bit_identical": True,
        }
    finally:
        for node in external:
            node.kill()
        for node in external:
            node.wait(timeout=10)


def test_recovery_latency_both_paths(once):
    reference = serial_reference()

    def measure():
        return [measure_path(path, reference) for path in ("respawn", "rehome")]

    rows = once(measure)
    write_bench(
        "faults",
        rows,
        kill_at_tick=KILL_AT_TICK,
        total_ticks=TOTAL_TICKS,
        heartbeat_timeout_seconds=HEARTBEAT_TIMEOUT,
        workers=NUM_WORKERS,
    )
    print()
    print(
        format_table(
            ["Path", "SIGKILL -> next tick", "Supervision", "Re-executed", "Partial"],
            [
                [
                    row["path"],
                    f"{row['recovery_seconds']:.2f} s",
                    f"{row['supervision_seconds']:.2f} s",
                    row["ticks_reexecuted"],
                    "yes" if row["partial_recovery"] else "no",
                ]
                for row in rows
            ],
            title="Node-kill recovery latency "
            f"(heartbeat timeout {HEARTBEAT_TIMEOUT}s, kill at tick {KILL_AT_TICK})",
        )
    )
    for row in rows:
        assert row["bit_identical"]
        # Detection is bounded by the heartbeat timeout; supervision,
        # re-seeding and one re-executed tick ride on top.  A generous
        # ceiling catches only pathological regressions.
        assert row["recovery_seconds"] < 10 * HEARTBEAT_TIMEOUT + 30
