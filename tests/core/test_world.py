"""Tests for the World container."""

import pytest

from repro.core.errors import WorldError
from repro.core.world import World
from repro.spatial.bbox import BBox

from tests.conftest import Boid, make_boid_world


class TestAgentManagement:
    def test_add_allocates_ids(self):
        world = World()
        first = world.add_agent(Boid())
        second = world.add_agent(Boid())
        assert first.agent_id == 0
        assert second.agent_id == 1
        assert world.agent_count() == 2

    def test_duplicate_id_rejected(self):
        world = World()
        world.add_agent(Boid(agent_id=5))
        with pytest.raises(WorldError):
            world.add_agent(Boid(agent_id=5))

    def test_remove_and_get(self):
        world = World()
        agent = world.add_agent(Boid())
        assert world.get_agent(agent.agent_id) is agent
        assert world.has_agent(agent.agent_id)
        removed = world.remove_agent(agent.agent_id)
        assert removed is agent
        assert not world.has_agent(agent.agent_id)
        with pytest.raises(WorldError):
            world.get_agent(agent.agent_id)
        with pytest.raises(WorldError):
            world.remove_agent(agent.agent_id)

    def test_agents_sorted_deterministically(self):
        world = World()
        world.add_agent(Boid(agent_id=3))
        world.add_agent(Boid(agent_id=1))
        world.add_agent(Boid(agent_id=2))
        assert [agent.agent_id for agent in world.agents()] == sorted(
            [3, 1, 2], key=repr
        )

    def test_populate_and_clear(self):
        world = World()
        world.populate(lambda index: Boid(x=float(index)), 5)
        assert world.agent_count() == 5
        world.clear()
        assert world.agent_count() == 0

    def test_allocate_ids_are_fresh(self):
        world = World()
        world.add_agent(Boid())
        ids = world.allocate_ids(3)
        assert len(set(ids)) == 3
        assert all(not world.has_agent(agent_id) for agent_id in ids)


class TestSnapshots:
    def test_snapshot_restore_round_trip(self):
        world = make_boid_world(num_agents=10)
        snapshot = world.snapshot()
        original = world.copy()
        for agent in world.agents():
            agent.set_state_dict({"x": agent.x + 5.0})
        world.tick = 99
        world.restore(snapshot)
        assert world.tick == original.tick
        assert world.same_state_as(original)

    def test_copy_is_deep(self):
        world = make_boid_world(num_agents=5)
        duplicate = world.copy()
        world.agents()[0].set_state_dict({"x": 123.0})
        assert not world.same_state_as(duplicate)

    def test_same_state_as_detects_population_difference(self):
        world = make_boid_world(num_agents=5)
        duplicate = world.copy()
        duplicate.remove_agent(duplicate.agent_ids()[0])
        assert not world.same_state_as(duplicate)

    def test_bounds_and_seed_preserved_by_copy(self):
        world = World(bounds=BBox(((0.0, 1.0),)), seed=42)
        duplicate = world.copy()
        assert duplicate.bounds == world.bounds
        assert duplicate.seed == 42

    def test_repr_mentions_population(self):
        world = make_boid_world(num_agents=3)
        assert "agents=3" in repr(world)
