"""Tests for state/effect fields, phase enforcement and the Agent base class."""

import pytest

from repro.core.agent import Agent
from repro.core.combinators import MIN, SUM
from repro.core.errors import AgentDefinitionError, PhaseViolationError
from repro.core.fields import EffectField, StateField
from repro.core.phase import Phase, phase, set_enforcement
from repro.spatial.bbox import BBox

from tests.conftest import Boid


class Probe(Agent):
    """A minimal agent exercising the field machinery."""

    x = StateField(1.0, spatial=True, visibility=4.0, reachability=1.0)
    y = StateField(2.0, spatial=True, visibility=4.0, reachability=1.0)
    plain = StateField(0.0)
    total = EffectField(SUM)
    best = EffectField(MIN)


class TestDeclarations:
    def test_fields_collected_by_metaclass(self):
        assert set(Probe._state_fields) == {"x", "y", "plain"}
        assert set(Probe._effect_fields) == {"total", "best"}
        assert Probe._spatial_fields == ["x", "y"]

    def test_inherited_fields(self):
        class Extended(Probe):
            z = StateField(9.0)

        agent = Extended()
        assert agent.z == 9.0
        assert agent.x == 1.0
        assert set(Extended._state_fields) == {"x", "y", "plain", "z"}

    def test_defaults_and_constructor_overrides(self):
        agent = Probe(x=5.0)
        assert agent.x == 5.0
        assert agent.y == 2.0
        assert agent.total == 0.0

    def test_unknown_constructor_field_rejected(self):
        with pytest.raises(AgentDefinitionError):
            Probe(unknown=1.0)

    def test_visibility_on_non_spatial_field_rejected(self):
        with pytest.raises(ValueError):
            StateField(0.0, visibility=2.0)

    def test_spatial_accessors(self):
        agent = Probe(x=3.0, y=4.0)
        assert agent.position() == (3.0, 4.0)
        assert agent.visibility_radii() == (4.0, 4.0)
        assert agent.reachability_radii() == (1.0, 1.0)
        assert agent.visible_region().contains_point((6.0, 4.0))
        assert agent.reachable_region() == BBox(((2.0, 4.0), (3.0, 5.0)))
        assert Probe.has_bounded_visibility()


class TestPhaseEnforcement:
    def test_state_write_forbidden_in_query(self):
        agent = Probe()
        with phase(Phase.QUERY):
            with pytest.raises(PhaseViolationError):
                agent.x = 3.0

    def test_effect_read_forbidden_in_query(self):
        agent = Probe()
        with phase(Phase.QUERY):
            with pytest.raises(PhaseViolationError):
                _ = agent.total

    def test_effect_write_forbidden_in_update(self):
        agent = Probe()
        with phase(Phase.UPDATE):
            with pytest.raises(PhaseViolationError):
                agent.total = 1.0

    def test_state_write_by_other_agent_forbidden_in_update(self):
        agent = Probe()
        with phase(Phase.UPDATE):
            with pytest.raises(PhaseViolationError):
                agent.plain = 1.0  # agent._updating is False

    def test_own_state_write_allowed_in_update(self):
        agent = Probe()
        agent._updating = True
        with phase(Phase.UPDATE):
            agent.plain = 7.0
        agent._updating = False
        assert agent.plain == 7.0

    def test_enforcement_can_be_disabled(self):
        agent = Probe()
        set_enforcement(False)
        try:
            with phase(Phase.QUERY):
                agent.plain = 3.0
                _ = agent.total
        finally:
            set_enforcement(True)
        assert agent.plain == 3.0

    def test_reachability_clamp_in_update(self):
        agent = Probe(x=10.0)
        agent._updating = True
        with phase(Phase.UPDATE):
            agent.x = 20.0  # reachability is 1.0, so the move is clamped
        assert agent.x == 11.0

    def test_idle_phase_allows_everything(self):
        agent = Probe()
        agent.x = 50.0
        agent.total = 5.0
        assert agent.x == 50.0
        assert agent.total == 5.0


class TestEffectAggregation:
    def test_query_phase_assignments_aggregate(self):
        agent = Probe()
        with phase(Phase.QUERY):
            agent.total = 2.0
            agent.total = 3.0
            agent.best = 5.0
            agent.best = 1.0
        assert agent.total == 5.0
        assert agent.best == 1.0

    def test_reset_effects(self):
        agent = Probe()
        with phase(Phase.QUERY):
            agent.total = 2.0
        agent.reset_effects()
        assert agent.total == 0.0
        assert agent.touched_effect_partials() == {}

    def test_touched_partials_only_contains_assigned_fields(self):
        agent = Probe()
        with phase(Phase.QUERY):
            agent.total = 2.0
        assert set(agent.touched_effect_partials()) == {"total"}

    def test_merge_effect_partials_uses_combinator(self):
        agent = Probe()
        with phase(Phase.QUERY):
            agent.total = 2.0
            agent.best = 4.0
        agent.merge_effect_partials({"total": 3.0, "best": 1.0})
        assert agent.total == 5.0
        assert agent.best == 1.0

    def test_merge_unknown_field_rejected(self):
        agent = Probe()
        with pytest.raises(AgentDefinitionError):
            agent.merge_effect_partials({"nope": 1.0})


class TestCloningAndSnapshots:
    def test_clone_is_independent(self):
        agent = Probe(x=3.0)
        agent.agent_id = 7
        duplicate = agent.clone()
        duplicate.x = 9.0
        assert agent.x == 3.0
        assert duplicate.agent_id == 7

    def test_snapshot_restore_round_trip(self):
        agent = Probe(x=3.0, plain=2.0)
        agent.agent_id = 1
        snapshot = agent.snapshot()
        agent.x = 8.0
        agent.restore(snapshot)
        assert agent.x == 3.0
        assert agent.plain == 2.0

    def test_same_state_as(self):
        first = Probe(x=1.0)
        second = Probe(x=1.0)
        first.agent_id = second.agent_id = 3
        assert first.same_state_as(second)
        second.set_state_dict({"x": 1.0 + 1e-12})
        assert first.same_state_as(second, tolerance=1e-9)
        assert not first.same_state_as(second, tolerance=0.0)

    def test_same_state_as_different_ids(self):
        first, second = Probe(), Probe()
        first.agent_id, second.agent_id = 1, 2
        assert not first.same_state_as(second)

    def test_state_dict_round_trip(self):
        agent = Probe()
        agent.set_state_dict({"x": 4.0})
        assert agent.state_dict()["x"] == 4.0
        with pytest.raises(AgentDefinitionError):
            agent.set_state_dict({"bogus": 1.0})

    def test_approximate_size_is_positive(self):
        assert Probe().approximate_size_bytes() > 0

    def test_iteration_yields_state_items(self):
        agent = Probe(x=3.0)
        assert dict(iter(agent))["x"] == 3.0

    def test_boid_fixture_class_is_well_formed(self):
        boid = Boid(x=1.0, y=2.0)
        assert boid.position() == (1.0, 2.0)
        assert boid.has_bounded_visibility()
