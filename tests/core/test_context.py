"""Tests for the query and update contexts."""

import math

import numpy as np
import pytest

from repro.core.context import QueryContext, UpdateContext, agent_rng
from repro.core.errors import VisibilityError, WorldError

from tests.conftest import Boid, make_boid_world


def brute_force_neighbors(agents, probe, radius):
    result = []
    for other in agents:
        if other is probe:
            continue
        distance = math.dist(other.position(), probe.position())
        if distance <= radius:
            result.append(other)
    return result


class TestNeighborQueries:
    @pytest.mark.parametrize("index", [None, "kdtree", "grid", "quadtree"])
    def test_neighbors_match_brute_force(self, index):
        world = make_boid_world(num_agents=50, seed=9)
        agents = world.agents()
        context = QueryContext(agents, tick=0, seed=0, index=index, cell_size=6.0)
        for probe in agents[:10]:
            expected = brute_force_neighbors(agents, probe, 6.0)
            actual = context.neighbors(probe, 6.0)
            assert sorted(a.agent_id for a in actual) == sorted(a.agent_id for a in expected)

    def test_default_radius_uses_visibility(self):
        world = make_boid_world(num_agents=20)
        agents = world.agents()
        context = QueryContext(agents, tick=0, seed=0)
        probe = agents[0]
        assert sorted(a.agent_id for a in context.neighbors(probe)) == sorted(
            a.agent_id for a in brute_force_neighbors(agents, probe, 10.0)
        )

    def test_radius_beyond_visibility_raises(self):
        world = make_boid_world(num_agents=5)
        context = QueryContext(world.agents(), tick=0, seed=0)
        with pytest.raises(VisibilityError):
            context.neighbors(world.agents()[0], 50.0)

    def test_visibility_check_can_be_disabled(self):
        world = make_boid_world(num_agents=5)
        context = QueryContext(world.agents(), tick=0, seed=0, check_visibility=False)
        context.neighbors(world.agents()[0], 50.0)  # does not raise

    def test_include_self(self):
        world = make_boid_world(num_agents=5)
        agents = world.agents()
        context = QueryContext(agents, tick=0, seed=0)
        probe = agents[0]
        assert probe in context.neighbors(probe, 6.0, include_self=True)
        assert probe not in context.neighbors(probe, 6.0)

    def test_visible_uses_box_semantics(self):
        world = make_boid_world(num_agents=30, seed=4)
        agents = world.agents()
        context = QueryContext(agents, tick=0, seed=0)
        probe = agents[0]
        region = probe.visible_region()
        expected = [a for a in agents if a is not probe and region.contains_point(a.position())]
        assert sorted(a.agent_id for a in context.visible(probe)) == sorted(
            a.agent_id for a in expected
        )

    def test_nearest(self):
        world = make_boid_world(num_agents=30, seed=2)
        agents = world.agents()
        context = QueryContext(agents, tick=0, seed=0)
        probe = agents[0]
        nearest = context.nearest(probe, k=3)
        distances = [math.dist(a.position(), probe.position()) for a in nearest]
        assert distances == sorted(distances)
        assert probe not in nearest

    def test_agents_returns_full_extent(self):
        world = make_boid_world(num_agents=7)
        context = QueryContext(world.agents(), tick=0, seed=0)
        assert len(context.agents()) == 7
        assert len(context) == 7

    def test_work_units_accumulate(self):
        world = make_boid_world(num_agents=20)
        context = QueryContext(world.agents(), tick=0, seed=0)
        context.neighbors(world.agents()[0], 6.0)
        assert context.work_units > 0

    def test_unknown_index_rejected(self):
        world = make_boid_world(num_agents=3)
        with pytest.raises(WorldError):
            QueryContext(world.agents(), tick=0, seed=0, index="rtree")


class TestRandomStreams:
    def test_agent_rng_is_deterministic(self):
        first = agent_rng(1, 2, 3).random(5)
        second = agent_rng(1, 2, 3).random(5)
        assert np.allclose(first, second)

    def test_agent_rng_differs_across_agents_and_ticks(self):
        base = agent_rng(1, 2, 3).random()
        assert agent_rng(1, 2, 4).random() != base
        assert agent_rng(1, 3, 3).random() != base
        assert agent_rng(2, 2, 3).random() != base

    def test_tuple_agent_ids_supported(self):
        assert agent_rng(0, 0, (1, 2)).random() == agent_rng(0, 0, (1, 2)).random()

    def test_query_and_update_streams_differ(self):
        world = make_boid_world(num_agents=2)
        agent = world.agents()[0]
        query_context = QueryContext(world.agents(), tick=5, seed=7)
        update_context = UpdateContext(tick=5, seed=7)
        assert query_context.rng(agent).random() != update_context.rng(agent).random()


class TestUpdateContext:
    def test_spawn_requests_record_parent_and_sequence(self):
        context = UpdateContext(tick=0, seed=0)
        parent = Boid(agent_id=4)
        first_child, second_child = Boid(), Boid()
        context.spawn(parent, first_child)
        context.spawn(parent, second_child)
        requests = context.spawn_requests
        assert [(parent_id, sequence) for parent_id, sequence, _ in requests] == [(4, 0), (4, 1)]

    def test_kill_requests_deduplicate(self):
        context = UpdateContext(tick=0, seed=0)
        agent = Boid(agent_id=9)
        context.kill(agent)
        context.kill(agent)
        assert context.kill_requests == {9}

    def test_merge_combines_requests(self):
        first = UpdateContext(tick=0, seed=0)
        second = UpdateContext(tick=0, seed=0)
        first.spawn(Boid(agent_id=1), Boid())
        second.kill(Boid(agent_id=2))
        first.merge(second)
        assert len(first.spawn_requests) == 1
        assert first.kill_requests == {2}
