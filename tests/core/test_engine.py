"""Tests for the sequential reference engine."""

import pytest

from repro.core.engine import RunStatistics, SequentialEngine, apply_births_and_deaths
from repro.core.context import UpdateContext

from tests.conftest import Boid, SpawningAgent, make_boid_world


class TestTickExecution:
    def test_run_tick_advances_time_and_returns_stats(self, boid_world):
        engine = SequentialEngine(boid_world)
        stats = engine.run_tick()
        assert boid_world.tick == 1
        assert stats.num_agents == 60
        assert stats.total_seconds > 0
        assert stats.agent_ticks == 60

    def test_agents_actually_move(self, boid_world):
        before = {agent.agent_id: agent.position() for agent in boid_world.agents()}
        SequentialEngine(boid_world).run(3)
        moved = sum(
            1 for agent in boid_world.agents() if agent.position() != before[agent.agent_id]
        )
        assert moved > 0

    def test_run_accumulates_statistics(self, small_boid_world):
        engine = SequentialEngine(small_boid_world)
        statistics = engine.run(4)
        assert len(statistics.ticks) == 4
        assert statistics.total_agent_ticks == 4 * 20
        assert statistics.throughput() > 0

    def test_deterministic_across_runs(self):
        first = make_boid_world(seed=21)
        second = make_boid_world(seed=21)
        SequentialEngine(first).run(5)
        SequentialEngine(second).run(5)
        assert first.same_state_as(second)

    def test_different_seeds_diverge(self):
        first = make_boid_world(seed=1)
        second = make_boid_world(seed=2)
        SequentialEngine(first).run(3)
        SequentialEngine(second).run(3)
        assert not first.same_state_as(second)

    @pytest.mark.parametrize("index", [None, "kdtree", "grid", "quadtree"])
    def test_index_choice_does_not_change_results(self, index):
        reference = make_boid_world(seed=13)
        SequentialEngine(reference, index="kdtree").run(4)
        candidate = make_boid_world(seed=13)
        SequentialEngine(candidate, index=index, cell_size=10.0).run(4)
        assert reference.same_state_as(candidate, tolerance=1e-9)

    def test_on_tick_end_callback(self, small_boid_world):
        observed = []
        engine = SequentialEngine(
            small_boid_world, on_tick_end=lambda world, stats: observed.append(stats.tick)
        )
        engine.run(3)
        assert observed == [0, 1, 2]

    def test_reachability_clamp_limits_motion(self):
        world = make_boid_world(num_agents=10, seed=5)
        before = {agent.agent_id: agent.position() for agent in world.agents()}
        SequentialEngine(world).run_tick()
        for agent in world.agents():
            old_x, old_y = before[agent.agent_id]
            assert abs(agent.x - old_x) <= 2.0 + 1e-9
            assert abs(agent.y - old_y) <= 2.0 + 1e-9


class TestBirthsAndDeaths:
    def test_population_changes_applied(self):
        world = make_boid_world(num_agents=30, seed=8, agent_class=SpawningAgent, size=20.0)
        engine = SequentialEngine(world)
        statistics = engine.run(8)
        spawned = sum(stats.spawned for stats in statistics.ticks)
        killed = sum(stats.killed for stats in statistics.ticks)
        assert spawned > 0 or killed > 0
        assert world.agent_count() == 30 + spawned - killed

    def test_spawned_ids_are_deterministic(self):
        first = make_boid_world(num_agents=30, seed=8, agent_class=SpawningAgent, size=20.0)
        second = make_boid_world(num_agents=30, seed=8, agent_class=SpawningAgent, size=20.0)
        SequentialEngine(first).run(6)
        SequentialEngine(second).run(6)
        assert first.agent_ids() == second.agent_ids()
        assert first.same_state_as(second)

    def test_apply_births_and_deaths_orders_requests(self):
        world = make_boid_world(num_agents=3, seed=1)
        context = UpdateContext(tick=0, seed=0)
        parents = world.agents()
        context.spawn(parents[2], Boid())
        context.spawn(parents[0], Boid())
        context.kill(parents[1])
        spawned, killed = apply_births_and_deaths(world, context)
        assert len(spawned) == 2
        assert killed == [parents[1].agent_id]
        assert not world.has_agent(parents[1].agent_id)

    def test_kill_of_unknown_agent_is_ignored(self):
        world = make_boid_world(num_agents=2)
        context = UpdateContext(tick=0, seed=0)
        context.kill(Boid(agent_id=999))
        spawned, killed = apply_births_and_deaths(world, context)
        assert spawned == [] and killed == []


class TestRunStatistics:
    def test_discard_warmup(self, small_boid_world):
        engine = SequentialEngine(small_boid_world)
        engine.run(5)
        trimmed = engine.statistics.discard_warmup(2)
        assert len(trimmed.ticks) == 3
        assert trimmed.total_agent_ticks == 3 * 20

    def test_empty_statistics(self):
        statistics = RunStatistics()
        assert statistics.throughput() == 0.0
        assert statistics.total_seconds == 0.0
