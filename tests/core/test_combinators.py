"""Tests for effect combinators."""

import pytest
from hypothesis import given, strategies as st

from repro.core.combinators import (
    ALL,
    ANY,
    COLLECT,
    COUNT,
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    SUM,
    Combinator,
    available_combinators,
    get_combinator,
    register_combinator,
)
from repro.core.errors import CombinatorError

values = st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=0, max_size=30)


def fold(combinator, items):
    accumulator = combinator.identity()
    for item in items:
        accumulator = combinator.combine(accumulator, item)
    return combinator.finalize(accumulator)


class TestBasicCombinators:
    def test_sum(self):
        assert fold(SUM, [1, 2, 3]) == 6
        assert fold(SUM, []) == 0.0

    def test_count_ignores_values(self):
        assert fold(COUNT, ["a", "b", "c"]) == 3
        assert fold(COUNT, []) == 0

    def test_min_max_identities(self):
        assert fold(MIN, []) == float("inf")
        assert fold(MAX, []) == float("-inf")
        assert fold(MIN, [3, 1, 2]) == 1
        assert fold(MAX, [3, 1, 2]) == 3

    def test_product(self):
        assert fold(PRODUCT, [2, 3, 4]) == 24
        assert fold(PRODUCT, []) == 1.0

    def test_any_all(self):
        assert fold(ANY, [False, True]) is True
        assert fold(ANY, []) is False
        assert fold(ALL, [True, True]) is True
        assert fold(ALL, [True, False]) is False
        assert fold(ALL, []) is True

    def test_mean_uses_pair_accumulator(self):
        assert fold(MEAN, [2, 4, 6]) == 4
        assert fold(MEAN, []) == 0.0

    def test_collect_is_order_independent(self):
        assert fold(COLLECT, [3, 1, 2]) == fold(COLLECT, [2, 3, 1])


class TestMergeSemantics:
    """Partial aggregates merged across replicas must equal a single fold."""

    @given(values, values)
    def test_sum_merge(self, left, right):
        merged = SUM.merge(
            sum(left, 0.0), sum(right, 0.0)
        )
        assert merged == pytest.approx(fold(SUM, left + right), rel=1e-9, abs=1e-9)

    @given(values, values)
    def test_mean_merge(self, left, right):
        left_partial = MEAN.identity()
        for item in left:
            left_partial = MEAN.combine(left_partial, item)
        right_partial = MEAN.identity()
        for item in right:
            right_partial = MEAN.combine(right_partial, item)
        merged = MEAN.finalize(MEAN.merge(left_partial, right_partial))
        assert merged == pytest.approx(fold(MEAN, left + right), rel=1e-6, abs=1e-9)

    @given(values, values)
    def test_min_merge(self, left, right):
        merged = MIN.merge(fold(MIN, left), fold(MIN, right))
        assert merged == fold(MIN, left + right)

    @given(st.lists(st.integers(0, 100), max_size=20), st.lists(st.integers(0, 100), max_size=20))
    def test_count_merge(self, left, right):
        left_count = fold(COUNT, left)
        right_count = fold(COUNT, right)
        assert COUNT.merge(left_count, right_count) == len(left) + len(right)

    @given(values)
    def test_order_independence_of_sum(self, items):
        assert fold(SUM, items) == pytest.approx(fold(SUM, list(reversed(items))), rel=1e-9, abs=1e-9)


class TestRegistry:
    def test_get_by_name(self):
        assert get_combinator("sum") is SUM
        assert get_combinator(MAX) is MAX

    def test_unknown_name(self):
        with pytest.raises(CombinatorError):
            get_combinator("does-not-exist")

    def test_available_names(self):
        names = available_combinators()
        assert "sum" in names and "mean" in names and "collect" in names

    def test_register_custom_and_reject_duplicates(self):
        custom = Combinator("test_custom_xor", lambda: 0, lambda a, v: a ^ int(v))
        register_combinator(custom)
        assert get_combinator("test_custom_xor") is custom
        with pytest.raises(CombinatorError):
            register_combinator(custom)
