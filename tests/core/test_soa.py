"""Edge cases of the structure-of-arrays bridge (:mod:`repro.core.soa`).

The plan kernels only stay bit-identical to the interpreter if the
pack → compute → writeback round trip is lossless in every corner: NaN and
signed zeros, int/bool fields, agents born or killed between pack and
writeback, empty shards, and integers a float64 cannot represent (the
far-origin overflow case, mirroring the partitioning property tests).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agent import Agent
from repro.core.fields import StateField
from repro.core.soa import AgentTable, UnpackableValueError, pack_column, pack_value


class Particle(Agent):
    x = StateField(default=0.0, spatial=True, visibility=2.0)
    y = StateField(default=0.0, spatial=True, visibility=2.0)
    w = StateField(default=0.0)


def make_particles(values):
    return [Particle(x=float(i), y=-float(i), w=w) for i, w in enumerate(values)]


class TestPackValue:
    def test_floats_pass_through_verbatim(self):
        for value in (0.0, -0.0, 1.5, float("inf"), float("-inf")):
            packed = pack_value(value)
            assert packed == value
            assert math.copysign(1.0, packed) == math.copysign(1.0, value)
        assert math.isnan(pack_value(float("nan")))

    def test_bools_pack_as_indicator(self):
        assert pack_value(True) == 1.0
        assert pack_value(False) == 0.0

    def test_exact_ints_pack(self):
        assert pack_value(7) == 7.0
        assert pack_value(2**53) == float(2**53)
        assert pack_value(-(2**53)) == -float(2**53)

    def test_far_origin_int_overflow_raises(self):
        # 2**53 + 1 is the first integer float64 silently rounds — packing
        # it would corrupt a far-origin position, so it must raise instead.
        with pytest.raises(UnpackableValueError):
            pack_value(2**53 + 1)
        with pytest.raises(UnpackableValueError):
            pack_value(10**400)  # OverflowError path

    def test_unpackable_types_raise(self):
        for value in (None, "x", (1.0, 2.0), [1.0]):
            with pytest.raises(UnpackableValueError):
                pack_value(value)

    @settings(max_examples=120, deadline=None)
    @given(st.integers())
    def test_int_round_trip_is_lossless_or_refused(self, value):
        try:
            packed = pack_value(value)
        except UnpackableValueError:
            # Refusal is only allowed when float64 genuinely cannot hold it.
            try:
                assert int(float(value)) != value
            except OverflowError:
                pass
            return
        assert int(packed) == value


class TestAgentTable:
    def test_packs_declared_fields_in_order(self):
        table = AgentTable(make_particles([0.5, 1.5]))
        assert table.field_names == ["x", "y", "w"]
        assert list(table.column("w")) == [0.5, 1.5]
        assert len(table) == 2

    def test_zero_agent_shard(self):
        table = AgentTable([], field_names=["x", "y"])
        assert len(table) == 0
        assert table.column("x").shape == (0,)
        table.set_column("x", np.zeros(0))
        table.writeback()  # a no-op, not a crash

    def test_untouched_columns_are_not_written(self):
        agents = make_particles([1.0])
        table = AgentTable(agents)
        sentinel = object()
        agents[0]._state["y"] = sentinel  # mutate behind the table's back
        table.set_column("x", table.column("x") + 1.0)
        table.writeback()
        # Only the dirty column moved; the clean one was left alone even
        # though its packed copy no longer matches the live object.
        assert agents[0]._state["y"] is sentinel
        assert agents[0].x == 1.0

    def test_unchanged_cells_restore_original_objects(self):
        nan = float("nan")
        agents = [Particle(x=0.0, y=0.0, w=nan), Particle(x=1.0, y=0.0, w=2.5)]
        table = AgentTable(agents)
        column = table.column("w").copy()
        column[1] = 3.5
        table.set_column("w", column)
        table.writeback()
        # Row 0's NaN never changed: the *same object* comes back.
        assert agents[0]._state["w"] is nan
        assert agents[1].w == 3.5

    def test_int_and_bool_fields_survive_unchanged(self):
        agents = [Particle(x=0.0, y=0.0, w=0.0)]
        agents[0]._state["w"] = 7  # interpreter-style int-typed state
        table = AgentTable(agents)
        table.mark_dirty("w")
        table.writeback()
        value = agents[0]._state["w"]
        assert value == 7 and type(value) is int

    def test_signed_zero_flip_is_a_real_write(self):
        agents = [Particle(x=0.0, y=0.0, w=-0.0)]
        table = AgentTable(agents)
        table.set_column("w", np.array([0.0]))
        table.writeback()
        assert math.copysign(1.0, agents[0]._state["w"]) == 1.0

    def test_nan_and_inf_round_trip(self):
        values = [float("nan"), float("inf"), float("-inf"), -0.0]
        agents = make_particles(values)
        table = AgentTable(agents)
        table.set_column("w", table.column("w"))
        table.writeback()
        for agent, value in zip(agents, values):
            got = agent._state["w"]
            if math.isnan(value):
                assert math.isnan(got)
            else:
                assert got == value
                assert math.copysign(1.0, got) == math.copysign(1.0, value)

    def test_far_origin_position_refuses_to_pack(self):
        agents = [Particle(x=0.0, y=0.0, w=0.0)]
        agents[0]._state["x"] = 2**60 + 1  # beyond exact float64 range
        with pytest.raises(UnpackableValueError):
            AgentTable(agents)

    def test_births_between_pack_and_writeback_do_not_shift_rows(self):
        agents = make_particles([1.0, 2.0])
        table = AgentTable(agents)
        born = Particle(x=9.0, y=9.0, w=9.0)  # arrives after the snapshot
        table.set_column("w", table.column("w") * 2.0)
        table.writeback()
        assert [a.w for a in agents] == [2.0, 4.0]
        assert born.w == 9.0  # never in the table, never touched

    def test_deaths_between_pack_and_writeback_are_harmless(self):
        agents = make_particles([1.0, 2.0, 3.0])
        table = AgentTable(agents)
        dead = agents.pop(1)  # "killed": dropped from the live set
        table.set_column("w", table.column("w") + 10.0)
        table.writeback()
        # Writeback goes through captured references, so the survivors get
        # their rows and the dead object is updated in isolation (harmless:
        # nothing references it).
        assert [a.w for a in agents] == [11.0, 13.0]
        assert dead.w == 12.0

    def test_row_of_is_identity_keyed(self):
        twin_a = Particle(x=1.0, y=1.0, w=1.0)
        twin_b = Particle(x=1.0, y=1.0, w=1.0)
        table = AgentTable([twin_a, twin_b])
        assert table.row_of(twin_a) == 0
        assert table.row_of(twin_b) == 1

    def test_shape_mismatch_rejected(self):
        table = AgentTable(make_particles([1.0, 2.0]))
        with pytest.raises(ValueError, match="shape"):
            table.set_column("w", np.zeros(3))
        with pytest.raises(KeyError):
            table.mark_dirty("nope")

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=8,
        )
    )
    def test_identity_writeback_is_a_no_op(self, values):
        agents = make_particles(values)
        table = AgentTable(agents)
        before = [a._state["w"] for a in agents]
        table.mark_dirty("w")
        table.writeback()
        after = [a._state["w"] for a in agents]
        # Bit-identical and object-identical: packing cost nothing.
        assert all(x is y for x, y in zip(before, after))

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.floats(allow_nan=True, allow_infinity=True, width=64), min_size=1, max_size=8),
        st.floats(allow_nan=True, allow_infinity=True, width=64),
    )
    def test_written_cells_match_python_float_semantics(self, values, replacement):
        agents = make_particles(values)
        table = AgentTable(agents)
        column = table.column("w").copy()
        column[0] = replacement
        table.set_column("w", column)
        table.writeback()
        got = agents[0]._state["w"]
        assert type(got) is float
        if math.isnan(replacement):
            assert math.isnan(got)
        else:
            assert got == replacement
            assert math.copysign(1.0, got) == math.copysign(1.0, replacement)
