"""Lifecycle of the pooled shared-memory transport.

These tests only run where ``multiprocessing.shared_memory`` actually
works (it needs a writable /dev/shm); everywhere else the transport layer
reports unavailable and the executor falls back to pipe blobs, which the
equivalence suite covers.
"""

import pytest

from repro.ipc.transport import (
    FrameToken,
    SegmentCache,
    SegmentPool,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory is unavailable on this platform"
)


@pytest.fixture
def pool():
    pool = SegmentPool()
    yield pool
    pool.close()


class TestSegmentPool:
    def test_write_read_roundtrip(self, pool):
        blob = b"columnar-frame-bytes"
        token = pool.write(blob)
        assert isinstance(token, FrameToken)
        assert token.length == len(blob)
        cache = SegmentCache()
        try:
            view = cache.view(token)
            try:
                assert bytes(view) == blob
            finally:
                view.release()
        finally:
            cache.close()

    def test_released_segments_are_reused(self, pool):
        first = pool.write(b"x" * 100)
        pool.release(first.name)
        second = pool.write(b"y" * 80)
        # Same capacity class, freed before the second write -> same segment.
        assert second.name == first.name

    def test_distinct_live_frames_get_distinct_segments(self, pool):
        a = pool.write(b"a" * 10)
        b = pool.write(b"b" * 10)
        assert a.name != b.name

    def test_capacity_grows_for_large_frames(self, pool):
        small = pool.write(b"s")
        pool.release(small.name)
        big_blob = bytes(1 << 16)
        big = pool.write(big_blob)
        # The small freed segment cannot hold it; a larger one is created.
        assert big.name != small.name
        cache = SegmentCache()
        try:
            view = cache.view(big)
            try:
                assert bytes(view) == big_blob
            finally:
                view.release()
        finally:
            cache.close()

    def test_close_unlinks_segments(self):
        pool = SegmentPool()
        token = pool.write(b"doomed")
        pool.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=token.name)

    def test_close_is_idempotent(self):
        pool = SegmentPool()
        pool.write(b"x")
        pool.close()
        pool.close()


class TestSegmentCache:
    def test_attaches_once_per_segment(self, pool):
        token = pool.write(b"hello")
        cache = SegmentCache()
        try:
            view = cache.view(token)
            view.release()
            # Re-reading the same (reused) segment maps no new attachment.
            attached = len(cache._segments)
            view = cache.view(FrameToken(token.name, 3))
            try:
                assert bytes(view) == b"hel"
            finally:
                view.release()
            assert len(cache._segments) == attached == 1
        finally:
            cache.close()

    def test_close_with_unreleased_view_does_not_raise(self, pool):
        token = pool.write(b"sticky")
        cache = SegmentCache()
        view = cache.view(token)
        cache.close()  # BufferError path: swallowed, segment stays mapped
        assert bytes(view) == b"sticky"
        view.release()
