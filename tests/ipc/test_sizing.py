"""The modeled frame-size formula every byte-accounting site charges.

One formula, used by the runtime's migration/replication accounting, the
worker's distribute() pair bytes, the checkpoint sizing and the load
balancer's cost model — these tests pin it so the sites cannot drift apart
again.
"""

from repro.core.agent import Agent
from repro.core.combinators import SUM
from repro.core.fields import EffectField, StateField
from repro.ipc.sizing import (
    CELL_BYTES,
    ROW_HEADER_BYTES,
    agent_frame_bytes,
    partial_frame_bytes,
)
from tests.conftest import Boid


class Plain(Agent):
    x = StateField(0.0, spatial=True, visibility=1.0, reachability=1.0)


class Loaded(Agent):
    x = StateField(0.0, spatial=True, visibility=1.0, reachability=1.0)
    y = StateField(0.0, spatial=True, visibility=1.0, reachability=1.0)
    speed = StateField(1.0)
    pull = EffectField(SUM)
    crowd = EffectField(SUM)


class TestAgentFrameBytes:
    def test_counts_state_and_effect_cells(self):
        agent = Loaded(agent_id=0)
        assert agent_frame_bytes(agent) == ROW_HEADER_BYTES + CELL_BYTES * (3 + 2)

    def test_minimal_agent(self):
        assert agent_frame_bytes(Plain(agent_id=0)) == ROW_HEADER_BYTES + CELL_BYTES

    def test_matches_legacy_approximation(self):
        # The legacy per-object estimate and the frame formula agree, so
        # swapping the accounting sites changed no modeled statistic.
        boid = Boid(agent_id=0)
        assert agent_frame_bytes(boid) == boid.approximate_size_bytes()

    def test_depends_only_on_class_structure(self):
        # Same class, wildly different values -> same modeled size, which is
        # what keeps the statistic deterministic across backends.
        a = Loaded(agent_id=0)
        b = Loaded(agent_id=999)
        b._state["x"] = 1e308
        assert agent_frame_bytes(a) == agent_frame_bytes(b)


class TestPartialFrameBytes:
    def test_scales_with_touched_fields(self):
        assert partial_frame_bytes({}) == ROW_HEADER_BYTES
        assert (
            partial_frame_bytes({"pull": 1.0, "crowd": 2.0})
            == ROW_HEADER_BYTES + 2 * CELL_BYTES
        )
