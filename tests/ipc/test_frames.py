"""Round-trip conformance of the columnar frame codec.

The wire format's whole contract is one sentence: decoding an encoded
payload restores **bit-identical** Python values — NaN payloads, signed
zeros, exact ints past 2**53, bools that stay bools, agents with escape
states, empty frames.  Hypothesis drives the cell-level properties over
adversarial value mixes; the directed tests pin the boundary cases the
strategies are built around.
"""

import pickle
import struct

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinators import Combinator
from repro.core.fields import EffectField
from repro.core.soa import pack_cells, unpack_cells
from repro.ipc.frames import (
    ColumnarCodec,
    pack_agents,
    pack_mapping_rows,
    unpack_agents,
    unpack_mapping_rows,
)
from tests.conftest import Boid


def bits(value: float) -> int:
    """The raw IEEE-754 bit pattern (NaN payloads and zero signs included)."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def cells_bit_identical(a, b) -> bool:
    """Exact equality: same type, and for floats the same 64 bits."""
    if type(a) is not type(b):
        return False
    if type(a) is float:
        return bits(a) == bits(b)
    return a == b


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

#: Floats including NaN, infinities and both zeros — bit patterns matter.
exact_floats = st.floats(allow_nan=True, allow_infinity=True) | st.sampled_from(
    [0.0, -0.0, float("nan"), float("inf"), float("-inf"), 2.0**-1074]
)

#: Ints spanning the float53 and int64 boundaries, including values no
#: float64 (2**53 + 1) and no int64 (±2**63) can carry.
exact_ints = st.integers(-(2**70), 2**70) | st.sampled_from(
    [2**53, 2**53 + 1, -(2**53) - 1, 2**63 - 1, -(2**63), 2**63, 2**100]
)

#: Cells the codec must escape: strings, tuples, None.
escape_cells = st.text(max_size=5) | st.tuples(st.integers()) | st.none()

any_cell = exact_floats | exact_ints | st.booleans() | escape_cells


class TestPackCells:
    @given(st.lists(any_cell, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_is_bit_identical(self, values):
        restored = unpack_cells(pack_cells(values))
        assert len(restored) == len(values)
        for original, decoded in zip(values, restored):
            assert cells_bit_identical(original, decoded), (original, decoded)

    @given(st.lists(any_cell, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_survives_pickle(self, values):
        # The wire shell is pickled; the column must decode identically on
        # the far side of the boundary.
        column = pickle.loads(pickle.dumps(pack_cells(values)))
        for original, decoded in zip(values, unpack_cells(column)):
            assert cells_bit_identical(original, decoded)

    @given(st.lists(exact_floats, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_homogeneous_floats_take_array_fast_path(self, values):
        column = pack_cells(values)
        assert column.kind == "f"
        assert column.data.dtype == np.float64
        for original, decoded in zip(values, unpack_cells(column)):
            assert cells_bit_identical(original, decoded)

    def test_nan_payload_and_signed_zero_survive(self):
        weird_nan = struct.unpack("<d", struct.pack("<Q", 0x7FF8DEADBEEF0001))[0]
        values = [weird_nan, -0.0, 0.0, float("inf")]
        decoded = unpack_cells(pack_cells(values))
        assert [bits(v) for v in decoded] == [bits(v) for v in values]

    def test_int64_boundaries_pack_exact(self):
        values = [2**53 + 1, 2**63 - 1, -(2**63)]
        column = pack_cells(values)
        assert column.kind == "i"
        assert unpack_cells(column) == values

    def test_int_outside_int64_escapes(self):
        values = [1, 2**63, -1]
        column = pack_cells(values)
        assert column.kind == "m"
        decoded = unpack_cells(column)
        assert decoded == values
        assert all(type(v) is int for v in decoded)

    def test_bools_stay_bools(self):
        values = [True, False, True]
        column = pack_cells(values)
        assert column.kind == "b"
        decoded = unpack_cells(column)
        assert decoded == values
        assert all(type(v) is bool for v in decoded)

    def test_mixed_bool_and_int_keep_types(self):
        # bool is an int subclass; a mixed column must not collapse them.
        values = [True, 1, False, 0]
        decoded = unpack_cells(pack_cells(values))
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_empty_column(self):
        column = pack_cells([])
        assert len(column) == 0
        assert unpack_cells(column) == []


# ----------------------------------------------------------------------
# Agent frames
# ----------------------------------------------------------------------


class OtherBoid(Boid):
    """A second concrete class so frames carry multiple groups."""


#: A combinator whose identity is a *mutable* list — exercises the slow
#: fresh-effects path (the built-ins all have immutable identities).
GATHER = Combinator("gather-ipc-test", list, lambda acc, value: acc + [value])


class CollectingAgent(Boid):
    """Mutable effect identity — the slow per-agent template path."""

    sightings = EffectField(GATHER)


def make_boid(agent_id, cls=Boid, **state):
    agent = cls(agent_id=agent_id)
    for name, value in state.items():
        agent._state[name] = value
    return agent


def assert_agents_bit_identical(original, decoded):
    assert len(original) == len(decoded)
    for a, b in zip(original, decoded):
        assert type(a) is type(b)
        assert a.agent_id == b.agent_id
        assert a._state.keys() == b._state.keys()
        for name in a._state:
            assert cells_bit_identical(a._state[name], b._state[name]), name
        assert a._effects_touched == b._effects_touched
        assert a._effects.keys() == b._effects.keys()
        for name in a._effects:
            assert cells_bit_identical(a._effects[name], b._effects[name]) or (
                a._effects[name] == b._effects[name]
            ), name


agent_states = st.fixed_dictionaries(
    {
        "x": exact_floats,
        "y": exact_floats,
        "vx": exact_floats,
        "vy": exact_floats,
    }
)


class TestAgentFrames:
    @given(st.lists(agent_states, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_state_bit_identical(self, states):
        agents = [make_boid(i, **state) for i, state in enumerate(states)]
        decoded = unpack_agents(pickle.loads(pickle.dumps(pack_agents(agents))))
        assert_agents_bit_identical(agents, decoded)

    def test_decoded_agents_are_fresh_objects(self):
        agents = [make_boid(0, x=1.5)]
        decoded = unpack_agents(pack_agents(agents))
        assert decoded[0] is not agents[0]
        assert decoded[0]._state is not agents[0]._state
        assert decoded[0]._effects is not agents[0]._effects

    def test_interleaved_classes_preserve_order(self):
        agents = [
            make_boid(i, cls=(Boid if i % 2 == 0 else OtherBoid), x=float(i))
            for i in range(9)
        ]
        decoded = unpack_agents(pack_agents(agents))
        assert_agents_bit_identical(agents, decoded)

    def test_touched_effects_ship_as_overrides(self):
        quiet = make_boid(0)
        loud = make_boid(1)
        loud.set_effect_partials({"pull_x": -0.0, "neighbor_count": 3})
        decoded = unpack_agents(pack_agents([quiet, loud]))
        assert decoded[0]._effects_touched == set()
        assert decoded[1]._effects_touched == {"pull_x", "neighbor_count"}
        assert bits(decoded[1]._effects["pull_x"]) == bits(-0.0)
        assert decoded[1]._effects["neighbor_count"] == 3

    def test_untouched_nondefault_effects_still_ship(self):
        # A checkpoint-restored accumulator can differ from the identity
        # without being in _effects_touched; skipping it would flip bits.
        agent = make_boid(0)
        agent._effects["pull_x"] = -0.0  # identity is 0.0 — differs by sign bit
        decoded = unpack_agents(pack_agents([agent]))
        assert bits(decoded[0]._effects["pull_x"]) == bits(-0.0)

    def test_mutable_effect_identities_are_not_shared(self):
        agents = [CollectingAgent(agent_id=0), CollectingAgent(agent_id=1)]
        decoded = unpack_agents(pack_agents(agents))
        assert decoded[0]._effects["sightings"] == []
        decoded[0]._effects["sightings"].append("seen")
        assert decoded[1]._effects["sightings"] == []

    def test_divergent_state_keys_take_escape_path(self):
        normal = make_boid(0, x=1.0)
        weird = make_boid(1)
        weird._state["extra"] = "not-a-declared-field"
        frame = pack_agents([normal, weird])
        assert len(frame.escapes) == 1
        decoded = unpack_agents(frame)
        assert decoded[1]._state["extra"] == "not-a-declared-field"
        assert decoded[0].agent_id == 0 and decoded[1].agent_id == 1

    def test_empty_frame(self):
        frame = pack_agents([])
        assert frame.length == 0
        assert unpack_agents(frame) == []

    def test_tuple_agent_ids_roundtrip(self):
        # Spawned agents get (parent, sequence) tuple ids.
        agents = [make_boid((7, 0)), make_boid(3)]
        decoded = unpack_agents(pack_agents(agents))
        assert [a.agent_id for a in decoded] == [(7, 0), 3]


# ----------------------------------------------------------------------
# Mapping frames (effect-partial rows)
# ----------------------------------------------------------------------

partial_rows = st.lists(
    st.tuples(
        st.integers(0, 2**40),
        st.dictionaries(
            st.sampled_from(["pull_x", "pull_y", "count", "hurt"]),
            exact_floats | exact_ints,
            max_size=4,
        ),
    ),
    max_size=20,
)


class TestMappingFrames:
    @given(partial_rows)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_bit_identical(self, rows):
        frame = pickle.loads(pickle.dumps(pack_mapping_rows(rows)))
        decoded = unpack_mapping_rows(frame)
        assert len(decoded) == len(rows)
        for (key, mapping), (dkey, dmapping) in zip(rows, decoded):
            assert key == dkey
            assert mapping.keys() == dmapping.keys()
            for name in mapping:
                assert cells_bit_identical(mapping[name], dmapping[name])

    def test_heterogeneous_signatures_group_separately(self):
        rows = [
            (0, {"pull_x": 1.0}),
            (1, {"pull_x": 2.0, "pull_y": 3.0}),
            (2, {"pull_x": 4.0}),
        ]
        decoded = unpack_mapping_rows(pack_mapping_rows(rows))
        assert decoded == rows

    def test_empty(self):
        assert unpack_mapping_rows(pack_mapping_rows([])) == []


# ----------------------------------------------------------------------
# The codec shell
# ----------------------------------------------------------------------


class TestColumnarCodec:
    def test_unregistered_objects_pass_through_raw(self):
        codec = ColumnarCodec()
        payload = {"anything": [1, "two", 3.0]}
        assert codec.decode(codec.encode(payload)) == payload

    def test_agent_lists_frame_structurally(self):
        codec = ColumnarCodec()
        agents = [make_boid(i, x=float(i)) for i in range(5)]
        decoded = codec.decode(codec.encode(agents))
        assert_agents_bit_identical(agents, decoded)

    def test_roundtrip_reports_real_bytes_for_picklable_payloads(self):
        codec = ColumnarCodec()
        decoded, nbytes = codec.roundtrip([make_boid(i) for i in range(3)])
        assert nbytes > 0
        assert len(decoded) == 3

    def test_roundtrip_degrades_for_unpicklable_classes(self):
        class Local(Boid):  # not importable by name -> unpicklable
            pass

        codec = ColumnarCodec()
        agents = [Local(agent_id=0)]
        decoded, nbytes = codec.roundtrip(agents)
        assert nbytes == 0
        assert type(decoded[0]) is Local
        assert decoded[0] is not agents[0]
