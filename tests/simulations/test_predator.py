"""Tests for the predator simulation (non-local effects, births and deaths)."""

import pytest

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.engine import SequentialEngine
from repro.simulations.predator import (
    LocalPredator,
    NonLocalPredator,
    PredatorParameters,
    build_predator_world,
    make_predator_classes,
)


class TestWorldConstruction:
    def test_population_and_bounds(self):
        parameters = PredatorParameters(region_size=100.0)
        world = build_predator_world(80, parameters, seed=1)
        assert world.agent_count() == 80
        half = parameters.region_size / 2
        for fish in world.agents():
            assert -half <= fish.x <= half
            assert -half <= fish.y <= half
            assert fish.energy > 0

    def test_variant_selection(self):
        non_local_world = build_predator_world(5, seed=1, non_local=True)
        local_world = build_predator_world(5, seed=1, non_local=False)
        # Both classes are named "Predator" but behave differently in the
        # query phase; the worlds start from identical state.
        assert non_local_world.same_state_as(local_world)


class TestFormulationEquivalence:
    """The non-local and effect-inverted formulations must agree exactly."""

    @pytest.mark.parametrize("ticks", [1, 4])
    def test_fixed_population_equivalence(self, ticks):
        parameters = PredatorParameters(dynamic_population=False)
        non_local_class, local_class = make_predator_classes(parameters)
        first = build_predator_world(60, parameters, seed=3, agent_class=non_local_class)
        second = build_predator_world(60, parameters, seed=3, agent_class=local_class)
        SequentialEngine(first, check_visibility=False).run(ticks)
        SequentialEngine(second, check_visibility=False).run(ticks)
        assert first.same_state_as(second, tolerance=1e-9)

    def test_dynamic_population_equivalence(self):
        parameters = PredatorParameters()
        non_local_class, local_class = make_predator_classes(parameters)
        first = build_predator_world(60, parameters, seed=5, agent_class=non_local_class)
        second = build_predator_world(60, parameters, seed=5, agent_class=local_class)
        SequentialEngine(first, check_visibility=False).run(5)
        SequentialEngine(second, check_visibility=False).run(5)
        assert first.agent_ids() == second.agent_ids()
        assert first.same_state_as(second, tolerance=1e-9)

    def test_non_local_brace_matches_local_sequential(self):
        parameters = PredatorParameters()
        reference = build_predator_world(60, parameters, seed=7, non_local=False)
        SequentialEngine(reference, check_visibility=False).run(4)
        world = build_predator_world(60, parameters, seed=7, non_local=True)
        config = BraceConfig(num_workers=4, non_local_effects=True, check_visibility=False)
        BraceRuntime(world, config).run(4)
        assert world.same_state_as(reference, tolerance=1e-9)


class TestPopulationDynamics:
    def test_births_and_deaths_occur(self):
        parameters = PredatorParameters(
            spawn_probability=0.5, spawn_threshold=9.0, bite_damage=3.0
        )
        world = build_predator_world(120, parameters, seed=9, non_local=False)
        engine = SequentialEngine(world, check_visibility=False)
        statistics = engine.run(10)
        assert sum(stats.spawned for stats in statistics.ticks) > 0
        assert sum(stats.killed for stats in statistics.ticks) > 0

    def test_energy_never_negative_after_death_cleanup(self):
        world = build_predator_world(100, PredatorParameters(), seed=11, non_local=False)
        SequentialEngine(world, check_visibility=False).run(8)
        for fish in world.agents():
            assert fish.energy > 0.0

    def test_fish_stay_inside_region(self):
        parameters = PredatorParameters(region_size=60.0)
        world = build_predator_world(80, parameters, seed=13, non_local=False)
        SequentialEngine(world, check_visibility=False).run(15)
        half = parameters.region_size / 2
        for fish in world.agents():
            assert -half - 1e-9 <= fish.x <= half + 1e-9
            assert -half - 1e-9 <= fish.y <= half + 1e-9

    def test_crowded_population_trends_towards_equilibrium(self):
        # With many fish packed in a small region, biting outpaces grazing and
        # the population falls; density "naturally approaches an equilibrium".
        parameters = PredatorParameters(region_size=30.0, bite_damage=2.5)
        world = build_predator_world(200, parameters, seed=15, non_local=False)
        SequentialEngine(world, check_visibility=False).run(10)
        assert world.agent_count() < 200
