"""Tests for the traffic simulation model and its statistics."""

import math

import pytest

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.engine import SequentialEngine
from repro.simulations.traffic import (
    TrafficParameters,
    TrafficStatisticsCollector,
    build_traffic_world,
    compare_lane_statistics,
    make_vehicle_class,
)


@pytest.fixture(scope="module")
def parameters():
    return TrafficParameters(segment_length=1000.0, num_lanes=4)


class TestWorldConstruction:
    def test_population_size_from_density(self, parameters):
        world = build_traffic_world(parameters, seed=1)
        assert world.agent_count() == parameters.vehicles_total()

    def test_explicit_vehicle_count(self, parameters):
        world = build_traffic_world(parameters, seed=1, num_vehicles=33)
        assert world.agent_count() == 33

    def test_vehicles_inside_segment_and_lanes(self, parameters):
        world = build_traffic_world(parameters, seed=2)
        for vehicle in world.agents():
            assert 0.0 <= vehicle.x < parameters.segment_length
            assert 0 <= vehicle.lane < parameters.num_lanes
            assert vehicle.speed >= 0.0

    def test_same_seed_same_world(self, parameters):
        assert build_traffic_world(parameters, seed=5).same_state_as(
            build_traffic_world(parameters, seed=5)
        )

    def test_parameters_scaling(self):
        base = TrafficParameters(segment_length=1000.0)
        scaled = base.scaled_to(4000.0)
        assert scaled.segment_length == 4000.0
        assert scaled.vehicles_total() == 4 * base.vehicles_total()


class TestDriverBehaviour:
    def test_vehicles_stay_on_segment_and_in_lanes(self, parameters):
        world = build_traffic_world(parameters, seed=3)
        SequentialEngine(world, check_visibility=False).run(10)
        for vehicle in world.agents():
            assert 0.0 <= vehicle.x < parameters.segment_length
            assert 0 <= vehicle.lane < parameters.num_lanes
            assert 0.0 <= vehicle.speed <= parameters.max_speed() + 1e-9

    def test_lane_changes_happen(self, parameters):
        world = build_traffic_world(parameters, seed=3)
        SequentialEngine(world, check_visibility=False).run(15)
        assert sum(vehicle.lane_changes for vehicle in world.agents()) > 0

    def test_free_flow_reaches_desired_speed(self):
        # A single vehicle with nothing ahead accelerates towards its desired speed.
        params = TrafficParameters(segment_length=5000.0)
        vehicle_class = make_vehicle_class(params)
        world = build_traffic_world(params, seed=1, num_vehicles=1, vehicle_class=vehicle_class)
        vehicle = world.agents()[0]
        vehicle.set_state_dict({"speed": 0.0})
        SequentialEngine(world, check_visibility=False).run(60)
        assert vehicle.speed == pytest.approx(vehicle.desired_speed, rel=0.05)

    def test_follower_does_not_rear_end_leader(self):
        params = TrafficParameters(segment_length=2000.0)
        vehicle_class = make_vehicle_class(params)
        world = build_traffic_world(params, seed=1, num_vehicles=2, vehicle_class=vehicle_class)
        leader, follower = world.agents()
        leader.set_state_dict({"x": 300.0, "lane": 0, "speed": 5.0, "desired_speed": 5.0})
        follower.set_state_dict({"x": 200.0, "lane": 0, "speed": 30.0, "desired_speed": 30.0})
        engine = SequentialEngine(world, check_visibility=False)
        for _ in range(30):
            engine.run_tick()
            gap = (leader.x - follower.x) % params.segment_length
            assert gap > 0.5  # never collides

    def test_rightmost_lane_less_popular(self, parameters):
        world = build_traffic_world(parameters, seed=7)
        collector = TrafficStatisticsCollector(parameters)
        SequentialEngine(
            world, check_visibility=False,
            on_tick_end=lambda w, _s: collector.observe(w.agents()),
        ).run(20)
        summary = collector.summary()
        rightmost = parameters.num_lanes - 1
        other_density = sum(
            summary[lane]["average_density"] for lane in range(rightmost)
        ) / rightmost
        assert summary[rightmost]["average_density"] < other_density

    def test_brace_equivalence(self, parameters):
        reference = build_traffic_world(parameters, seed=9)
        SequentialEngine(reference, check_visibility=False).run(5)
        world = build_traffic_world(parameters, seed=9)
        config = BraceConfig(num_workers=4, check_visibility=False)
        BraceRuntime(world, config).run(5)
        assert world.same_state_as(reference, tolerance=1e-9)


class TestStatistics:
    def test_collector_counts_lane_changes(self, parameters):
        world = build_traffic_world(parameters, seed=3)
        collector = TrafficStatisticsCollector(parameters)
        collector.observe(world.agents())  # baseline observation of the initial lanes
        SequentialEngine(
            world, check_visibility=False,
            on_tick_end=lambda w, _s: collector.observe(w.agents()),
        ).run(10)
        total_changes = sum(stats.lane_changes_out for stats in collector.lanes.values())
        assert total_changes == sum(vehicle.lane_changes for vehicle in world.agents())

    def test_summary_has_every_lane(self, parameters):
        collector = TrafficStatisticsCollector(parameters)
        collector.observe(build_traffic_world(parameters, seed=1).agents())
        summary = collector.summary()
        assert set(summary) == set(range(parameters.num_lanes))
        for metrics in summary.values():
            assert set(metrics) == {"change_frequency", "average_density", "average_velocity"}

    def test_compare_lane_statistics_zero_for_identical_collectors(self, parameters):
        world = build_traffic_world(parameters, seed=3)
        first = TrafficStatisticsCollector(parameters)
        second = TrafficStatisticsCollector(parameters)
        first.observe(world.agents())
        second.observe(world.agents())
        comparison = compare_lane_statistics(first, second)
        for metrics in comparison.values():
            for value in metrics.values():
                assert value == pytest.approx(0.0)
