"""Tests for the Couzin fish school model."""

import math

import pytest

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.engine import SequentialEngine
from repro.simulations.fish import (
    CouzinParameters,
    build_fish_world,
    group_centroid,
    make_fish_class,
    school_polarization,
    school_spread,
)


@pytest.fixture(scope="module")
def parameters():
    return CouzinParameters(seed_region=40.0)


class TestWorldConstruction:
    def test_population_and_informed_split(self, parameters):
        world = build_fish_world(100, parameters, seed=1)
        informed = [fish.informed for fish in world.agents()]
        assert len(informed) == 100
        expected_informed = round(100 * parameters.informed_fraction)
        assert informed.count(1) + informed.count(2) == expected_informed
        assert abs(informed.count(1) - informed.count(2)) <= 1

    def test_headings_are_unit_vectors(self, parameters):
        world = build_fish_world(50, parameters, seed=2)
        for fish in world.agents():
            assert math.hypot(fish.dx, fish.dy) == pytest.approx(1.0, rel=1e-9)

    def test_same_seed_same_world(self, parameters):
        assert build_fish_world(30, parameters, seed=5).same_state_as(
            build_fish_world(30, parameters, seed=5)
        )


class TestDynamics:
    def test_speed_is_constant_per_tick(self, parameters):
        world = build_fish_world(60, parameters, seed=3)
        before = {fish.agent_id: fish.position() for fish in world.agents()}
        SequentialEngine(world, check_visibility=False).run_tick()
        for fish in world.agents():
            moved = math.dist(fish.position(), before[fish.agent_id])
            assert moved == pytest.approx(parameters.speed, rel=1e-6)

    def test_headings_remain_unit_after_updates(self, parameters):
        world = build_fish_world(60, parameters, seed=3)
        SequentialEngine(world, check_visibility=False).run(5)
        for fish in world.agents():
            assert math.hypot(fish.dx, fish.dy) == pytest.approx(1.0, rel=1e-9)

    def test_avoidance_pushes_close_fish_apart(self):
        parameters = CouzinParameters(alpha=2.0, rho=10.0, noise_sigma=0.0)
        fish_class = make_fish_class(parameters)
        world = build_fish_world(2, parameters, seed=1, fish_class=fish_class)
        first, second = world.agents()
        first.set_state_dict({"x": 0.0, "y": 0.0, "dx": 1.0, "dy": 0.0, "informed": 0})
        second.set_state_dict({"x": 0.5, "y": 0.0, "dx": -1.0, "dy": 0.0, "informed": 0})
        initial_distance = math.dist(first.position(), second.position())
        SequentialEngine(world, check_visibility=False).run(3)
        assert math.dist(first.position(), second.position()) > initial_distance

    def test_informed_fish_drag_the_school(self):
        parameters = CouzinParameters(
            informed_fraction=0.5, omega=0.9, noise_sigma=0.0,
            preferred_directions=(0.0, 0.0), seed_region=20.0,
        )
        fish_class = make_fish_class(parameters)
        world = build_fish_world(40, parameters, seed=4, fish_class=fish_class)
        start_x, _ = group_centroid(world.agents())
        SequentialEngine(world, check_visibility=False).run(20)
        end_x, _ = group_centroid(world.agents())
        assert end_x > start_x  # everyone informed towards +x moves the centroid right

    def test_opposed_informed_groups_stretch_the_school(self, parameters):
        stretched = CouzinParameters(
            informed_fraction=0.4, omega=0.9, noise_sigma=0.0, seed_region=20.0
        )
        fish_class = make_fish_class(stretched)
        world = build_fish_world(60, stretched, seed=5, fish_class=fish_class)
        initial_spread = school_spread(world.agents())
        SequentialEngine(world, check_visibility=False).run(30)
        assert school_spread(world.agents()) > initial_spread

    def test_brace_equivalence(self, parameters):
        reference = build_fish_world(60, parameters, seed=6)
        SequentialEngine(reference, check_visibility=False).run(5)
        world = build_fish_world(60, parameters, seed=6)
        BraceRuntime(world, BraceConfig(num_workers=4, check_visibility=False)).run(5)
        assert world.same_state_as(reference, tolerance=1e-9)


class TestStatistics:
    def test_polarization_bounds(self, parameters):
        world = build_fish_world(50, parameters, seed=7)
        value = school_polarization(world.agents())
        assert 0.0 <= value <= 1.0
        assert school_polarization([]) == 0.0

    def test_centroid_and_spread_of_known_configuration(self):
        parameters = CouzinParameters()
        fish_class = make_fish_class(parameters)
        fish = [
            fish_class(agent_id=0, x=-1.0, y=0.0),
            fish_class(agent_id=1, x=1.0, y=0.0),
        ]
        assert group_centroid(fish) == (0.0, 0.0)
        assert school_spread(fish) == pytest.approx(1.0)
        assert group_centroid([]) == (0.0, 0.0)
        assert school_spread([]) == 0.0
