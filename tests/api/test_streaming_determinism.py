"""Streaming and pause/resume must not change a single bit of the outcome.

The contract: a run consumed incrementally through ``stream()``, or
interrupted by ``pause()``/``resume()`` at any tick boundary, produces
final agent states bit-identical to a straight blocking ``run()`` — on
every executor backend, and for both session sources (Python agents and
BRASIL scripts).
"""

import pytest

from repro.api import Simulation
from repro.simulations.traffic import RING_LENGTH, build_ring_world
from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT

TICKS = 12
NUM_CARS = 36
SEED = 5
BACKENDS = ["serial", "thread", "process"]


def make_session(source: str, executor: str) -> Simulation:
    if source == "agents":
        session = Simulation.from_agents(build_ring_world(NUM_CARS, SEED))
    else:
        session = Simulation.from_script(
            TRAFFIC_SCRIPT, num_agents=NUM_CARS, seed=SEED, bounds=((0.0, RING_LENGTH),)
        )
    return (
        session.with_workers(4)
        .with_executor(executor, max_workers=4)
        .with_epochs(5)  # an epoch boundary (and rebalance check) mid-run
    )


@pytest.fixture(scope="module")
def reference_states():
    """Straight serial run of the agents world — the baseline bits."""
    with make_session("agents", "serial") as sim:
        return sim.run(TICKS).final_states


@pytest.mark.parametrize("executor", BACKENDS)
@pytest.mark.parametrize("source", ["agents", "script"])
def test_straight_run_matches_reference(source, executor, reference_states):
    with make_session(source, executor) as sim:
        assert sim.run(TICKS).final_states == reference_states


@pytest.mark.parametrize("executor", BACKENDS)
def test_stream_consumed_tick_by_tick_is_bit_identical(executor, reference_states):
    with make_session("agents", executor) as sim:
        events = [event for event in sim.stream(TICKS)]
        assert len(events) == TICKS
        assert sim.result().final_states == reference_states


@pytest.mark.parametrize("executor", BACKENDS)
def test_pause_resume_mid_run_is_bit_identical(executor, reference_states):
    with make_session("agents", executor) as sim:
        sim.run(TICKS // 2)
        sim.pause()
        sim.resume()
        result = sim.run(TICKS - TICKS // 2)
        assert result.ticks == TICKS
        assert result.final_states == reference_states


@pytest.mark.parametrize("executor", BACKENDS)
def test_pause_inside_stream_is_bit_identical(executor, reference_states):
    with make_session("agents", executor) as sim:
        sim.on_tick(lambda event: sim.pause() if event.tick == 4 else None)
        consumed = list(sim.stream(TICKS))
        assert len(consumed) == 5  # ticks 0..4, then the pause cut the stream
        assert sim.paused
        sim.resume()
        assert sim.run(TICKS - 5).final_states == reference_states


@pytest.mark.parametrize("executor", BACKENDS)
def test_script_stream_with_pause_is_bit_identical(executor, reference_states):
    with make_session("script", executor) as sim:
        for event in sim.stream(TICKS // 2):
            pass
        sim.pause()
        sim.resume()
        list(sim.stream(TICKS - TICKS // 2))
        assert sim.states() == reference_states


def test_repeated_pause_resume_every_tick_serial(reference_states):
    """The adversarial schedule: pause/resume around every single tick."""
    with make_session("agents", "serial") as sim:
        for _ in range(TICKS):
            sim.run(1)
            sim.pause()
            sim.resume()
        assert sim.states() == reference_states


def test_snapshot_states_stream_does_not_perturb_process_run(reference_states):
    with make_session("agents", "process") as sim:
        events = list(sim.stream(TICKS, snapshot_states=True))
        assert events[-1].states == reference_states
        assert sim.result().final_states == reference_states
