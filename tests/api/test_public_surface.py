"""Snapshot of the public API surface — accidental changes must fail loudly.

These tests pin (a) the names exported from ``repro`` itself, (b) the
``repro.api`` package's exports and (c) the public methods and properties of
:class:`Simulation` and the fields of :class:`RunResult`/:class:`Provenance`.
Extending the surface is fine — update the snapshot here, deliberately, in
the same commit — but removals and renames should never happen by accident.
"""

import dataclasses

import repro
import repro.api
from repro.api import Provenance, RunResult, Simulation

REPRO_EXPORTS = {
    "Agent",
    "StateField",
    "EffectField",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "MEAN",
    "PRODUCT",
    "ANY",
    "ALL",
    "COLLECT",
    "World",
    "SequentialEngine",
    "BraceRuntime",
    "BraceConfig",
    "Simulation",
    "RunResult",
    "Provenance",
    "TickEvent",
    "History",
    "__version__",
}

API_EXPORTS = {
    "Simulation",
    "RunResult",
    "Provenance",
    "TickEvent",
    "ConfigBuilder",
    "FluentConfig",
    "script_sha256",
}

SIMULATION_SURFACE = {
    # construction
    "from_agents",
    "from_script",
    # fluent configuration
    "with_executor",
    "with_nodes",
    "with_partitioning",
    "with_workers",
    "with_index",
    "with_spatial_backend",
    "with_plan_backend",
    "with_ipc_backend",
    "with_load_balancing",
    "with_epochs",
    "with_checkpointing",
    "with_seed",
    "with_non_local_effects",
    "with_options",
    "with_history",
    # observers
    "on_tick",
    "on_epoch",
    "on_checkpoint",
    "unsubscribe",
    # execution and lifecycle
    "run",
    "stream",
    "result",
    "states",
    "pause",
    "resume",
    "close",
    # introspection (``world`` is a per-instance attribute, not listed here)
    "started",
    "paused",
    "closed",
    "tick",
    "compiled",
    "config",
    "metrics",
    "runtime",
    "history",
}

RUN_RESULT_FIELDS = {
    "final_states",
    "metrics",
    "ticks",
    "provenance",
    "checkpoints_taken",
    "fault_events",
    "history_path",
}

PROVENANCE_FIELDS = {
    "source",
    "model",
    "backend",
    "seed",
    "config",
    "script_hash",
    "script_label",
    "nodes",
}


def test_repro_all_matches_snapshot():
    assert set(repro.__all__) == REPRO_EXPORTS
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"


def test_repro_api_all_matches_snapshot():
    assert set(repro.api.__all__) == API_EXPORTS
    for name in repro.api.__all__:
        assert hasattr(repro.api, name)


def test_simulation_public_surface_matches_snapshot():
    public = {
        name
        for name in dir(Simulation)
        if not name.startswith("_")
    }
    assert public == SIMULATION_SURFACE


def test_run_result_fields_match_snapshot():
    assert {field.name for field in dataclasses.fields(RunResult)} == RUN_RESULT_FIELDS


def test_provenance_fields_match_snapshot():
    assert {field.name for field in dataclasses.fields(Provenance)} == PROVENANCE_FIELDS


def test_version_is_a_sane_string():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_setup_py_version_matches_package():
    from pathlib import Path

    setup_text = (Path(__file__).resolve().parents[2] / "setup.py").read_text()
    assert f'version="{repro.__version__}"' in setup_text
