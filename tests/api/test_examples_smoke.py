"""Every script in examples/ must actually run (the examples-smoke job).

The examples double as executable documentation of the public API; this
suite executes each one in a subprocess exactly as a reader would
(``python examples/<name>.py``), so a drifting API or a broken example
fails CI instead of silently rotting.  The CI workflow runs this file as
its own ``examples-smoke`` job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_every_example_is_covered():
    """The parametrized list below must include every example on disk."""
    assert EXAMPLES, "examples/ directory is missing or empty"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(example):
    environment = dict(os.environ)
    src = str(REPO_ROOT / "src")
    environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=environment,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{example.name} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{example.name} printed nothing"
