"""The fluent builder must validate every knob at the call that sets it."""

import dataclasses

import pytest

from repro.api import Simulation
from repro.api.builder import ConfigBuilder
from repro.brace.config import BraceConfig
from repro.core.errors import BraceError
from repro.simulations.traffic import build_ring_world


def make_session():
    return Simulation.from_agents(build_ring_world(8, seed=1))


class TestFailFast:
    def test_unknown_executor_fails_at_the_call(self):
        with pytest.raises(BraceError, match="unknown executor 'proces'"):
            make_session().with_executor("proces")

    def test_unknown_index_fails_at_the_call(self):
        with pytest.raises(BraceError, match="unknown spatial index"):
            make_session().with_index("rtree")

    def test_unknown_partitioning_scheme(self):
        with pytest.raises(BraceError, match="unknown partitioning scheme"):
            make_session().with_partitioning("hexes")

    def test_grid_partitioning_requires_matching_cells(self):
        with pytest.raises(BraceError, match="product of grid_cells"):
            make_session().with_partitioning("grid", num_workers=4, grid_cells=(3, 2))

    def test_grid_cells_rejected_for_strip(self):
        with pytest.raises(BraceError, match="grid_cells only applies"):
            make_session().with_options(grid_cells=(2, 2))

    def test_negative_cell_size(self):
        with pytest.raises(BraceError, match="cell_size must be positive"):
            make_session().with_index("grid", cell_size=-1.0)

    def test_unknown_option_lists_valid_fields(self):
        with pytest.raises(BraceError, match="unknown configuration option 'bogus'"):
            make_session().with_options(bogus=1)

    def test_bad_threshold_message_is_actionable(self):
        with pytest.raises(BraceError, match="load_balance_threshold"):
            make_session().with_load_balancing(threshold=0.5)

    def test_failed_call_leaves_builder_usable(self):
        session = make_session()
        with pytest.raises(BraceError):
            session.with_executor("bogus")
        # The bad override was not recorded; the session still runs.
        session.with_executor("serial")
        with session:
            assert session.run(1).ticks == 1

    def test_runtime_init_still_validates(self):
        # The non-builder path fails fast too (satellite requirement).
        from repro.brace.runtime import BraceRuntime

        with pytest.raises(BraceError, match="unknown executor"):
            BraceRuntime(build_ring_world(4, seed=0), BraceConfig(executor="nope"))


class TestBuilderCompilation:
    def test_overrides_compile_down_to_braceconfig(self):
        session = (
            make_session()
            .with_executor("thread", max_workers=3)
            .with_workers(2)
            .with_epochs(7)
            .with_seed(99)
            .with_load_balancing(False)
            .with_checkpointing(every_epochs=2)
        )
        config = session.config
        assert isinstance(config, BraceConfig)
        assert config.executor == "thread"
        assert config.max_workers == 3
        assert config.num_workers == 2
        assert config.ticks_per_epoch == 7
        assert config.seed == 99
        assert config.load_balance is False
        assert config.checkpointing is True
        assert config.checkpoint_interval_epochs == 2

    def test_base_config_passes_through_untouched_fields(self):
        base = BraceConfig(num_workers=6, latency_seconds=1e-3)
        session = Simulation.from_agents(build_ring_world(8, seed=1), config=base)
        config = session.with_epochs(4).config
        assert config.num_workers == 6
        assert config.latency_seconds == 1e-3
        assert config.ticks_per_epoch == 4
        # The base object itself was never mutated.
        assert base.ticks_per_epoch == BraceConfig().ticks_per_epoch

    def test_builder_set_returns_validated_copy(self):
        builder = ConfigBuilder()
        builder.set(num_workers=3)
        config = builder.build()
        assert config.num_workers == 3
        assert builder.explicitly_set("num_workers")
        assert not builder.explicitly_set("executor")

    def test_every_braceconfig_field_is_reachable(self):
        builder = ConfigBuilder()
        for field in dataclasses.fields(BraceConfig):
            # set() accepts each field by name (with its current value).
            builder.set(**{field.name: getattr(BraceConfig(), field.name)})

    def test_explicit_cell_size_survives_script_overrides(self):
        from repro.api import Simulation
        from repro.simulations.traffic import RING_LENGTH
        from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT

        session = Simulation.from_script(
            TRAFFIC_SCRIPT, num_agents=8, seed=1, bounds=((0.0, RING_LENGTH),)
        ).with_index("grid", cell_size=123.0)
        assert session.config.index == "grid"
        assert session.config.cell_size == 123.0
        # Without an explicit cell size the optimizer's choice applies.
        forced = Simulation.from_script(
            TRAFFIC_SCRIPT, num_agents=8, seed=1, bounds=((0.0, RING_LENGTH),)
        ).with_index("grid")
        assert forced.config.cell_size not in (None, 123.0)

    def test_configuration_frozen_after_start(self):
        from repro.core.errors import SimulationSessionError

        with make_session() as session:
            session.run(1)
            with pytest.raises(SimulationSessionError, match="frozen"):
                session.with_workers(2)
