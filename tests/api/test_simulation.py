"""Session lifecycle, observers and the unified RunResult."""

import pytest

from repro.api import Provenance, RunResult, Simulation, TickEvent
from repro.brace.metrics import EpochStatistics
from repro.core.errors import BraceError, SimulationSessionError
from repro.simulations.traffic import RING_LENGTH, RingCar, build_ring_world
from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT

TICKS = 8
NUM_CARS = 24
SEED = 3


def agent_session():
    return Simulation.from_agents(build_ring_world(NUM_CARS, SEED)).with_workers(2)


def script_session():
    return Simulation.from_script(
        TRAFFIC_SCRIPT, num_agents=NUM_CARS, seed=SEED, bounds=((0.0, RING_LENGTH),)
    ).with_workers(2)


class TestConstruction:
    def test_from_agents_accepts_bare_agents_with_bounds(self):
        agents = [RingCar(x=float(position)) for position in (10.0, 400.0, 900.0)]
        with Simulation.from_agents(agents, bounds=((0.0, RING_LENGTH),)) as sim:
            result = sim.run(2)
        assert result.num_agents == 3

    def test_from_agents_without_bounds_fails_actionably(self):
        with pytest.raises(BraceError, match="needs bounds"):
            Simulation.from_agents([RingCar(x=1.0)])

    def test_from_script_compiles_eagerly(self):
        from repro.core.errors import BrasilError

        with pytest.raises(BrasilError):
            Simulation.from_script("class Broken {")

    def test_script_session_adopts_compiler_config(self):
        session = script_session()
        assert session.compiled is not None
        # The traffic script is all-local: one reduce pass.
        assert session.config.non_local_effects is False

    def test_direct_constructor_is_rejected_for_bad_source(self):
        with pytest.raises(SimulationSessionError):
            Simulation(build_ring_world(2, 0), "nonsense")


# One full deterministic run serves every test that only *reads* its
# RunResult (populated-result shape, resolved-provenance assertions) —
# lifecycle tests that need their own session keep building one.
@pytest.fixture(scope="module")
def full_run_result():
    with agent_session() as sim:
        return sim.run(TICKS)


class TestLifecycle:
    def test_run_returns_populated_result(self, full_run_result):
        result = full_run_result
        assert isinstance(result, RunResult)
        assert result.ticks == TICKS
        assert result.num_agents == NUM_CARS
        assert len(result.metrics.ticks) == TICKS
        assert result.throughput() > 0
        assert result.bytes_over_network() > 0
        provenance = result.provenance
        assert isinstance(provenance, Provenance)
        assert provenance.source == "agents"
        assert provenance.model == ("RingCar",)
        assert provenance.backend == "serial"
        assert provenance.seed == SEED
        assert provenance.script_hash is None
        assert "RingCar" in provenance.describe()

    def test_script_provenance_has_hash(self):
        with script_session() as sim:
            provenance = sim.run(2).provenance
        assert provenance.source == "script"
        assert provenance.script_hash is not None and len(provenance.script_hash) == 64
        assert provenance.script_label == "<script>"

    def test_run_accumulates_across_calls(self):
        with agent_session() as sim:
            sim.run(3)
            result = sim.run(2)
        assert result.ticks == 5
        assert sim.tick == 5

    def test_context_manager_closes(self):
        sim = agent_session()
        with sim:
            sim.run(1)
        assert sim.closed
        with pytest.raises(SimulationSessionError, match="closed"):
            sim.run(1)
        with pytest.raises(SimulationSessionError, match="closed"):
            sim.runtime

    def test_close_is_idempotent_and_works_unstarted(self):
        sim = agent_session()
        sim.close()
        sim.close()
        assert sim.closed

    def test_stream_yields_tick_events(self):
        with agent_session().with_epochs(3) as sim:
            events = list(sim.stream(7))
        assert len(events) == 7
        assert all(isinstance(event, TickEvent) for event in events)
        assert [event.tick for event in events] == list(range(7))
        boundaries = [event.tick for event in events if event.is_epoch_boundary]
        assert boundaries == [2, 5]

    def test_stream_with_state_snapshots(self):
        with agent_session() as sim:
            events = list(sim.stream(2, snapshot_states=True))
        assert all(event.states is not None for event in events)
        assert set(events[0].states) == set(events[1].states)
        assert events[0].states != events[1].states  # cars moved

    def test_new_stream_finalizes_the_previous_one(self):
        with agent_session() as sim:
            first = sim.stream(4)
            next(first)
            second = sim.stream(2)
            # Starting a new stream closed the first at its tick boundary.
            assert list(first) == []
            assert sum(1 for _ in second) == 2
            assert sim.tick == 3

    def test_abandoned_stream_does_not_wedge_the_session(self):
        with agent_session() as sim:
            for event in sim.stream(6):
                break  # abandon without closing — must not wedge run()
            result = sim.run(2)
            assert result.ticks == 3

    def test_pause_then_abandoned_stream_is_still_honoured(self):
        with agent_session() as sim:
            stream = sim.stream(6)
            next(stream)
            sim.pause()  # between pulls: takes effect at the next boundary
            with pytest.raises(SimulationSessionError, match="resume"):
                sim.run(1)  # finalizing the stream applied the pause
            assert sim.paused
            sim.resume()
            assert sim.run(1).ticks == 2

    def test_abandoned_stream_syncs_world(self):
        with agent_session().with_executor("process", max_workers=2) as sim:
            stream = sim.stream(6)
            for _ in range(2):
                next(stream)
            stream.close()
            # The driver world reflects the two executed ticks.
            assert sim.tick == 2
            states_after_break = sim.states()
        with agent_session() as reference:
            expected = reference.run(2).final_states
        assert states_after_break == expected


class TestObservers:
    def test_on_tick_on_epoch_on_checkpoint_fire(self):
        ticks_seen, epochs_seen, checkpoints_seen = [], [], []
        session = (
            agent_session()
            .with_epochs(2)
            .with_checkpointing(every_epochs=2)
            .on_tick(lambda event: ticks_seen.append(event.tick))
            .on_epoch(lambda epoch: epochs_seen.append(epoch.epoch))
            .on_checkpoint(lambda epoch: checkpoints_seen.append(epoch.epoch))
        )
        with session as sim:
            result = sim.run(8)
        assert ticks_seen == list(range(8))
        assert len(epochs_seen) == 4
        assert epochs_seen == sorted(epochs_seen)
        assert all(isinstance(epoch, int) for epoch in checkpoints_seen)
        assert checkpoints_seen  # the every-2-epochs schedule fired
        assert result.checkpoints_taken == checkpoints_seen

    def test_observers_fire_on_blocking_run_and_stream_alike(self):
        counts = {"run": 0, "stream": 0}
        with agent_session().on_tick(lambda e: counts.__setitem__("run", counts["run"] + 1)) as sim:
            sim.run(3)
        assert counts["run"] == 3
        with agent_session().on_tick(lambda e: counts.__setitem__("stream", counts["stream"] + 1)) as sim:
            list(sim.stream(3))
        assert counts["stream"] == 3

    def test_epoch_event_rides_on_tick_event(self):
        with agent_session().with_epochs(4) as sim:
            events = list(sim.stream(4))
        assert events[-1].epoch is not None
        assert isinstance(events[-1].epoch, EpochStatistics)
        assert all(event.epoch is None for event in events[:-1])


class TestPauseResume:
    def test_pause_before_start_is_an_error(self):
        with pytest.raises(SimulationSessionError, match="nothing to pause"):
            agent_session().pause()

    def test_resume_without_pause_is_an_error(self):
        with agent_session() as sim:
            sim.run(1)
            with pytest.raises(SimulationSessionError, match="not paused"):
                sim.resume()

    def test_run_while_paused_is_an_error(self):
        with agent_session() as sim:
            sim.run(2)
            sim.pause()
            with pytest.raises(SimulationSessionError, match="resume"):
                sim.run(1)
            sim.resume()
            sim.run(1)
            assert sim.tick == 3

    def test_pause_from_observer_stops_stream(self):
        session = agent_session()
        session.on_tick(lambda event: session.pause() if event.tick == 2 else None)
        with session as sim:
            events = list(sim.stream(10))
        assert len(events) == 3  # ticks 0, 1, 2
        assert sim.paused

    def test_pause_is_idempotent(self):
        with agent_session() as sim:
            sim.run(1)
            sim.pause()
            sim.pause()
            assert sim.paused

    def test_pause_releases_resident_shards(self):
        with agent_session().with_executor("process", max_workers=2) as sim:
            sim.run(2)
            assert sim.runtime.executor.has_shards()
            sim.pause()
            assert not sim.runtime.executor.has_shards()
            sim.resume()
            sim.run(1)


class TestRepr:
    def test_repr_reflects_lifecycle(self):
        sim = agent_session()
        assert "state=ready" in repr(sim)
        sim.run(1)
        assert "state=running" in repr(sim)
        sim.pause()
        assert "state=paused" in repr(sim)
        sim.close()
        assert "state=closed" in repr(sim)


class TestProvenanceRoundTrip:
    """result.provenance.config must reproduce the run without re-deriving
    any automatic default: every knob the runtime resolved (seed, shard
    residency, spatial backend) is recorded as the concrete choice that ran."""

    def test_automatic_knobs_are_recorded_resolved(self, full_run_result):
        result = full_run_result
        config = result.provenance.config
        # The session never set these; the defaults are None/auto — the
        # provenance must hold what actually executed instead.
        assert config.spatial_backend in ("python", "vectorized")
        assert config.resident_shards in (True, False)
        # Hand-written RingCar has no plan kernels: auto resolves to the
        # interpreter, and the provenance records that concrete choice.
        assert config.plan_backend == "interpreted"
        assert config.seed == result.provenance.seed

    def test_resolution_matches_the_runtime(self):
        sim = (
            agent_session()
            .with_executor("process", max_workers=2)
            .with_seed(23)
        )
        with sim:
            result = sim.run(2)
            runtime = sim.runtime
            config = result.provenance.config
            assert config.seed == runtime.seed == 23
            assert config.resident_shards == runtime.resident
            # The process executor does not share memory, so auto residency
            # resolves to on — and the provenance says so explicitly.
            assert config.resident_shards is True

    def test_config_round_trips_into_an_identical_run(self):
        """A session built from the recorded config replays bit-identically."""
        with agent_session().with_workers(2).with_epochs(3) as first:
            result = first.run(6)

        replayed = Simulation.from_agents(
            build_ring_world(NUM_CARS, SEED), config=result.provenance.config
        )
        with replayed:
            # The recorded config carries every resolved knob verbatim...
            assert replayed.config == result.provenance.config
            rerun = replayed.run(6)
        # ...and its provenance re-resolves to the same choices (fixpoint).
        assert rerun.provenance.config == result.provenance.config
        assert rerun.final_states == result.final_states
