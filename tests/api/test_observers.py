"""Edge cases of the observer contract: errors, unsubscription, firing order.

The happy path (observers see every tick/epoch/checkpoint) is covered by the
simulation tests; these pin down the contract under adversarial use — an
observer that raises mid-stream, observers that mutate the subscription
lists while a dispatch is in flight, and the relative order of the three
observer kinds at an epoch boundary.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.core.errors import SimulationSessionError
from repro.simulations.traffic.ring import build_ring_world


def session(**builder):
    sim = Simulation.from_agents(build_ring_world(8, seed=2))
    for name, value in builder.items():
        sim = getattr(sim, f"with_{name}")(value)
    return sim


class TestObserverExceptions:
    def test_exception_propagates_at_the_tick_boundary(self):
        """An observer error surfaces to the caller with the tick completed."""
        failures = []

        def boom(event):
            if event.tick == 3:
                failures.append(event.tick)
                raise RuntimeError("observer exploded")

        with session() as sim:
            sim.on_tick(boom)
            with pytest.raises(RuntimeError, match="observer exploded"):
                sim.run(6)
            # The tick itself finished before the observer fired
            # (event.tick is 0-based; the world is one past it).
            assert sim.tick == 4
            assert failures == [3]

    def test_stream_is_finalized_and_the_session_continues(self):
        """After an observer error the session runs on, bit-identically."""

        def boom(event):
            if event.tick == 2:
                raise RuntimeError("once")

        with session() as sim:
            sim.on_tick(boom)
            with pytest.raises(RuntimeError):
                sim.run(5)
            sim.unsubscribe(boom)
            sim.run(5 - sim.tick)
            resumed = sim.states()

        with session() as clean:
            clean.run(5)
            assert clean.states() == resumed

    def test_exception_inside_an_explicit_stream(self):
        """Raising while pulling a stream closes it; a new stream works."""
        with session() as sim:
            stream = sim.stream(4)
            next(stream)
            with pytest.raises(RuntimeError, match="consumer error"):
                stream.throw(RuntimeError("consumer error"))
            events = list(sim.stream(2))
            assert [event.tick for event in events] == [1, 2]


class TestUnsubscribe:
    def test_observer_can_unsubscribe_itself_mid_dispatch(self):
        """Dispatch iterates a copy, so self-removal is safe and immediate."""
        seen = []

        def once(event):
            seen.append(event.tick)
            sim.unsubscribe(once)

        later = []
        sim = session().on_tick(once).on_tick(lambda event: later.append(event.tick))
        with sim:
            sim.run(4)
        assert seen == [0]
        # The sibling observer registered after the self-remover still fired
        # on the removal tick and every one after it.
        assert later == [0, 1, 2, 3]

    def test_unsubscribe_covers_every_observer_kind(self):
        calls = []

        def everywhere(event_or_stats):
            calls.append(event_or_stats)

        sim = (
            session(epochs=2, checkpointing=1)
            .on_tick(everywhere)
            .on_epoch(everywhere)
            .on_checkpoint(everywhere)
        )
        with sim:
            sim.unsubscribe(everywhere)
            sim.run(4)
        assert calls == []

    def test_unsubscribing_an_unknown_observer_is_harmless(self):
        with session() as sim:
            sim.unsubscribe(lambda event: None)
            sim.run(1)

    def test_duplicate_registrations_are_all_removed(self):
        calls = []

        def counted(event):
            calls.append(event.tick)

        sim = session().on_tick(counted).on_tick(counted)
        with sim:
            sim.run(1)
            assert calls == [0, 0]
            sim.unsubscribe(counted)
            sim.run(1)
        assert calls == [0, 0]


class TestFiringOrder:
    def test_tick_then_epoch_then_checkpoint(self):
        """At a checkpointed epoch boundary the kinds fire in that order."""
        order = []
        sim = (
            session(epochs=2, checkpointing=1)
            .on_tick(lambda event: order.append(("tick", event.tick)))
            .on_epoch(lambda stats: order.append(("epoch", stats.epoch)))
            .on_checkpoint(lambda stats: order.append(("checkpoint", stats.epoch)))
        )
        with sim:
            sim.run(4)
        assert order == [
            ("tick", 0),
            ("tick", 1),
            ("epoch", 1),
            ("checkpoint", 1),
            ("tick", 2),
            ("tick", 3),
            ("epoch", 2),
            ("checkpoint", 2),
        ]

    def test_checkpoint_observers_silent_when_checkpointing_is_off(self):
        epochs = []
        checkpoints = []
        sim = (
            session(epochs=2)
            .on_epoch(lambda stats: epochs.append(stats.epoch))
            .on_checkpoint(lambda stats: checkpoints.append(stats.epoch))
        )
        with sim:
            sim.run(4)
        assert epochs == [1, 2]
        assert checkpoints == []

    def test_registrations_fire_in_registration_order(self):
        order = []
        sim = (
            session()
            .on_tick(lambda event: order.append("first"))
            .on_tick(lambda event: order.append("second"))
        )
        with sim:
            sim.run(1)
        assert order == ["first", "second"]


def test_observers_on_a_closed_session_raise():
    sim = session()
    sim.close()
    with pytest.raises(SimulationSessionError, match="closed"):
        sim.run(1)
