"""Tests for grid and strip spatial partitionings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PartitioningError
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import GridPartitioning, StripPartitioning

BOUNDS = BBox(((0.0, 100.0), (0.0, 100.0)))
coordinate = st.floats(min_value=0, max_value=100, allow_nan=False)


class TestGridPartitioning:
    def test_number_of_partitions(self):
        grid = GridPartitioning(BOUNDS, [4, 3])
        assert grid.num_partitions() == 12
        assert len(grid.partitions()) == 12

    def test_owned_regions_tile_the_bounds(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        total_volume = sum(part.owned_region.volume() for part in grid.partitions())
        assert total_volume == pytest.approx(BOUNDS.volume())

    def test_partition_of_center_points(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        for part in grid.partitions():
            assert grid.partition_of(part.owned_region.center()) == part.partition_id

    def test_clamps_out_of_bounds_points(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        assert grid.partition_of((-5.0, -5.0)) == grid.partition_of((0.0, 0.0))
        assert grid.partition_of((500.0, 500.0)) == grid.partition_of((99.9, 99.9))

    def test_replication_targets_cover_visible_region(self):
        grid = GridPartitioning(BOUNDS, [4, 1])
        targets = grid.replication_targets((26.0, 50.0), 2.0)
        # The point at x=26 with visibility 2 touches only the [25, 50) cell
        # and the [0, 25) cell (owned region expanded by 2 reaches 27 > 25).
        assert grid.partition_of((26.0, 50.0)) in targets
        assert grid.partition_of((24.0, 50.0)) in targets
        assert grid.partition_of((60.0, 50.0)) not in targets

    def test_invalid_configuration(self):
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [0, 2])
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [2])
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [2, 2]).partition(99)

    @settings(max_examples=60, deadline=None)
    @given(coordinate, coordinate)
    def test_every_point_owned_by_its_partition(self, x, y):
        grid = GridPartitioning(BOUNDS, [5, 4])
        part = grid.partition(grid.partition_of((x, y)))
        assert part.owned_region.contains_point((x, y))


class TestStripPartitioning:
    def test_uniform_strips(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4)
        assert strips.num_partitions() == 4
        assert strips.boundaries == [25.0, 50.0, 75.0]

    def test_partition_of_uses_boundaries(self):
        strips = StripPartitioning(BOUNDS, axis=0, boundaries=[10.0, 60.0])
        assert strips.partition_of((5.0, 0.0)) == 0
        assert strips.partition_of((30.0, 0.0)) == 1
        assert strips.partition_of((90.0, 0.0)) == 2

    def test_with_boundaries_rebuilds(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=3)
        rebalanced = strips.with_boundaries([10.0, 20.0])
        assert rebalanced.partition_of((15.0, 0.0)) == 1
        assert strips.partition_of((15.0, 0.0)) == 0  # the original is unchanged

    def test_axis_one(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=1, num_strips=2)
        assert strips.partition_of((0.0, 10.0)) == 0
        assert strips.partition_of((0.0, 90.0)) == 1

    def test_invalid_configurations(self):
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=2, boundaries=[])
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=0, boundaries=[60.0, 50.0])
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=0, boundaries=[150.0])
        with pytest.raises(PartitioningError):
            StripPartitioning.uniform(BOUNDS, axis=0, num_strips=0)

    def test_visible_region_expansion(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4)
        part = strips.partition(1)
        visible = part.visible_region([5.0, 5.0])
        assert visible.contains_point((22.0, 50.0))
        assert not part.owned_region.contains_point((22.0, 50.0))

    @settings(max_examples=60, deadline=None)
    @given(coordinate, coordinate, st.floats(min_value=0.1, max_value=20))
    def test_replication_targets_include_owner(self, x, y, radius):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=6)
        targets = strips.replication_targets((x, y), [radius, radius])
        assert strips.partition_of((x, y)) in targets
