"""Tests for grid and strip spatial partitionings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PartitioningError
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import GridPartitioning, StripPartitioning

BOUNDS = BBox(((0.0, 100.0), (0.0, 100.0)))
coordinate = st.floats(min_value=0, max_value=100, allow_nan=False)


class TestGridPartitioning:
    def test_number_of_partitions(self):
        grid = GridPartitioning(BOUNDS, [4, 3])
        assert grid.num_partitions() == 12
        assert len(grid.partitions()) == 12

    def test_owned_regions_tile_the_bounds(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        total_volume = sum(part.owned_region.volume() for part in grid.partitions())
        assert total_volume == pytest.approx(BOUNDS.volume())

    def test_partition_of_center_points(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        for part in grid.partitions():
            assert grid.partition_of(part.owned_region.center()) == part.partition_id

    def test_clamps_out_of_bounds_points(self):
        grid = GridPartitioning(BOUNDS, [2, 2])
        assert grid.partition_of((-5.0, -5.0)) == grid.partition_of((0.0, 0.0))
        assert grid.partition_of((500.0, 500.0)) == grid.partition_of((99.9, 99.9))

    def test_replication_targets_cover_visible_region(self):
        grid = GridPartitioning(BOUNDS, [4, 1])
        targets = grid.replication_targets((26.0, 50.0), 2.0)
        # The point at x=26 with visibility 2 touches only the [25, 50) cell
        # and the [0, 25) cell (owned region expanded by 2 reaches 27 > 25).
        assert grid.partition_of((26.0, 50.0)) in targets
        assert grid.partition_of((24.0, 50.0)) in targets
        assert grid.partition_of((60.0, 50.0)) not in targets

    def test_invalid_configuration(self):
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [0, 2])
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [2])
        with pytest.raises(PartitioningError):
            GridPartitioning(BOUNDS, [2, 2]).partition(99)

    @settings(max_examples=60, deadline=None)
    @given(coordinate, coordinate)
    def test_every_point_owned_by_its_partition(self, x, y):
        grid = GridPartitioning(BOUNDS, [5, 4])
        part = grid.partition(grid.partition_of((x, y)))
        assert part.owned_region.contains_point((x, y))


class TestStripPartitioning:
    def test_uniform_strips(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4)
        assert strips.num_partitions() == 4
        assert strips.boundaries == [25.0, 50.0, 75.0]

    def test_partition_of_uses_boundaries(self):
        strips = StripPartitioning(BOUNDS, axis=0, boundaries=[10.0, 60.0])
        assert strips.partition_of((5.0, 0.0)) == 0
        assert strips.partition_of((30.0, 0.0)) == 1
        assert strips.partition_of((90.0, 0.0)) == 2

    def test_with_boundaries_rebuilds(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=3)
        rebalanced = strips.with_boundaries([10.0, 20.0])
        assert rebalanced.partition_of((15.0, 0.0)) == 1
        assert strips.partition_of((15.0, 0.0)) == 0  # the original is unchanged

    def test_axis_one(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=1, num_strips=2)
        assert strips.partition_of((0.0, 10.0)) == 0
        assert strips.partition_of((0.0, 90.0)) == 1

    def test_invalid_configurations(self):
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=2, boundaries=[])
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=0, boundaries=[60.0, 50.0])
        with pytest.raises(PartitioningError):
            StripPartitioning(BOUNDS, axis=0, boundaries=[150.0])
        with pytest.raises(PartitioningError):
            StripPartitioning.uniform(BOUNDS, axis=0, num_strips=0)

    def test_visible_region_expansion(self):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4)
        part = strips.partition(1)
        visible = part.visible_region([5.0, 5.0])
        assert visible.contains_point((22.0, 50.0))
        assert not part.owned_region.contains_point((22.0, 50.0))

    @settings(max_examples=60, deadline=None)
    @given(coordinate, coordinate, st.floats(min_value=0.1, max_value=20))
    def test_replication_targets_include_owner(self, x, y, radius):
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=6)
        targets = strips.replication_targets((x, y), [radius, radius])
        assert strips.partition_of((x, y)) in targets


# ---------------------------------------------------------------------------
# Batch / scalar equivalence (property-based)
# ---------------------------------------------------------------------------
#: Bounds far from the origin: (coordinate - lo) loses low-order bits to
#: cancellation, so any divergence between the scalar and vectorized float
#: pipelines would surface here first.
FAR_BOUNDS = BBox(((1.0e7, 1.0e7 + 300.0), (-4.0e6, -4.0e6 + 300.0)))


def _axis_values(lo, hi, specials=()):
    """Coordinates along one axis: bulk floats plus adversarial exact values.

    The sampled specials hit the cases where scalar/batch disagreement would
    hide: boundary-exact coordinates (ownership decided by a single float
    comparison) and points just outside the bounds (clamping).
    """
    width = hi - lo
    exact = [lo, hi, lo + width / 2, float(np.nextafter(lo, hi)), *specials]
    return st.one_of(
        st.floats(
            min_value=lo - width, max_value=hi + width,
            allow_nan=False, allow_infinity=False,
        ),
        st.sampled_from(exact),
    )


def _cloud(bounds, specials_per_axis):
    """Point clouds over ``bounds``, with duplicates forced in."""
    axes = [
        st.tuples(*(
            _axis_values(lo, hi, specials_per_axis[dim])
            for dim, (lo, hi) in enumerate(bounds.intervals)
        ))
    ]
    return st.lists(axes[0], min_size=1, max_size=24).map(
        lambda points: points + points[: max(1, len(points) // 2)]
    )


def _grid_edges(bounds, dim, cells):
    lo, hi = bounds.intervals[dim]
    width = (hi - lo) / cells
    return [lo + index * width for index in range(cells + 1)]


class TestBatchScalarEquivalence:
    """``partition_of_batch`` must agree with ``partition_of`` element for
    element — the columnar map phase routes agents with the batch path while
    everything else (replication, load accounting) uses the scalar one, so
    even a single boundary-exact disagreement would split an agent's owner."""

    def _assert_batch_matches(self, partitioning, points):
        batch = partitioning.partition_of_batch(np.asarray(points, dtype=np.float64))
        scalar = [partitioning.partition_of(point) for point in points]
        assert batch.dtype == np.int64
        assert batch.tolist() == scalar

    @settings(max_examples=120, deadline=None)
    @given(_cloud(BOUNDS, [_grid_edges(BOUNDS, 0, 7), _grid_edges(BOUNDS, 1, 3)]))
    def test_grid_matches_scalar_near_origin(self, points):
        self._assert_batch_matches(GridPartitioning(BOUNDS, [7, 3]), points)

    @settings(max_examples=120, deadline=None)
    @given(
        _cloud(FAR_BOUNDS, [_grid_edges(FAR_BOUNDS, 0, 5), _grid_edges(FAR_BOUNDS, 1, 4)])
    )
    def test_grid_matches_scalar_far_from_origin(self, points):
        self._assert_batch_matches(GridPartitioning(FAR_BOUNDS, [5, 4]), points)

    @settings(max_examples=120, deadline=None)
    @given(_cloud(BOUNDS, [[25.0, 50.0, 75.0], []]))
    def test_uniform_strips_match_scalar(self, points):
        self._assert_batch_matches(
            StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4), points
        )

    @settings(max_examples=120, deadline=None)
    @given(
        _cloud(FAR_BOUNDS, [[], [-4.0e6 + 1.0, -4.0e6 + 7.5, -4.0e6 + 299.0]]),
        st.integers(min_value=0, max_value=1),
    )
    def test_irregular_strips_match_scalar_far_from_origin(self, points, axis):
        lo, hi = FAR_BOUNDS.intervals[axis]
        boundaries = [lo + 1.0, lo + 7.5, hi - 1.0]
        self._assert_batch_matches(
            StripPartitioning(FAR_BOUNDS, axis=axis, boundaries=boundaries), points
        )

    def test_boundary_exact_points_go_right(self):
        # bisect_right and searchsorted(side="right") both place a point
        # sitting exactly on a boundary in the strip to its right.
        strips = StripPartitioning(BOUNDS, axis=0, boundaries=[25.0, 50.0])
        points = [(25.0, 0.0), (50.0, 0.0), (np.nextafter(25.0, 0.0), 0.0)]
        assert [strips.partition_of(point) for point in points] == [1, 2, 0]
        self._assert_batch_matches(strips, points)

    def test_duplicate_positions_share_an_owner(self):
        grid = GridPartitioning(BOUNDS, [4, 4])
        points = [(12.5, 12.5)] * 5 + [(87.5, 87.5)] * 5
        owners = grid.partition_of_batch(np.asarray(points))
        assert len(set(owners[:5].tolist())) == 1
        assert len(set(owners[5:].tolist())) == 1
        self._assert_batch_matches(grid, points)

    def test_empty_batch(self):
        grid = GridPartitioning(BOUNDS, [4, 4])
        strips = StripPartitioning.uniform(BOUNDS, axis=0, num_strips=4)
        empty = np.empty((0, 2), dtype=np.float64)
        assert grid.partition_of_batch(empty).shape == (0,)
        assert strips.partition_of_batch(empty).shape == (0,)
