"""Tests for axis-aligned bounding boxes."""

import pytest
from hypothesis import given, strategies as st

from repro.spatial.bbox import BBox

coordinate = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def box_strategy(dim=2):
    def build(values):
        intervals = []
        for index in range(dim):
            low, high = sorted((values[2 * index], values[2 * index + 1]))
            intervals.append((low, high))
        return BBox(tuple(intervals))

    return st.lists(coordinate, min_size=2 * dim, max_size=2 * dim).map(build)


class TestConstruction:
    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            BBox(((1.0, 0.0),))

    def test_from_bounds(self):
        box = BBox.from_bounds([0, 0], [2, 3])
        assert box.lows == (0.0, 0.0)
        assert box.highs == (2.0, 3.0)

    def test_from_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            BBox.from_bounds([0], [1, 2])

    def test_around_scalar_radius(self):
        box = BBox.around((1.0, 2.0), 0.5)
        assert box.intervals == ((0.5, 1.5), (1.5, 2.5))

    def test_around_per_dimension_radii(self):
        box = BBox.around((0.0, 0.0), [1.0, 2.0])
        assert box.intervals == ((-1.0, 1.0), (-2.0, 2.0))

    def test_of_points(self):
        box = BBox.of_points([(0, 1), (2, -1), (1, 0)])
        assert box.intervals == ((0.0, 2.0), (-1.0, 1.0))

    def test_of_points_empty(self):
        with pytest.raises(ValueError):
            BBox.of_points([])


class TestPredicates:
    def test_contains_point_closed(self):
        box = BBox(((0.0, 1.0), (0.0, 1.0)))
        assert box.contains_point((0.0, 0.0))
        assert box.contains_point((1.0, 1.0))
        assert not box.contains_point((1.1, 0.5))

    def test_contains_box(self):
        outer = BBox(((0.0, 10.0), (0.0, 10.0)))
        inner = BBox(((2.0, 3.0), (2.0, 3.0)))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersects(self):
        a = BBox(((0.0, 2.0), (0.0, 2.0)))
        b = BBox(((1.0, 3.0), (1.0, 3.0)))
        c = BBox(((5.0, 6.0), (5.0, 6.0)))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            BBox(((0.0, 1.0),)).intersects(BBox(((0.0, 1.0), (0.0, 1.0))))


class TestCombinators:
    def test_intersection(self):
        a = BBox(((0.0, 2.0), (0.0, 2.0)))
        b = BBox(((1.0, 3.0), (1.0, 3.0)))
        assert a.intersection(b).intervals == ((1.0, 2.0), (1.0, 2.0))
        assert a.intersection(BBox(((5.0, 6.0), (5.0, 6.0)))) is None

    def test_union(self):
        a = BBox(((0.0, 1.0),))
        b = BBox(((2.0, 3.0),))
        assert a.union(b).intervals == ((0.0, 3.0),)

    def test_expanded(self):
        assert BBox(((0.0, 1.0),)).expanded(1.0).intervals == ((-1.0, 2.0),)

    def test_clamp_point(self):
        box = BBox(((0.0, 1.0), (0.0, 1.0)))
        assert box.clamp_point((2.0, -1.0)) == (1.0, 0.0)

    def test_split(self):
        left, right = BBox(((0.0, 4.0),)).split(0, 1.0)
        assert left.intervals == ((0.0, 1.0),)
        assert right.intervals == ((1.0, 4.0),)
        with pytest.raises(ValueError):
            BBox(((0.0, 4.0),)).split(0, 9.0)

    def test_geometry_accessors(self):
        box = BBox(((0.0, 2.0), (0.0, 4.0)))
        assert box.center() == (1.0, 2.0)
        assert box.volume() == 8.0
        assert box.side(1) == 4.0
        assert box.dim == 2

    def test_min_distance_to_point(self):
        box = BBox(((0.0, 1.0), (0.0, 1.0)))
        assert box.min_distance_to_point((0.5, 0.5)) == 0.0
        assert box.min_distance_to_point((4.0, 1.0)) == pytest.approx(3.0)


class TestProperties:
    @given(box_strategy(), box_strategy())
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(box_strategy(), box_strategy())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_box(overlap)
            assert b.contains_box(overlap)

    @given(box_strategy(), box_strategy())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(box_strategy(), st.tuples(coordinate, coordinate))
    def test_clamped_point_inside(self, box, point):
        assert box.contains_point(box.clamp_point(point))
