"""Tests for the spatial self-join algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.bbox import BBox
from repro.spatial.join import (
    available_indexes,
    build_index,
    index_self_join,
    neighbor_lists,
    nested_loop_self_join,
)

coordinate = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points_strategy = st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=30)


def identity_key(point):
    return point


def fixed_box(point):
    return BBox.around(point, 5.0)


class TestSelfJoins:
    def test_available_indexes(self):
        assert set(available_indexes()) == {"kdtree", "grid", "quadtree"}

    def test_build_index_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_index([(0, 0)], identity_key, index="rtree")

    def test_nested_loop_includes_self_when_in_box(self):
        points = [(0.0, 0.0), (1.0, 1.0), (100.0, 100.0)]
        joined = nested_loop_self_join(points, identity_key, fixed_box)
        assert sorted(joined[0]) == [(0.0, 0.0), (1.0, 1.0)]
        assert joined[2] == [(100.0, 100.0)]

    @pytest.mark.parametrize("index", ["kdtree", "grid", "quadtree"])
    def test_index_join_matches_nested_loop(self, index):
        rng = np.random.default_rng(0)
        points = [tuple(map(float, rng.uniform(-20, 20, size=2))) for _ in range(80)]
        expected = nested_loop_self_join(points, identity_key, fixed_box)
        actual = index_self_join(points, identity_key, fixed_box, index=index, cell_size=5.0)
        for probe_index in range(len(points)):
            assert sorted(actual[probe_index]) == sorted(expected[probe_index])

    @settings(max_examples=30, deadline=None)
    @given(points_strategy)
    def test_property_index_join_matches_nested_loop(self, points):
        expected = nested_loop_self_join(points, identity_key, fixed_box)
        actual = index_self_join(points, identity_key, fixed_box, index="kdtree")
        for probe_index in range(len(points)):
            assert sorted(map(repr, actual[probe_index])) == sorted(map(repr, expected[probe_index]))


class TestNeighborLists:
    def test_excludes_self_by_default(self):
        points = [(0.0, 0.0), (1.0, 0.0)]
        lists = neighbor_lists(points, identity_key, radius=2.0)
        assert lists[0] == [(1.0, 0.0)]
        assert lists[1] == [(0.0, 0.0)]

    def test_include_self(self):
        points = [(0.0, 0.0)]
        lists = neighbor_lists(points, identity_key, radius=1.0, include_self=True)
        assert lists[0] == [(0.0, 0.0)]

    def test_radius_is_euclidean(self):
        points = [(0.0, 0.0), (3.0, 4.0), (4.0, 4.0)]
        lists = neighbor_lists(points, identity_key, radius=5.0)
        assert (3.0, 4.0) in lists[0]
        assert (4.0, 4.0) not in lists[0]

    @pytest.mark.parametrize("index", [None, "kdtree", "grid", "quadtree"])
    def test_all_strategies_agree(self, index):
        rng = np.random.default_rng(1)
        points = [tuple(map(float, rng.uniform(-10, 10, size=2))) for _ in range(50)]
        reference = neighbor_lists(points, identity_key, radius=4.0, index=None)
        candidate = neighbor_lists(points, identity_key, radius=4.0, index=index)
        for probe_index in range(len(points)):
            assert sorted(candidate[probe_index]) == sorted(reference[probe_index])
