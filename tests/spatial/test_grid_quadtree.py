"""Tests for the uniform grid and quadtree indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.bbox import BBox
from repro.spatial.grid import UniformGrid
from repro.spatial.quadtree import QuadTree

coordinate = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points_strategy = st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=50)


class TestUniformGrid:
    def test_empty(self):
        grid = UniformGrid([], cell_size=1.0)
        assert len(grid) == 0
        assert grid.radius_query((0, 0), 5) == []

    def test_range_query(self):
        grid = UniformGrid([(0, 0), (5, 5), (9, 9)], cell_size=2.0)
        assert sorted(grid.range_query(BBox(((0, 6), (0, 6))))) == [(0, 0), (5, 5)]

    def test_radius_query(self):
        grid = UniformGrid([(0, 0), (3, 4), (10, 10)], cell_size=3.0)
        assert sorted(grid.radius_query((0, 0), 5.0)) == [(0, 0), (3, 4)]

    def test_negative_coordinates(self):
        grid = UniformGrid([(-5, -5), (5, 5)], cell_size=2.0)
        assert grid.range_query(BBox(((-6, 0), (-6, 0)))) == [(-5, -5)]

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            UniformGrid([(0, 0)], cell_size=0.0)

    def test_per_dimension_cell_size(self):
        grid = UniformGrid([(0, 0), (4, 1)], cell_size=[4.0, 1.0])
        assert grid.cell_size == (4.0, 1.0)
        assert len(grid.range_query(BBox(((0, 4), (0, 1))))) == 2

    def test_occupied_cells(self):
        grid = UniformGrid([(0, 0), (0.5, 0.5), (10, 10)], cell_size=2.0)
        assert grid.occupied_cells() == 2

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.tuples(coordinate, coordinate), st.floats(min_value=0.01, max_value=30))
    def test_matches_brute_force(self, points, center, radius):
        grid = UniformGrid(points, cell_size=5.0)
        box = BBox.around(center, radius)
        expected = [point for point in points if box.contains_point(point)]
        assert sorted(grid.range_query(box)) == sorted(expected)


class TestQuadTree:
    def test_empty(self):
        tree = QuadTree([])
        assert len(tree) == 0
        assert tree.range_query(BBox(((0, 1), (0, 1)))) == []

    def test_range_query(self):
        tree = QuadTree([(0, 0), (5, 5), (9, 9)])
        assert sorted(tree.range_query(BBox(((0, 6), (0, 6))))) == [(0, 0), (5, 5)]

    def test_radius_query(self):
        tree = QuadTree([(0, 0), (3, 4), (10, 10)])
        assert sorted(tree.radius_query((0, 0), 5.0)) == [(0, 0), (3, 4)]

    def test_splitting_beyond_capacity(self):
        points = [(float(i % 10), float(i // 10)) for i in range(100)]
        tree = QuadTree(points, capacity=4)
        assert tree.depth() > 0
        assert sorted(tree.range_query(BBox(((0, 9), (0, 9))))) == sorted(points)

    def test_duplicate_points_respect_max_depth(self):
        tree = QuadTree([(1.0, 1.0)] * 50, capacity=2, max_depth=5)
        assert len(tree.range_query(BBox(((0, 2), (0, 2))))) == 50
        assert tree.depth() <= 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            QuadTree([(0, 0)], capacity=0)

    def test_rejects_point_outside_given_bounds(self):
        with pytest.raises(ValueError):
            QuadTree([(10, 10)], bounds=BBox(((0, 1), (0, 1))))

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.tuples(coordinate, coordinate), st.floats(min_value=0.01, max_value=30))
    def test_matches_brute_force(self, points, center, radius):
        tree = QuadTree(points)
        box = BBox.around(center, radius)
        expected = [point for point in points if box.contains_point(point)]
        assert sorted(tree.range_query(box)) == sorted(expected)
