"""Tests for the k-d tree, including brute-force equivalence properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.bbox import BBox
from repro.spatial.kdtree import KDTree

coordinate = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points_strategy = st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=60)


def brute_force_range(points, box):
    return [point for point in points if box.contains_point(point)]


class TestConstruction:
    def test_empty_tree(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert tree.nearest((0, 0)) is None
        assert tree.range_query(BBox(((0, 1), (0, 1)))) == []

    def test_len_and_items(self):
        points = [(0, 0), (1, 1), (2, 2)]
        tree = KDTree(points)
        assert len(tree) == 3
        assert sorted(tree.items()) == points

    def test_key_function(self):
        items = [{"pos": (1, 2), "name": "a"}, {"pos": (3, 4), "name": "b"}]
        tree = KDTree(items, key=lambda item: item["pos"])
        found = tree.range_query(BBox(((0, 2), (0, 3))))
        assert [item["name"] for item in found] == ["a"]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KDTree([(1, 2), (1, 2, 3)])

    def test_duplicate_points_all_indexed(self):
        tree = KDTree([(1, 1)] * 5)
        assert len(tree.range_query(BBox(((0, 2), (0, 2))))) == 5

    def test_height_is_logarithmic_for_balanced_input(self):
        points = [(float(i), float(i % 7)) for i in range(127)]
        tree = KDTree(points)
        assert tree.height() <= 2 * (math.floor(math.log2(127)) + 1)


class TestRangeQueries:
    def test_simple_range(self):
        tree = KDTree([(0, 0), (5, 5), (10, 10)])
        assert sorted(tree.range_query(BBox(((0, 6), (0, 6))))) == [(0, 0), (5, 5)]

    def test_range_boundary_inclusive(self):
        tree = KDTree([(1, 1)])
        assert tree.range_query(BBox(((1, 2), (1, 2)))) == [(1, 1)]

    def test_query_dim_mismatch(self):
        tree = KDTree([(1, 1)])
        with pytest.raises(ValueError):
            tree.range_query(BBox(((0, 1),)))

    @settings(max_examples=60, deadline=None)
    @given(points_strategy, st.tuples(coordinate, coordinate), st.floats(min_value=0, max_value=50))
    def test_range_matches_brute_force(self, points, center, radius):
        tree = KDTree(points)
        box = BBox.around(center, radius)
        assert sorted(tree.range_query(box)) == sorted(brute_force_range(points, box))


class TestRadiusAndNearest:
    def test_radius_query(self):
        tree = KDTree([(0, 0), (3, 4), (6, 8)])
        assert sorted(tree.radius_query((0, 0), 5.0)) == [(0, 0), (3, 4)]

    def test_nearest(self):
        tree = KDTree([(0, 0), (10, 10), (2, 2)])
        assert tree.nearest((1.4, 1.4)) == (2, 2)

    def test_k_nearest_ordering(self):
        tree = KDTree([(0, 0), (1, 0), (5, 0), (10, 0)])
        assert tree.k_nearest((0, 0), 3) == [(0, 0), (1, 0), (5, 0)]

    def test_k_nearest_more_than_size(self):
        tree = KDTree([(0, 0), (1, 0)])
        assert len(tree.k_nearest((0, 0), 10)) == 2

    def test_nearest_within(self):
        tree = KDTree([(5, 5)])
        assert tree.nearest_within((0, 0), 2.0) is None
        assert tree.nearest_within((4, 4), 2.0) == (5, 5)

    @settings(max_examples=40, deadline=None)
    @given(points_strategy, st.tuples(coordinate, coordinate))
    def test_nearest_matches_brute_force(self, points, probe):
        tree = KDTree(points)
        nearest = tree.nearest(probe)
        if not points:
            assert nearest is None
            return
        best = min(points, key=lambda p: (p[0] - probe[0]) ** 2 + (p[1] - probe[1]) ** 2)
        best_distance = (best[0] - probe[0]) ** 2 + (best[1] - probe[1]) ** 2
        found_distance = (nearest[0] - probe[0]) ** 2 + (nearest[1] - probe[1]) ** 2
        assert found_distance == pytest.approx(best_distance)

    @settings(max_examples=40, deadline=None)
    @given(
        points_strategy,
        st.tuples(coordinate, coordinate),
        st.floats(min_value=0.01, max_value=50),
    )
    def test_radius_matches_brute_force(self, points, center, radius):
        tree = KDTree(points)
        expected = [
            point
            for point in points
            if (point[0] - center[0]) ** 2 + (point[1] - center[1]) ** 2 <= radius * radius
        ]
        assert sorted(tree.radius_query(center, radius)) == sorted(expected)
