"""Tests for the fixed-dimension vectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.vec import Vec2, Vec3

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, allow_subnormal=False
)


class TestVec2Arithmetic:
    def test_addition(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_subtraction(self):
        assert Vec2(5, 7) - Vec2(2, 3) == Vec2(3, 4)

    def test_scalar_multiplication(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_division(self):
        assert Vec2(4, 8) / 2 == Vec2(2, 4)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_indexing_and_iteration(self):
        vector = Vec2(3, 4)
        assert vector[0] == 3 and vector[1] == 4
        assert list(vector) == [3, 4]
        assert len(vector) == 2
        with pytest.raises(IndexError):
            vector[2]


class TestVec2Geometry:
    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)
        assert Vec2(0, 0).distance_sq_to(Vec2(3, 4)) == pytest.approx(25.0)

    def test_dot_and_cross(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1

    def test_normalized(self):
        unit = Vec2(3, 4).normalized()
        assert unit.norm() == pytest.approx(1.0)
        assert Vec2(0, 0).normalized() == Vec2(0, 0)

    def test_rotation(self):
        rotated = Vec2(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_from_angle(self):
        vector = Vec2.from_angle(math.pi, 2.0)
        assert vector.x == pytest.approx(-2.0)
        assert vector.y == pytest.approx(0.0, abs=1e-12)

    def test_clamped(self):
        assert Vec2(10, 0).clamped(3).norm() == pytest.approx(3.0)
        assert Vec2(1, 0).clamped(3) == Vec2(1, 0)

    def test_angle(self):
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)

    def test_as_tuple_and_zero(self):
        assert Vec2(1, 2).as_tuple() == (1, 2)
        assert Vec2.zero() == Vec2(0, 0)


class TestVec2Properties:
    @given(finite, finite, finite, finite)
    def test_addition_commutes(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert (a + b) == (b + a)

    @given(finite, finite)
    def test_normalized_has_unit_norm_or_zero(self, x, y):
        vector = Vec2(x, y)
        normalized = vector.normalized()
        if vector.norm() == 0:
            assert normalized == Vec2(0, 0)
        else:
            assert normalized.norm() == pytest.approx(1.0, rel=1e-9)

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6


class TestVec3:
    def test_arithmetic(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_norm_and_distance(self):
        assert Vec3(1, 2, 2).norm() == pytest.approx(3.0)
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 2, 2)) == pytest.approx(3.0)

    def test_cross_product(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_dot_product(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, 5, 6)) == 32

    def test_normalized(self):
        assert Vec3(0, 3, 4).normalized().norm() == pytest.approx(1.0)
        assert Vec3.zero().normalized() == Vec3(0, 0, 0)

    def test_indexing(self):
        vector = Vec3(1, 2, 3)
        assert [vector[i] for i in range(3)] == [1, 2, 3]
        assert len(vector) == 3
        with pytest.raises(IndexError):
            vector[3]
