"""Equivalence tests for the columnar spatial kernels.

The correctness bar of the vectorized backend: every strategy — k-d tree,
uniform grid, quadtree, nested loop and the columnar batch kernels — must
return *identical* match sets on every input, including the nasty ones
(clustered points, collinear points, exact duplicates, empty extents,
unbounded visible regions).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.bbox import BBox
from repro.spatial.columnar import (
    PointSet,
    VectorizedGrid,
    batch_neighbor_lists,
    batch_range_query,
    derive_cell_size,
    vectorized_neighbor_lists,
    vectorized_self_join,
)
from repro.spatial.join import neighbor_lists, visible_region_self_join

ALL_STRATEGIES = [None, "kdtree", "grid", "quadtree", "vectorized"]


def identity_key(point):
    return point


def distinct_points(values):
    """Materialize value tuples as distinct objects (identity matters)."""
    return [tuple(map(float, value)) for value in values]


def clustered_points(rng, count):
    centers = rng.uniform(-30, 30, size=(max(count // 10, 1), 2))
    return distinct_points(
        centers[rng.integers(0, len(centers), count)] + rng.normal(0, 0.4, size=(count, 2))
    )


def collinear_points(rng, count):
    xs = rng.uniform(-20, 20, count)
    return distinct_points(np.stack([xs, np.full(count, 3.0)], axis=1))


def duplicate_points(rng, count):
    base = rng.uniform(-5, 5, size=(max(count // 3, 1), 2))
    return distinct_points(base[rng.integers(0, len(base), count)])


def lists_of(strategy, points, radius):
    if strategy == "vectorized":
        return vectorized_neighbor_lists(points, identity_key, radius)
    return neighbor_lists(points, identity_key, radius, index=strategy)


class TestNeighborListEquivalence:
    @pytest.mark.parametrize("workload", [clustered_points, collinear_points, duplicate_points])
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES[1:])
    def test_all_strategies_identical_on_hard_inputs(self, workload, strategy):
        rng = np.random.default_rng(7)
        points = workload(rng, 120)
        reference = lists_of(None, points, 3.0)
        candidate = lists_of(strategy, points, 3.0)
        assert set(reference) == set(candidate)
        for probe in reference:
            # Identical sets AND identical (item) order: the accumulation
            # order downstream is part of the contract.
            assert list(map(repr, reference[probe])) == list(map(repr, candidate[probe]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-40, max_value=40, allow_nan=False),
                st.floats(min_value=-40, max_value=40, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        ),
        st.floats(min_value=0.0, max_value=15.0, allow_nan=False),
    )
    def test_property_vectorized_matches_nested_loop(self, values, radius):
        points = distinct_points(values)
        reference = lists_of(None, points, radius)
        candidate = lists_of("vectorized", points, radius)
        assert set(reference) == set(candidate)
        for probe in reference:
            assert list(map(repr, reference[probe])) == list(map(repr, candidate[probe]))

    def test_empty_input(self):
        assert vectorized_neighbor_lists([], identity_key, 1.0) == {}
        lists, examined = batch_neighbor_lists(PointSet([]), 1.0)
        assert lists == [] and len(examined) == 0

    def test_zero_radius_keeps_exact_duplicates(self):
        points = distinct_points([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)])
        lists = vectorized_neighbor_lists(points, identity_key, 0.0)
        assert lists[0] == [points[1]]
        assert lists[1] == [points[0]]
        assert lists[2] == []

    def test_include_self(self):
        points = distinct_points([(0.0, 0.0), (0.5, 0.0)])
        lists = vectorized_neighbor_lists(points, identity_key, 1.0, include_self=True)
        assert lists[0] == [points[0], points[1]]


class _Probe:
    """Minimal agent: a position plus an optional declared visible region."""

    def __init__(self, position, radius):
        self._position = tuple(map(float, position))
        self._radius = radius

    def position(self):
        return self._position

    def visible_region(self):
        if self._radius is None:
            return None
        return BBox.around(self._position, self._radius)

    def __repr__(self):
        return f"_Probe({self._position}, {self._radius})"


class TestSelfJoinEquivalence:
    @pytest.mark.parametrize("index", [None, "kdtree", "grid", "quadtree"])
    def test_visible_region_join_matches_vectorized(self, index):
        rng = np.random.default_rng(3)
        agents = [
            _Probe(rng.uniform(-20, 20, 2), radius)
            for radius in [2.0, 5.0, None, 0.5] * 20
        ]
        reference = visible_region_self_join(agents, index=index, cell_size=4.0)
        candidate = vectorized_self_join(agents)
        assert set(reference) == set(candidate)
        for probe in reference:
            assert reference[probe] == candidate[probe]

    def test_all_unbounded_probes_scan_everything(self):
        agents = [_Probe((float(i), 0.0), None) for i in range(5)]
        joined = vectorized_self_join(agents)
        for probe, matches in joined.items():
            assert matches == [a for i, a in enumerate(agents) if i != probe]

    def test_empty_extent(self):
        assert vectorized_self_join([]) == {}


class TestKernelPlumbing:
    def test_batch_range_query_box_misses_extent(self):
        pointset = PointSet(distinct_points([(0.0, 0.0), (1.0, 1.0)]))
        lists = batch_range_query(
            pointset, np.array([[50.0, 50.0]]), np.array([[60.0, 60.0]])
        )
        assert len(lists) == 1 and len(lists[0]) == 0

    def test_wide_probe_falls_back_to_scan(self):
        rng = np.random.default_rng(0)
        pointset = PointSet(distinct_points(rng.uniform(-5, 5, size=(50, 2))))
        grid = VectorizedGrid(pointset, 0.01)  # every box spans many cells
        probes, rows, examined = grid.batch_range_query(
            pointset.points - 100.0, pointset.points + 100.0
        )
        assert len(rows) == 50 * 50
        assert (examined == 50).all()

    def test_infinite_boxes_are_clamped(self):
        pointset = PointSet(distinct_points([(0.0, 0.0), (3.0, 4.0)]))
        lists = batch_range_query(
            pointset,
            np.array([[-np.inf, -np.inf]]),
            np.array([[np.inf, np.inf]]),
            cell_size=1.0,
        )
        assert list(lists[0]) == [0, 1]

    def test_grid_rejects_bad_cell_size(self):
        pointset = PointSet(distinct_points([(0.0, 0.0)]))
        with pytest.raises(ValueError):
            VectorizedGrid(pointset, 0.0)
        with pytest.raises(ValueError):
            VectorizedGrid(pointset, float("inf"))

    def test_derive_cell_size_degenerate_extents(self):
        assert derive_cell_size([(1.0, 2.0)]) == (1.0, 1.0)  # single point
        sizes = derive_cell_size([(0.0, 5.0), (10.0, 5.0)])  # flat in y
        assert sizes[0] > 0 and sizes[1] == 1.0

    def test_pointset_rejects_mismatched_points(self):
        with pytest.raises(ValueError):
            PointSet([(0.0, 0.0)], points=np.zeros((2, 2)))
