"""The analytics surface: series, aggregates, diffs, retention, provenance.

Everything here runs against real recorded trajectories (small ring/fish
runs), so the queries are tested end to end — session recording included —
not against hand-built store fixtures.
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.core.errors import HistoryError, SimulationSessionError
from repro.harness.table2 import rmspe_from_histories
from repro.history import History, HistoryStore
from repro.simulations.traffic.ring import RING_LENGTH, build_ring_world


def record_ring(path, *, seed=3, cars=12, ticks=10, **history_options):
    session = (
        Simulation.from_agents(build_ring_world(cars, seed=seed))
        .with_history(path, **history_options)
    )
    with session:
        result = session.run(ticks)
    return result


# Module-scoped: recording is deterministic and every consumer is read-only
# (series, aggregates, the left side of diffs), so one 10-tick simulation
# serves the whole module instead of one per test.
@pytest.fixture(scope="module")
def history(tmp_path_factory):
    root = tmp_path_factory.mktemp("queries-history")
    record_ring(root / "run", checkpoint_every=4)
    return History.open(root / "run")


@pytest.fixture(scope="module")
def twin_history(tmp_path_factory):
    """A bit-identical second recording (same seed) for diff/RMSPE tests."""
    root = tmp_path_factory.mktemp("queries-twin")
    record_ring(root / "twin", checkpoint_every=4)
    return History.open(root / "twin")


class TestSeries:
    def test_single_field_series_covers_every_tick(self, history):
        series = history.series(0, "x")
        assert [tick for tick, _ in series] == list(range(11))
        assert all(0.0 <= value < RING_LENGTH for _, value in series)

    def test_multi_field_series_yields_dicts(self, history):
        series = history.series(0, ["x", "v"], start=2, stop=5)
        assert [tick for tick, _ in series] == [2, 3, 4, 5]
        assert set(series[0][1]) == {"x", "v"}

    def test_series_matches_state_at(self, history):
        for tick, value in history.series(3, "v"):
            assert value == history.state_at(tick)[3]["v"]

    def test_absent_agent_is_skipped(self, history):
        assert history.series(999, "x") == []


class TestAggregates:
    def test_named_reducers(self, history):
        mean = history.aggregate_series("v", "mean")
        total = history.aggregate_series("v", "sum")
        count = history.aggregate_series("v", "count")
        assert len(mean) == len(total) == len(count) == 11
        for (_, m), (_, s), (_, c) in zip(mean, total, count):
            assert c == 12.0
            assert m == pytest.approx(s / c)

    def test_callable_reducer_and_where_filter(self, history):
        upper_half = history.aggregate_series(
            "x",
            reduce=lambda values: max(values, default=0.0),
            where=lambda agent_id, state: state["x"] >= RING_LENGTH / 2,
        )
        full = history.aggregate_series("x", "max")
        assert [tick for tick, _ in upper_half] == [tick for tick, _ in full]

    def test_unknown_reducer_raises(self, history):
        with pytest.raises(HistoryError, match="unknown reducer"):
            history.aggregate_series("v", "median")

    def test_window_aggregate_reduces_consecutive_windows(self, history):
        series = history.aggregate_series("v", "mean")
        windows = history.window_aggregate(series, 4, "mean")
        assert [tick for tick, _ in windows] == [0, 4, 8]
        assert windows[0][1] == pytest.approx(
            sum(value for _, value in series[:4]) / 4
        )
        with pytest.raises(HistoryError, match="window"):
            history.window_aggregate(series, 0)


class TestDiff:
    def test_identical_runs_diff_clean(self, history, twin_history):
        diff = history.diff(twin_history)
        assert diff.identical
        assert diff.first_divergent_tick is None
        assert "identical" in diff.summary()

    def test_divergent_runs_report_first_tick_and_agent_deltas(self, tmp_path, history):
        record_ring(tmp_path / "other", seed=4, checkpoint_every=4)
        diff = history.diff(History.open(tmp_path / "other"))
        # Different seeds place the cars differently from the very start.
        assert diff.first_divergent_tick == 0
        assert diff.agent_deltas
        agent_id, deltas = next(iter(diff.agent_deltas.items()))
        left, right = deltas["x"]
        assert left != right
        assert history.state_at(0)[agent_id]["x"] == left
        assert f"tick {diff.first_divergent_tick}" in diff.summary()

    def test_population_mismatch_is_reported(self, tmp_path, history):
        record_ring(tmp_path / "bigger", cars=14, checkpoint_every=4)
        diff = history.diff(History.open(tmp_path / "bigger"))
        assert diff.first_divergent_tick == 0
        assert diff.only_in_right == (12, 13)

    def test_disjoint_ranges_raise(self, tmp_path, history):
        with pytest.raises(HistoryError, match="no ticks"):
            history.diff(history, start=5, stop=2)


class TestRetention:
    def test_max_ticks_thins_to_a_checkpoint_floor(self, tmp_path):
        record_ring(tmp_path / "run", ticks=20, checkpoint_every=4, max_ticks=6)
        history = History.open(tmp_path / "run")
        # Deltas survive only past the highest checkpoint <= (20 - 6).
        assert history.store.delta_ticks() == list(range(13, 21))
        # Checkpoint ticks and the recent window stay queryable...
        for tick in (0, 4, 8, 12, 16, 20) + tuple(range(13, 21)):
            assert history.state_at(tick)
        # ...but thinned delta ticks are gone, loudly.
        with pytest.raises(HistoryError, match="thinned"):
            history.state_at(9)
        assert 9 not in history.ticks()

    def test_thin_to_checkpoints_keeps_only_checkpoint_ticks(self, tmp_path):
        record_ring(
            tmp_path / "run", ticks=12, checkpoint_every=5, thin_to_checkpoints=True
        )
        history = History.open(tmp_path / "run")
        assert history.ticks() == [0, 5, 10, 11, 12]
        assert history.state_at(5)

    def test_out_of_range_requests_name_the_range(self, tmp_path):
        record_ring(tmp_path / "run", ticks=5)
        history = History.open(tmp_path / "run")
        with pytest.raises(HistoryError, match="0..5"):
            history.state_at(6)
        with pytest.raises(HistoryError, match="0..5"):
            history.state_at(-1)


class TestSessionIntegration:
    def test_result_records_the_history_path(self, tmp_path):
        result = record_ring(tmp_path / "run")
        assert result.history_path == str(tmp_path / "run")
        no_history = Simulation.from_agents(build_ring_world(6, seed=1))
        with no_history:
            assert no_history.run(2).history_path is None

    def test_events_flag_persistence(self, tmp_path):
        recorded = Simulation.from_agents(build_ring_world(6, seed=1)).with_history(
            tmp_path / "run"
        )
        with recorded:
            assert all(event.persisted for event in recorded.stream(3))
        plain = Simulation.from_agents(build_ring_world(6, seed=1))
        with plain:
            assert not any(event.persisted for event in plain.stream(3))

    def test_history_property_requires_attachment(self):
        session = Simulation.from_agents(build_ring_world(6, seed=1))
        with pytest.raises(SimulationSessionError, match="with_history"):
            session.history

    def test_double_attachment_is_rejected(self, tmp_path):
        session = Simulation.from_agents(build_ring_world(6, seed=1)).with_history(
            tmp_path / "a"
        )
        with pytest.raises(SimulationSessionError, match="already attached"):
            session.with_history(tmp_path / "b")

    def test_attachment_after_start_is_rejected(self, tmp_path):
        session = Simulation.from_agents(build_ring_world(6, seed=1))
        with session:
            session.run(1)
            with pytest.raises(SimulationSessionError, match="frozen"):
                session.with_history(tmp_path / "late")

    def test_existing_store_is_not_clobbered(self, tmp_path):
        record_ring(tmp_path / "run", ticks=3)
        with pytest.raises(HistoryError, match="overwrite=True"):
            Simulation.from_agents(build_ring_world(6, seed=1)).with_history(
                tmp_path / "run"
            )

    def test_escape_hatch_ticks_break_continuity_loudly(self, tmp_path):
        session = Simulation.from_agents(build_ring_world(6, seed=1)).with_history(
            tmp_path / "run"
        )
        with session:
            session.run(2)
            session.runtime.run_tick()  # bypasses the recording session
            with pytest.raises(HistoryError, match="recording gap"):
                session.run(1)

    def test_history_usable_after_close(self, tmp_path):
        session = Simulation.from_agents(build_ring_world(6, seed=1)).with_history(
            tmp_path / "run"
        )
        with session:
            session.run(4)
            final = session.states()
        assert session.history.state_at(4) == final


class TestProvenanceManifest:
    def test_manifest_provenance_describes_the_run(self, tmp_path):
        session = (
            Simulation.from_agents(build_ring_world(8, seed=2))
            .with_seed(2)
            .with_history(tmp_path / "run")
        )
        with session:
            session.run(3)
        provenance = History.open(tmp_path / "run").provenance
        assert provenance["source"] == "agents"
        assert provenance["model"] == ["RingCar"]
        assert provenance["seed"] == 2
        # Automatic knobs are stored resolved, never as None/auto.
        assert provenance["config"]["spatial_backend"] in ("python", "vectorized")
        assert provenance["config"]["resident_shards"] in (True, False)

    def test_world_at_reconstructs_bounds_seed_and_tick(self, tmp_path):
        record_ring(tmp_path / "run", ticks=6)
        world = History.open(tmp_path / "run").world_at(6)
        assert world.tick == 6
        assert world.seed == 3
        assert world.bounds.intervals == ((0.0, RING_LENGTH),)
        assert world.agent_count() == 12


class TestRmspeAsQuery:
    def test_identical_histories_have_zero_rmspe(self, history, twin_history):
        assert rmspe_from_histories(history, twin_history, "v", start=1) == 0.0

    def test_divergent_histories_have_positive_rmspe(self, tmp_path, history):
        record_ring(tmp_path / "other", seed=9, checkpoint_every=4)
        other = History.open(tmp_path / "other")
        error = rmspe_from_histories(history, other, "x", window=2)
        assert error > 0.0

    def test_misaligned_ranges_raise(self, tmp_path, history):
        record_ring(tmp_path / "short", ticks=4)
        short = History.open(tmp_path / "short")
        with pytest.raises(ValueError, match="tick ranges"):
            rmspe_from_histories(history, short, "v")
        # Explicit alignment works.
        assert rmspe_from_histories(history, short, "v", start=1, stop=4) == 0.0


def test_store_reuse_via_simulation_history_matches_reopen(tmp_path):
    """session.history and History.open(path) answer identically."""
    session = Simulation.from_agents(build_ring_world(8, seed=6)).with_history(
        tmp_path / "run"
    )
    with session:
        session.run(5)
        live = session.history
        reopened = History.open(tmp_path / "run")
        for tick in range(6):
            assert live.state_at(tick) == reopened.state_at(tick)


def test_history_store_exported_from_package():
    assert HistoryStore is not None
