"""Differential replay: ``History.state_at(t)`` == a fresh run truncated at t.

The history store's contract is *bit-identical time travel*: for every
recorded tick ``t``, replaying the store must reproduce exactly the agent
states a fresh run of the same model would report after ``t`` ticks.  These
tests enforce the contract differentially across the full execution matrix —

    {fish school, traffic ring} x {serial, process executor}
        x {python, vectorized spatial backend} x {resident shards on, off}

— with a pause/resume boundary in the middle of every recorded run, plus
checkpoint recovery (``recover()``) and a dynamic population (births and
deaths) as separate scenarios.  The reference is always a serial run:
cross-backend state equivalence is the repo's standing invariant, so any
deviation localizes to the recording/replay layer itself.

Process-executor combinations spin up pools and are marked ``slow`` (the CI
history-smoke job runs with ``-m "not slow"``).
"""

from __future__ import annotations

import pytest

from repro.api import Simulation
from repro.history import History
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.traffic.ring import build_ring_world
from tests.conftest import SpawningAgent, make_boid_world

TICKS = 10
PAUSE_AT = 4


def fish_world():
    # The canonical Fish class is importable by name, as pickling (process
    # executor payloads and recorded clones alike) requires.
    return build_fish_world(24, seed=5, fish_class=Fish)


def ring_world():
    return build_ring_world(20, seed=3)


WORLDS = {"fish": fish_world, "ring": ring_world}


def reference_states(world_builder, ticks):
    """Tick -> states for a fresh serial run: {0: initial, t+1: after tick t}."""
    session = Simulation.from_agents(world_builder())
    reference = {0: session.states()}
    with session:
        for event in session.stream(ticks, snapshot_states=True):
            reference[event.tick + 1] = event.states
    return reference


def record_run(world_builder, path, *, executor, backend, resident, ticks=TICKS):
    """Record ``ticks`` ticks with a pause/resume boundary in the middle."""
    session = (
        Simulation.from_agents(world_builder())
        .with_executor(executor, max_workers=2)
        .with_workers(2)
        .with_spatial_backend(backend)
        .with_options(resident_shards=resident)
        .with_history(path, checkpoint_every=4)
    )
    with session:
        session.run(PAUSE_AT)
        session.pause()
        session.resume()
        session.run(ticks - PAUSE_AT)
    return session


MATRIX = [
    pytest.param(
        executor,
        backend,
        resident,
        marks=[pytest.mark.slow] if executor == "process" else [],
        id=f"{executor}-{backend}-{'resident' if resident else 'inplace'}",
    )
    for executor in ("serial", "process")
    for backend in ("python", "vectorized")
    for resident in (False, True)
]


# Every matrix cell compares against the same deterministic serial
# reference, so compute it once per workload instead of once per cell.
@pytest.fixture(scope="module")
def cached_references():
    cache = {}

    def get(workload):
        if workload not in cache:
            cache[workload] = reference_states(WORLDS[workload], TICKS)
        return cache[workload]

    return get


# The serial/auto/in-place recording is read-only for its consumers, so one
# recording per workload serves every test that replays it.
@pytest.fixture(scope="module", params=sorted(WORLDS))
def serial_recording(request, tmp_path_factory):
    workload = request.param
    path = tmp_path_factory.mktemp(f"replay-{workload}") / "run"
    record_run(WORLDS[workload], path, executor="serial", backend=None, resident=False)
    return workload, History.open(path)


@pytest.mark.parametrize("workload", sorted(WORLDS))
@pytest.mark.parametrize("executor,backend,resident", MATRIX)
def test_state_at_matches_fresh_run_across_backends(
    tmp_path, cached_references, workload, executor, backend, resident
):
    """Every recorded tick replays bit-identically, on every combination."""
    path = tmp_path / "run"
    record_run(
        WORLDS[workload], path, executor=executor, backend=backend, resident=resident
    )
    reference = cached_references(workload)
    history = History.open(path)

    assert history.base_tick == 0
    assert history.last_tick == TICKS
    for tick in range(TICKS + 1):
        assert history.state_at(tick) == reference[tick], (
            f"replay diverged at tick {tick} "
            f"({workload}, {executor}, {backend}, resident={resident})"
        )


def test_walk_matches_state_at(serial_recording):
    """Sequential replay and per-tick replay reconstruct the same states."""
    _, history = serial_recording
    walked = dict(history.walk())
    assert sorted(walked) == list(range(TICKS + 1))
    for tick, states in walked.items():
        assert states == history.state_at(tick)


def test_state_at_equals_literally_truncated_fresh_runs(serial_recording):
    """The acceptance criterion verbatim: state_at(t) == a run stopped at t."""
    workload, history = serial_recording
    for tick in (0, 3, PAUSE_AT, 7, TICKS):
        fresh = Simulation.from_agents(WORLDS[workload]())
        with fresh:
            fresh.run(tick)
            assert history.state_at(tick) == fresh.states(), (
                f"history disagrees with a fresh {tick}-tick run"
            )


@pytest.mark.parametrize(
    "executor",
    ["serial", pytest.param("process", marks=pytest.mark.slow)],
)
def test_recovery_rewinds_the_store_and_rerecords(tmp_path, executor):
    """recover() truncates the stale tail; the re-run records bit-identically.

    A failure at tick 7 rewinds to the runtime checkpoint at tick 6; the
    re-executed ticks overwrite the truncated frames, so the final history
    matches an uninterrupted run over its entire range.
    """
    total = 11
    session = (
        Simulation.from_agents(fish_world())
        .with_executor(executor, max_workers=2)
        .with_workers(2)
        .with_epochs(3)
        .with_checkpointing(every_epochs=1)
        .with_history(tmp_path / "run", checkpoint_every=4)
    )
    with session:
        session.run(7)
        ticks_lost = session.runtime.recover()
        assert ticks_lost == 1
        assert session.history.last_tick == 6  # the stale tick-7 frame is gone
        session.run(total - session.tick)
        assert session.tick == total

    reference = reference_states(fish_world, total)
    history = History.open(tmp_path / "run")
    for tick in range(total + 1):
        assert history.state_at(tick) == reference[tick], (
            f"post-recovery replay diverged at tick {tick} ({executor})"
        )


def test_recovery_across_pause_resume_boundary(tmp_path):
    """pause/resume then recover then more ticks — the full lifecycle gauntlet."""
    total = 12
    session = (
        Simulation.from_agents(ring_world())
        .with_epochs(3)
        .with_checkpointing(every_epochs=1)
        .with_history(tmp_path / "run", checkpoint_every=5)
    )
    with session:
        session.run(4)
        session.pause()
        session.resume()
        session.run(4)  # now at tick 8, runtime checkpoint at tick 6
        session.runtime.recover()
        assert session.tick == 6
        session.run(total - session.tick)

    reference = reference_states(ring_world, total)
    history = History.open(tmp_path / "run")
    for tick in range(total + 1):
        assert history.state_at(tick) == reference[tick]


def test_dynamic_population_replays_births_deaths_and_ids(tmp_path):
    """Spawns, kills and id allocation all round-trip through the store."""
    ticks = 12

    def world_builder():
        return make_boid_world(num_agents=30, seed=11, agent_class=SpawningAgent)

    session = (
        Simulation.from_agents(world_builder())
        .with_history(tmp_path / "run", checkpoint_every=5)
    )
    with session:
        session.run(ticks)
        final_population = set(session.states())

    reference = reference_states(world_builder, ticks)
    history = History.open(tmp_path / "run")
    populations = set()
    for tick in range(ticks + 1):
        states = history.state_at(tick)
        assert states == reference[tick]
        populations.add(frozenset(states))
    # The scenario exercised real population churn, not a fixed roster.
    assert len(populations) > 1
    assert set(history.state_at(ticks)) == final_population
    # A reconstructed world resumes id allocation where the run left off.
    replayed = history.world_at(ticks)
    live = Simulation.from_agents(world_builder())
    with live:
        live.run(ticks)
        assert replayed.next_agent_id == live.world.next_agent_id


def test_history_readable_while_the_run_is_live(tmp_path):
    """A reader in (conceptually) another process sees every completed tick."""
    session = Simulation.from_agents(ring_world()).with_history(tmp_path / "run")
    with session:
        seen = []
        for event in session.stream(6):
            assert event.persisted
            # Re-open from disk each tick: nothing is held back in memory.
            reader = History.open(tmp_path / "run")
            assert reader.last_tick == event.tick + 1
            seen.append(reader.state_at(event.tick + 1))
        assert seen[-1] == session.states()
