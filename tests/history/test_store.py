"""Unit tests for the on-disk store: layout, ordering, truncation, thinning."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import HistoryError
from repro.history.store import FORMAT, HistoryStore


@pytest.fixture
def store(tmp_path):
    return HistoryStore.create(tmp_path / "store", checkpoint_every=4)


class TestCreateAndOpen:
    def test_create_initializes_the_layout(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s")
        assert (tmp_path / "s" / "manifest.json").exists()
        assert (tmp_path / "s" / "checkpoints").is_dir()
        assert store.manifest["format"] == FORMAT
        assert store.delta_ticks() == []
        assert store.checkpoint_ticks() == []

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(HistoryError, match="no recorded history"):
            HistoryStore.open(tmp_path / "nowhere")

    def test_create_refuses_to_clobber(self, tmp_path):
        HistoryStore.create(tmp_path / "s")
        with pytest.raises(HistoryError, match="overwrite=True"):
            HistoryStore.create(tmp_path / "s")

    def test_create_overwrite_resets_everything(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s")
        store.append_delta(1, {"tick": 1})
        store.write_checkpoint(0, {"tick": 0})
        store.close()
        fresh = HistoryStore.create(tmp_path / "s", overwrite=True)
        assert fresh.delta_ticks() == []
        assert fresh.checkpoint_ticks() == []

    def test_unknown_format_raises(self, tmp_path):
        HistoryStore.create(tmp_path / "s").close()
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "repro-history/99"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(HistoryError, match="format"):
            HistoryStore.open(tmp_path / "s")

    def test_corrupt_manifest_raises(self, tmp_path):
        HistoryStore.create(tmp_path / "s").close()
        (tmp_path / "s" / "manifest.json").write_text("{not json")
        with pytest.raises(HistoryError, match="unreadable"):
            HistoryStore.open(tmp_path / "s")

    def test_bad_cadence_and_retention_values_raise(self, tmp_path):
        with pytest.raises(HistoryError, match="checkpoint_every"):
            HistoryStore.create(tmp_path / "a", checkpoint_every=0)
        with pytest.raises(HistoryError, match="max_ticks"):
            HistoryStore.create(tmp_path / "b", max_ticks=0)


class TestDeltaSegment:
    def test_append_and_read_round_trip(self, store):
        record = {"tick": 1, "killed": [3], "groups": [{"ids": [0, 1]}]}
        store.append_delta(1, record)
        assert store.read_delta(1) == record
        assert store.delta_ticks() == [1]
        assert store.has_delta(1) and not store.has_delta(2)

    def test_appends_must_be_strictly_increasing(self, store):
        store.append_delta(1, {"tick": 1})
        store.append_delta(3, {"tick": 3})
        with pytest.raises(HistoryError, match="out of order"):
            store.append_delta(3, {"tick": 3})
        with pytest.raises(HistoryError, match="out of order"):
            store.append_delta(2, {"tick": 2})

    def test_missing_delta_raises_with_context(self, store):
        with pytest.raises(HistoryError, match="tick 7"):
            store.read_delta(7)

    def test_reopened_store_sees_appended_frames(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s")
        for tick in (1, 2, 3):
            store.append_delta(tick, {"tick": tick, "payload": tick * 10})
        store.close()
        reopened = HistoryStore.open(tmp_path / "s")
        assert reopened.delta_ticks() == [1, 2, 3]
        assert reopened.read_delta(2)["payload"] == 20

    def test_iter_deltas_yields_in_order(self, store):
        for tick in (1, 2, 3):
            store.append_delta(tick, {"tick": tick})
        assert [d["tick"] for d in store.iter_deltas(1, 3)] == [1, 2, 3]


class TestCheckpoints:
    def test_round_trip_and_listing(self, store):
        store.write_checkpoint(0, {"tick": 0, "agents": []})
        store.write_checkpoint(4, {"tick": 4, "agents": []})
        assert store.checkpoint_ticks() == [0, 4]
        assert store.read_checkpoint(4)["tick"] == 4

    def test_missing_checkpoint_raises(self, store):
        with pytest.raises(HistoryError, match="no checkpoint"):
            store.read_checkpoint(8)

    def test_nearest_checkpoint_at_or_before(self, store):
        store.write_checkpoint(0, {})
        store.write_checkpoint(4, {})
        assert store.nearest_checkpoint_at_or_before(3) == 0
        assert store.nearest_checkpoint_at_or_before(4) == 4
        assert store.nearest_checkpoint_at_or_before(9) == 4
        with pytest.raises(HistoryError, match="at or before"):
            store.nearest_checkpoint_at_or_before(-1)


class TestTruncationAndThinning:
    def _populate(self, store):
        store.write_checkpoint(0, {"tick": 0})
        for tick in range(1, 9):
            store.append_delta(tick, {"tick": tick})
            if tick % 4 == 0:
                store.write_checkpoint(tick, {"tick": tick})

    def test_truncate_after_drops_the_tail(self, store):
        self._populate(store)
        store.truncate_after(5)
        assert store.delta_ticks() == [1, 2, 3, 4, 5]
        assert store.checkpoint_ticks() == [0, 4]
        # The segment is rewritten compactly and stays readable.
        assert store.read_delta(5) == {"tick": 5}
        # New appends continue from the truncation point.
        store.append_delta(6, {"tick": 6, "rerun": True})
        assert store.read_delta(6)["rerun"] is True

    def test_thin_through_drops_old_deltas_keeps_checkpoints(self, store):
        self._populate(store)
        dropped = store.thin_through(4)
        assert dropped == 4
        assert store.delta_ticks() == [5, 6, 7, 8]
        assert store.checkpoint_ticks() == [0, 4, 8]
        with pytest.raises(HistoryError, match="thinned"):
            store.read_delta(3)

    def test_thin_is_idempotent(self, store):
        self._populate(store)
        store.thin_through(4)
        assert store.thin_through(4) == 0

    def test_truncate_survives_reopen(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s")
        self._populate(store)
        store.truncate_after(2)
        store.close()
        reopened = HistoryStore.open(tmp_path / "s")
        assert reopened.delta_ticks() == [1, 2]
        assert reopened.read_delta(2) == {"tick": 2}


class TestManifest:
    def test_set_metadata_persists(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s")
        store.set_metadata(base_tick=0, last_tick=5, seed=7)
        reopened = HistoryStore.open(tmp_path / "s")
        assert reopened.manifest["last_tick"] == 5
        assert reopened.manifest["seed"] == 7

    def test_size_bytes_grows_with_content(self, store):
        before = store.size_bytes()
        store.append_delta(1, {"tick": 1, "blob": list(range(100))})
        assert store.size_bytes() > before

    def test_context_manager_closes_the_segment(self, tmp_path):
        with HistoryStore.create(tmp_path / "s") as store:
            store.append_delta(1, {"tick": 1})
        assert store._segment_handle is None
        assert HistoryStore.open(tmp_path / "s").read_delta(1) == {"tick": 1}
