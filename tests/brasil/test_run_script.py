"""The BRASIL-to-engine backend: run_script across executor backends.

The acceptance bar of the compilation backend: a BRASIL script executed via
``run_script`` produces bit-identical agent states on the serial, thread and
process executors, for a local-effect script (traffic) and an inverted
non-local one (fish school).
"""

import functools
import pickle

import pytest

from repro.brace.config import BraceConfig
from repro.brasil import (
    AgentClassSpec,
    compile_script,
    compiled_class_for_spec,
    config_for_script,
    run_script,
    select_index,
)
from repro.brasil.translate import agent_tuple, environment_for
from repro.core.errors import BrasilError
from repro.mapreduce.executor import ProcessExecutor
from repro.mapreduce.simulation_job import LocalEffectSimulationJob
from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT
from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT, traffic_script
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import StripPartitioning

TICKS = 3
TRAFFIC_BOUNDS = ((0.0, 1000.0),)


def run_traffic(executor, **kwargs):
    config = BraceConfig(num_workers=4, executor=executor, max_workers=2)
    return run_script(
        TRAFFIC_SCRIPT,
        config,
        ticks=TICKS,
        num_agents=60,
        bounds=TRAFFIC_BOUNDS,
        seed=3,
        **kwargs,
    )


def run_fish(executor):
    config = BraceConfig(num_workers=4, executor=executor, max_workers=2)
    return run_script(FISH_SCHOOL_SCRIPT, config, ticks=TICKS, num_agents=60, seed=5)


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_traffic_states_bit_identical_to_serial(self, backend):
        serial = run_traffic("serial")
        other = run_traffic(backend)
        assert serial.final_states() == other.final_states()
        assert serial.world.same_state_as(other.world, tolerance=0.0)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_fish_states_bit_identical_to_serial(self, backend):
        serial = run_fish("serial")
        other = run_fish(backend)
        assert serial.final_states() == other.final_states()

    def test_traffic_actually_moves(self):
        run = run_traffic("serial")
        positions = [state["x"] for state in run.final_states().values()]
        speeds = [state["v"] for state in run.final_states().values()]
        assert any(speed > 0 for speed in speeds)
        assert all(0.0 <= position < 1000.0 for position in positions)


class TestCompiledAgentPickling:
    def test_round_trip_preserves_state_and_behavior(self):
        compiled = compile_script(TRAFFIC_SCRIPT)
        agent = compiled.make_agent(agent_id=3, x=12.5, v=4.0)
        clone = pickle.loads(pickle.dumps(agent))
        assert type(clone).__name__ == "Car"
        assert clone.agent_id == 3
        assert clone.state_dict() == agent.state_dict()
        # The rebuilt class carries the interpreted run() body.
        assert type(clone)._run_body is not None

    def test_unpickled_agents_share_one_class_per_spec(self):
        compiled = compile_script(TRAFFIC_SCRIPT)
        first = pickle.loads(pickle.dumps(compiled.make_agent(agent_id=0, x=1.0)))
        second = pickle.loads(pickle.dumps(compiled.make_agent(agent_id=1, x=2.0)))
        assert type(first) is type(second)

    def test_class_for_spec_is_cached(self):
        spec = AgentClassSpec(source=TRAFFIC_SCRIPT, class_name="Car")
        assert compiled_class_for_spec(spec) is compiled_class_for_spec(spec)

    def test_recompiling_a_script_keeps_one_class_per_spec(self):
        # Pickling agents from a *second* compile of the same source must
        # still produce instances of the (shared) registered class, so
        # type checks against either CompiledScript hold.
        first = compile_script(TRAFFIC_SCRIPT)
        second = compile_script(TRAFFIC_SCRIPT)
        assert first.agent_class is second.agent_class
        clone = pickle.loads(pickle.dumps(second.make_agent(agent_id=1, x=5.0)))
        assert type(clone) is second.agent_class
        assert isinstance(clone, first.agent_class)


class TestSimulationJobWithCompiledScript:
    def test_appendix_a_job_runs_compiled_agents_on_process_pool(self):
        compiled = compile_script(traffic_script(length=400.0))
        partitioning = StripPartitioning(BBox(((0.0, 400.0),)), axis=0, boundaries=[200.0])

        def agents():
            return [
                compiled.make_agent(agent_id=i, x=float(40 * i + 5), v=1.0)
                for i in range(10)
            ]

        serial_job = LocalEffectSimulationJob(partitioning, seed=0)
        serial_out = serial_job.run(agents(), ticks=2)
        process_job = LocalEffectSimulationJob(
            partitioning, seed=0, executor=ProcessExecutor(max_workers=2)
        )
        try:
            process_out = process_job.run(agents(), ticks=2)
        finally:
            process_job.shutdown()
        assert [a.state_dict() for a in serial_out] == [a.state_dict() for a in process_out]


class TestIndexSelection:
    def test_uniform_bounded_visibility_selects_grid(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        selection = compiled.index_selection
        assert selection.index == "grid"
        assert selection.cell_size == pytest.approx(12.0)

    def test_selection_flows_into_brace_config(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        config = config_for_script(compiled)
        assert config.index == "grid"
        assert config.cell_size == pytest.approx(12.0)
        assert config.non_local_effects is False  # inversion removed them

    def test_explicit_index_overrides_selection(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        config = config_for_script(compiled, index="kdtree")
        assert config.index == "kdtree"
        assert config.cell_size is None

    def test_forced_grid_keeps_a_sensible_cell_size(self):
        # Forcing index="grid" must not fall back to UniformGrid's 1.0-unit
        # default cells; the visibility-derived size is kept.
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        config = config_for_script(compiled, index="grid")
        assert config.index == "grid"
        assert config.cell_size == pytest.approx(12.0)

    def test_unbounded_visibility_selects_scan(self):
        source = """
        class Walker {
            public state float x : x + 1;
            public void run() { }
        }
        """
        selection = select_index(compile_script(source).info)
        assert selection.index is None
        assert "no spatial fields" in selection.reason


class TestRunScriptInputs:
    def test_accepts_a_script_file_path(self, tmp_path):
        path = tmp_path / "traffic.brasil"
        path.write_text(TRAFFIC_SCRIPT)
        run = run_script(
            str(path),
            BraceConfig(num_workers=2),
            ticks=1,
            num_agents=10,
            bounds=TRAFFIC_BOUNDS,
            seed=1,
        )
        assert run.world.agent_count() == 10
        assert len(run.metrics.ticks) == 1

    def test_missing_path_raises_descriptive_error(self):
        with pytest.raises(BrasilError, match="does not exist"):
            run_script("no_such_script.brasil")

    def test_missing_path_object_raises_the_same_error(self):
        from pathlib import Path

        with pytest.raises(BrasilError, match="does not exist"):
            run_script(Path("no_such_script.brasil"))

    def test_bounds_dimension_mismatch_rejected(self):
        with pytest.raises(BrasilError, match="spatial field"):
            run_script(TRAFFIC_SCRIPT, ticks=1, bounds=((0.0, 10.0), (0.0, 10.0)))

    def test_initial_states_take_precedence(self):
        run = run_script(
            TRAFFIC_SCRIPT,
            BraceConfig(num_workers=2),
            ticks=1,
            initial_states=[{"x": 10.0}, {"x": 30.0, "v": 2.0}],
            bounds=TRAFFIC_BOUNDS,
        )
        assert run.world.agent_count() == 2


class TestPlanQueryTask:
    def test_plan_task_matches_interpreter_on_process_pool(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        task = compiled.query_task
        assert task is not None
        agents = [
            compiled.make_agent(agent_id=i, x=float(i), y=float(-i), vx=0.0, vy=0.0)
            for i in range(6)
        ]
        environments = [environment_for(agent, agents) for agent in agents]
        inline_effects = task(environments)
        # functools.partial of a picklable task with picklable inputs crosses
        # the process boundary; a closure would not.
        with ProcessExecutor(max_workers=2) as executor:
            results = executor.run_tasks([functools.partial(task, environments)])
        assert results[0].value == inline_effects

    def test_plan_task_is_picklable(self):
        compiled = compile_script(TRAFFIC_SCRIPT)
        task = compiled.query_task
        clone = pickle.loads(pickle.dumps(task))
        assert repr(clone.plan) == repr(task.plan)
