"""Differential fuzzing of the BRASIL plan compiler.

The plan compiler (:mod:`repro.brasil.kernels`) promises that every script
it compiles runs **bit-identically** to the reference interpreter — not
"close enough", the exact same float bits after every tick.  These tests
hold it to that promise two ways:

* a hypothesis fuzzer generates small random BRASIL scripts — visibility
  region shapes x aggregation combinators x local/non-local effect targets
  x arithmetic/builtin/conditional value expressions — and runs each one
  for several ticks under ``plan_backend="interpreted"`` and
  ``plan_backend="compiled"``, asserting the final states *and* the work
  accounting agree exactly;
* an explicit matrix covers every scatter combinator with both local and
  inverted non-local targets, asserting the query kernel actually compiled
  (so the differential is not vacuously comparing interpreter to
  interpreter).

Scripts outside the provable subset are a feature, not a failure: the
compiled run must silently fall back to the interpreter and still match.
The generator intentionally produces some of those (unbounded visibility,
``rand()``) alongside fully compilable scripts.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.brace.config import BraceConfig
from repro.brasil import compile_script, run_script

TICKS = 3
NUM_AGENTS = 10


# ---------------------------------------------------------------------------
# Script generation
# ---------------------------------------------------------------------------

#: Atoms readable inside ``run()``: own state and the loop variable's state.
_SELF_ATOMS = ("x", "y", "w")
_OTHER_ATOMS = ("p.x", "p.y", "p.w")
#: Small literals; every one is exactly representable in float64.
_LITERALS = ("0.5", "1", "2", "1.5", "3", "0.25")
_COMPARE_OPS = ("<", ">", "<=", ">=", "==")


@st.composite
def _expr(draw, atoms: tuple[str, ...], depth: int) -> str:
    """A random BRASIL value expression over ``atoms``."""
    kinds = ["atom", "literal"]
    if depth > 0:
        kinds += ["binop", "binop", "call", "cond"]
    kind = draw(st.sampled_from(kinds))
    if kind == "atom":
        return draw(st.sampled_from(atoms))
    if kind == "literal":
        return draw(st.sampled_from(_LITERALS))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        left = draw(_expr(atoms, depth - 1))
        right = draw(_expr(atoms, depth - 1))
        return f"({left} {op} {right})"
    if kind == "call":
        fn = draw(st.sampled_from(["abs", "sqrt", "min", "max"]))
        if fn in ("min", "max"):
            a = draw(_expr(atoms, depth - 1))
            b = draw(_expr(atoms, depth - 1))
            return f"{fn}({a}, {b})"
        # Raw sqrt of a possibly-negative argument exercises the NIL path
        # (math.sqrt raises, the kernel masks the lane) on both backends.
        return f"{fn}({draw(_expr(atoms, depth - 1))})"
    guard = draw(_comparison(atoms))
    then = draw(_expr(atoms, depth - 1))
    other = draw(_expr(atoms, depth - 1))
    return f"({guard} ? {then} : {other})"


@st.composite
def _comparison(draw, atoms: tuple[str, ...]) -> str:
    op = draw(st.sampled_from(_COMPARE_OPS))
    left = draw(_expr(atoms, 0))
    right = draw(_expr(atoms, 0))
    return f"({left} {op} {right})"


def _bounded_drift(field: str, expression: str, step: str = "0.5") -> str:
    """An update rule moving ``field`` by at most ``step`` per tick.

    NaN (``e != e``) and NIL expressions keep the old position, so the
    spatial index never sees a non-finite coordinate no matter what the
    fuzzer generated for ``expression``.
    """
    e = f"({expression})"
    return (
        f"({e} == {e}) ? (({e} < (0 - {step})) ? ({field} - {step}) : "
        f"(({e} > {step}) ? ({field} + {step}) : ({field} + {e}))) : {field}"
    )


@st.composite
def brasil_scripts(draw) -> str:
    """A random small BRASIL class exercising the plan compiler's subset."""
    geometry = draw(
        st.sampled_from(
            [
                "#visibility[2];",  # uniform radius -> grid + vectorized join
                "#visibility[3]; #reachability[1];",  # reachability clamp
                "#range[-2, 2];",  # range implies visibility + reachability
            ]
        )
    )
    float_comb = draw(st.sampled_from(["sum", "min", "max", "product", "mean"]))
    int_comb = draw(st.sampled_from(["sum", "count"]))
    use_flag = draw(st.booleans())
    flag_comb = draw(st.sampled_from(["any", "all"]))
    # Non-local targets go through effect inversion before kernel building.
    target = draw(st.sampled_from(["", "p."]))
    use_local = draw(st.booleans())
    use_guard = draw(st.booleans())
    use_rand = draw(st.sampled_from([False, False, False, True]))

    pair_atoms = _SELF_ATOMS + _OTHER_ATOMS
    value_atoms = pair_atoms + (("d",) if use_local else ())
    acc_value = draw(_expr(value_atoms, 2))
    flag_value = draw(_comparison(value_atoms))

    body: list[str] = []
    if use_local:
        body.append(f"const float d = {draw(_expr(pair_atoms, 1))};")
    assigns = [f"{target}acc <- {acc_value};", f"{target}cnt <- 1;"]
    if use_flag:
        assigns.append(f"{target}flag <- {flag_value};")
    if use_rand:
        # rand() is outside the provable subset: the compiled run must fall
        # back to the interpreter for the query phase and still match.
        assigns.append(f"{target}acc <- rand();")
    if use_guard:
        guard = draw(_comparison(pair_atoms))
        body.append("if " + guard + " { " + " ".join(assigns) + " }")
    else:
        body.extend(assigns)

    # Update rules: x/y drift by a bounded, NaN-proof step; w absorbs an
    # arbitrary expression over own state and (finalized) effects.
    update_atoms = ("x", "y", "w", "acc")
    x_rule = _bounded_drift("x", draw(_expr(("x", "y", "w"), 1)))
    y_rule = _bounded_drift("y", draw(_expr(("x", "y", "w"), 1)))
    w_rule = draw(
        st.sampled_from(
            [
                f"(cnt > 0) ? (w + ({draw(_expr(update_atoms, 1))}) / cnt) : w",
                f"w + ({draw(_expr(('x', 'y', 'w'), 1))}) * 0.125",
                draw(_expr(update_atoms, 2)),
            ]
        )
    )

    flag_decl = f"    private effect bool flag : {flag_comb};\n" if use_flag else ""
    return (
        "class Critter {\n"
        f"    public state float x : ({x_rule}); {geometry}\n"
        f"    public state float y : ({y_rule}); {geometry}\n"
        f"    public state float w : {w_rule};\n"
        f"    private effect float acc : {float_comb};\n"
        f"    private effect int cnt : {int_comb};\n"
        f"{flag_decl}"
        "    public void run() {\n"
        "        foreach (Critter p : Extent<Critter>) {\n"
        + "\n".join("            " + line for line in body)
        + "\n        }\n    }\n}\n"
    )


# ---------------------------------------------------------------------------
# Differential harness
# ---------------------------------------------------------------------------


def _run(source: str, plan_backend: str, *, ticks: int = TICKS, seed: int = 3):
    config = BraceConfig(num_workers=2, plan_backend=plan_backend)
    return run_script(source, config, num_agents=NUM_AGENTS, ticks=ticks, seed=seed)


def _assert_differential(source: str, *, ticks: int = TICKS, seed: int = 3) -> None:
    interpreted = _run(source, "interpreted", ticks=ticks, seed=seed)
    compiled = _run(source, "compiled", ticks=ticks, seed=seed)
    assert compiled.final_states() == interpreted.final_states()
    # The kernels charge the same work units and index probes the
    # interpreter would have, so the deterministic cost model (virtual and
    # compute seconds derive from work units) must not notice the backend.
    interp_work = [
        (t.virtual_seconds, t.compute_seconds, t.num_agents, t.num_passes)
        for t in interpreted.metrics.ticks
    ]
    compiled_work = [
        (t.virtual_seconds, t.compute_seconds, t.num_agents, t.num_passes)
        for t in compiled.metrics.ticks
    ]
    assert compiled_work == interp_work


class TestFuzzedScripts:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(source=brasil_scripts(), seed=st.integers(min_value=0, max_value=2**20))
    def test_compiled_matches_interpreted(self, source: str, seed: int):
        _assert_differential(source, seed=seed)

    @pytest.mark.slow
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(source=brasil_scripts(), seed=st.integers(min_value=0, max_value=2**20))
    def test_compiled_matches_interpreted_deep(self, source: str, seed: int):
        _assert_differential(source, ticks=5, seed=seed)


# ---------------------------------------------------------------------------
# Explicit combinator matrix (non-vacuous: kernels must actually compile)
# ---------------------------------------------------------------------------


def _combinator_script(combinator: str, target: str) -> str:
    value_by_comb = {
        "sum": "1 / (x - p.x)",
        "min": "abs(x - p.x) + abs(y - p.y)",
        "max": "(p.x - x) * (p.x - x)",
        "product": "(abs(x - p.x) < 1) ? 0.5 : 1",
        "mean": "p.w - w",
    }
    return (
        "class Critter {\n"
        "    public state float x : (x + min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
        "    public state float y : (y - min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
        "    public state float w : (cnt > 0) ? (w + acc / cnt) * 0.5 : w;\n"
        f"    private effect float acc : {combinator};\n"
        "    private effect int cnt : count;\n"
        "    public void run() {\n"
        "        foreach (Critter p : Extent<Critter>) {\n"
        f"            {target}acc <- {value_by_comb[combinator]};\n"
        f"            {target}cnt <- 1;\n"
        "        }\n    }\n}\n"
    )


class TestCombinatorMatrix:
    @pytest.mark.parametrize("combinator", ["sum", "min", "max", "product", "mean"])
    @pytest.mark.parametrize("target", ["", "p."])
    def test_each_combinator_local_and_inverted(self, combinator: str, target: str):
        source = _combinator_script(combinator, target)
        selection = compile_script(source).plan_selection
        # The matrix exists to prove the *kernels* agree with the
        # interpreter — every cell must actually compile both phases.
        assert selection is not None
        assert selection.query_compiled and selection.update_compiled
        _assert_differential(source, ticks=4)

    @pytest.mark.parametrize("combinator", ["any", "all"])
    def test_boolean_combinators(self, combinator: str):
        source = (
            "class Critter {\n"
            "    public state float x : (x + min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float y : (y - min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float w : near ? (0 - w) * 0.5 : w + 0.125;\n"
            f"    private effect bool near : {combinator};\n"
            "    public void run() {\n"
            "        foreach (Critter p : Extent<Critter>) {\n"
            "            near <- (abs(x - p.x) < 1);\n"
            "        }\n    }\n}\n"
        )
        selection = compile_script(source).plan_selection
        assert selection is not None and selection.query_compiled
        _assert_differential(source, ticks=4)


class TestFallbackScripts:
    def test_rand_in_query_falls_back_and_matches(self):
        source = (
            "class Critter {\n"
            "    public state float x : (x + min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float y : (y - min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float w : (cnt > 0) ? acc / cnt : w;\n"
            "    private effect float acc : sum;\n"
            "    private effect int cnt : count;\n"
            "    public void run() {\n"
            "        foreach (Critter p : Extent<Critter>) {\n"
            "            acc <- rand();\n"
            "            cnt <- 1;\n"
            "        }\n    }\n}\n"
        )
        selection = compile_script(source).plan_selection
        assert selection is not None and not selection.query_compiled
        _assert_differential(source, ticks=4)

    def test_nested_foreach_falls_back_and_matches(self):
        source = (
            "class Critter {\n"
            "    public state float x : (x + min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float y : (y - min(max(w, 0 - 0.5), 0.5)); #visibility[2];\n"
            "    public state float w : w + acc * 0.125;\n"
            "    private effect float acc : sum;\n"
            "    public void run() {\n"
            "        foreach (Critter p : Extent<Critter>) {\n"
            "            foreach (Critter q : Extent<Critter>) {\n"
            "                acc <- (p.x > q.x) ? 0.25 : (0 - 0.25);\n"
            "            }\n"
            "        }\n    }\n}\n"
        )
        selection = compile_script(source).plan_selection
        assert selection is not None and not selection.query_compiled
        _assert_differential(source, ticks=4)


class TestPlanSelectionReporting:
    def test_selection_reports_reason(self):
        source = _combinator_script("sum", "p.")
        selection = compile_script(source).plan_selection
        assert "provable subset" in selection.reason

    def test_backend_recorded_in_config_validation(self):
        with pytest.raises(Exception, match="plan backend"):
            dataclasses.replace(BraceConfig(), plan_backend="simd").validate()
