"""Tests for effect inversion (Theorems 2 and 3, simplified construction)."""

import pytest

from repro.brasil.ast_nodes import EffectAssign, ForEach, walk_statements
from repro.brasil.effect_inversion import EffectInversionError, invert_effects
from repro.brasil.parser import parse
from repro.brasil.semantics import analyze_class

NON_LOCAL = """
class Fish {
  public state float x : (x + vx); #range[-3, 3];
  public state float vx : vx + avoid / count;
  private effect float avoid : sum;
  private effect int count : sum;
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      p.avoid <- (x - p.x) * 0.5;
      p.count <- 1;
      count <- 0;
    }
  }
}
"""


def non_local_assignments(class_decl):
    run = class_decl.run_method()
    return [
        statement
        for statement in walk_statements(run.body)
        if isinstance(statement, EffectAssign) and statement.target_agent is not None
    ]


class TestInversion:
    def test_local_script_returned_unchanged(self):
        source = NON_LOCAL.replace("p.avoid", "avoid").replace("p.count", "count")
        declaration = parse(source).classes[0]
        result = invert_effects(declaration)
        assert not result.inverted
        assert result.class_decl is declaration

    def test_inverted_script_has_only_local_assignments(self):
        declaration = parse(NON_LOCAL).classes[0]
        result = invert_effects(declaration)
        assert result.inverted
        assert non_local_assignments(result.class_decl) == []
        info = analyze_class(result.class_decl)
        assert not info.has_non_local_effects

    def test_original_declaration_is_not_mutated(self):
        declaration = parse(NON_LOCAL).classes[0]
        invert_effects(declaration)
        assert len(non_local_assignments(declaration)) == 2

    def test_inverted_assignment_count_reported(self):
        result = invert_effects(parse(NON_LOCAL).classes[0])
        assert result.inverted_assignments == 2

    def test_local_assignments_kept_in_original_loop(self):
        result = invert_effects(parse(NON_LOCAL).classes[0])
        loops = [
            statement
            for statement in result.class_decl.run_method().body.statements
            if isinstance(statement, ForEach)
        ]
        # Q1 keeps the loop with the local `count <- 0`, Q3 adds the inverted loop.
        assert len(loops) == 2

    def test_visibility_bound_preserved_by_symmetric_inversion(self):
        result = invert_effects(parse(NON_LOCAL).classes[0])
        x_field = result.class_decl.field_named("x")
        assert x_field.visibility_radius() == 3.0
        assert not result.visibility_doubled


class TestUnsupportedPatterns:
    def test_rand_in_value_rejected(self):
        source = NON_LOCAL.replace("(x - p.x) * 0.5", "rand()")
        with pytest.raises(EffectInversionError):
            invert_effects(parse(source).classes[0])

    def test_assignment_through_other_reference_rejected(self):
        source = """
        class A {
          public state float x : x; #range[-1, 1];
          private effect float e : sum;
          public void run() {
            foreach (A p : Extent<A>) {
              foreach (A q : Extent<A>) {
                q.e <- p.x;
              }
            }
          }
        }
        """
        with pytest.raises(EffectInversionError):
            invert_effects(parse(source).classes[0])

    def test_value_referencing_outer_local_rejected(self):
        source = """
        class A {
          public state float x : x; #range[-1, 1];
          private effect float e : sum;
          public void run() {
            const float factor = 2;
            foreach (A p : Extent<A>) {
              p.e <- x * factor;
            }
          }
        }
        """
        with pytest.raises(EffectInversionError):
            invert_effects(parse(source).classes[0])

    def test_guarded_assignment_is_inverted_with_swapped_condition(self):
        source = """
        class A {
          public state float x : x; #range[-2, 2];
          private effect float e : sum;
          public void run() {
            foreach (A p : Extent<A>) {
              if (p.x > x) { p.e <- x - p.x; }
            }
          }
        }
        """
        result = invert_effects(parse(source).classes[0])
        assert result.inverted
        assert non_local_assignments(result.class_decl) == []


NESTED_FOREACH = """
class A {
  public state float x : x; #range[-1, 1];
  private effect float e : sum;
  public void run() {
    foreach (A p : Extent<A>) {
      foreach (A q : Extent<A>) {
        q.e <- p.x;
      }
    }
  }
}
"""

class TestErrorMessages:
    """Non-invertible patterns must explain *why* they cannot be inverted."""

    def test_nested_foreach_message_names_the_construct(self):
        with pytest.raises(EffectInversionError, match="nested foreach"):
            invert_effects(parse(NESTED_FOREACH).classes[0])

    def test_rand_message_explains_the_stream_ownership(self):
        source = NON_LOCAL.replace("(x - p.x) * 0.5", "rand()")
        with pytest.raises(EffectInversionError, match="rand\\(\\).*stream"):
            invert_effects(parse(source).classes[0])

    def test_outer_local_message_names_the_variable(self):
        source = """
        class A {
          public state float x : x; #range[-1, 1];
          private effect float e : sum;
          public void run() {
            const float factor = 2;
            foreach (A p : Extent<A>) {
              p.e <- x * factor;
            }
          }
        }
        """
        with pytest.raises(EffectInversionError, match="factor"):
            invert_effects(parse(source).classes[0])


class TestRunScriptSurfacesInversionErrors:
    """run_script(effect_inversion="on") must raise descriptively, not crash."""

    def test_non_invertible_script_error_keeps_type_and_reason(self):
        from repro.brasil import run_script

        with pytest.raises(EffectInversionError) as excinfo:
            run_script(NESTED_FOREACH, ticks=1, num_agents=4, effect_inversion="on")
        message = str(excinfo.value)
        assert "cannot compile BRASIL script" in message
        assert "nested foreach" in message

    def test_auto_mode_falls_back_to_two_pass_plan(self):
        from repro.brace.config import BraceConfig
        from repro.brasil import run_script

        run = run_script(
            NESTED_FOREACH,
            BraceConfig(num_workers=2),
            ticks=1,
            num_agents=4,
            effect_inversion="auto",
        )
        assert not run.compiled.was_inverted
        assert run.config.non_local_effects is True
        assert run.metrics.ticks[-1].num_passes == 3

    def test_script_path_appears_in_the_error(self, tmp_path):
        from repro.brasil import run_script

        path = tmp_path / "bad.brasil"
        path.write_text(NESTED_FOREACH)
        with pytest.raises(EffectInversionError, match="bad.brasil"):
            run_script(str(path), ticks=1, effect_inversion="on")
