"""Code embedded in the docs pages must actually compile and run.

Two kinds of compile-checked documentation:

* the BRASIL scripts in ``docs/brasil.md`` are compiled and simulated;
* the ``python`` blocks in ``docs/runtime.md`` and ``docs/spatial.md`` are
  executed top to bottom (blocks on one page share a namespace, so a worked
  example can build up across blocks).
"""

import re
from pathlib import Path

import pytest

from repro import SequentialEngine, World
from repro.brasil import compile_script
from repro.spatial.bbox import BBox

DOCS = Path(__file__).resolve().parents[2] / "docs"
BRASIL_DOC = DOCS / "brasil.md"
EXECUTED_DOCS = ("runtime.md", "spatial.md", "api.md", "history.md", "brasil.md")


def doc_scripts():
    text = BRASIL_DOC.read_text()
    blocks = re.findall(r"```\n(class .*?)```", text, re.S)
    # Skip the pseudo-code skeleton; real examples define a run() method.
    return [block for block in blocks if "run()" in block]


def python_blocks(name):
    text = (DOCS / name).read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def _script_indices():
    if not BRASIL_DOC.exists():
        return []
    return list(range(len(doc_scripts())))


@pytest.mark.skipif(not BRASIL_DOC.exists(), reason="docs not present")
class TestBrasilDocExamples:
    def test_doc_contains_two_runnable_examples(self):
        assert len(doc_scripts()) >= 2

    @pytest.mark.parametrize("index", _script_indices())
    def test_example_compiles_and_runs(self, index):
        scripts = doc_scripts()
        compiled = compile_script(scripts[index])
        # Documented inversion behavior: the fish script is non-local and
        # gets inverted; the predator script is already local.
        assert compiled.info.non_local_assignment_count == 0
        world = World(bounds=BBox(((-50.0, 50.0), (-50.0, 50.0))), seed=1)
        for position in range(-20, 20, 2):
            world.add_agent(compiled.make_agent(x=float(position), y=float(-position) / 2))
        SequentialEngine(world, index="kdtree").run(2)
        assert world.agent_count() == 20


class TestExecutedDocPages:
    """Every ``python`` block in runtime.md and spatial.md must run clean."""

    @pytest.mark.parametrize("name", EXECUTED_DOCS)
    def test_page_exists_and_has_examples(self, name):
        assert (DOCS / name).exists(), f"docs/{name} is missing"
        assert len(python_blocks(name)) >= 2, f"docs/{name} has too few python examples"

    @pytest.mark.parametrize("name", EXECUTED_DOCS)
    def test_page_examples_execute(self, name):
        namespace: dict = {}
        for block_number, block in enumerate(python_blocks(name), start=1):
            try:
                exec(compile(block, f"docs/{name} block {block_number}", "exec"), namespace)
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"docs/{name} python block {block_number} raised "
                    f"{type(error).__name__}: {error}"
                )
