"""The BRASIL scripts embedded in docs/brasil.md must actually compile and run."""

import re
from pathlib import Path

import pytest

from repro import SequentialEngine, World
from repro.brasil import compile_script
from repro.spatial.bbox import BBox

DOC = Path(__file__).resolve().parents[2] / "docs" / "brasil.md"


def doc_scripts():
    text = DOC.read_text()
    blocks = re.findall(r"```\n(class .*?)```", text, re.S)
    # Skip the pseudo-code skeleton; real examples define a run() method.
    return [block for block in blocks if "run()" in block]


@pytest.mark.skipif(not DOC.exists(), reason="docs not present")
class TestDocExamples:
    def test_doc_contains_two_runnable_examples(self):
        assert len(doc_scripts()) == 2

    @pytest.mark.parametrize("index", [0, 1])
    def test_example_compiles_and_runs(self, index):
        scripts = doc_scripts()
        compiled = compile_script(scripts[index])
        # Documented inversion behavior: the fish script is non-local and
        # gets inverted; the predator script is already local.
        assert compiled.info.non_local_assignment_count == 0
        world = World(bounds=BBox(((-50.0, 50.0), (-50.0, 50.0))), seed=1)
        for position in range(-20, 20, 2):
            world.add_agent(compiled.make_agent(x=float(position), y=float(-position) / 2))
        SequentialEngine(world, index="kdtree").run(2)
        assert world.agent_count() == 20
