"""Tests for the monad algebra, the translation and the plan optimizer."""

import pytest

from repro.brasil.algebra import (
    Aggregate,
    Apply,
    Arith,
    Compose,
    Const,
    FlatMap,
    Get,
    Identity,
    MapOp,
    Negate,
    NotNil,
    PairWith,
    Project,
    Select,
    Sng,
    TupleCons,
    UnionOp,
    cartesian_product,
)
from repro.brasil.optimizer import optimize_plan
from repro.brasil.parser import parse
from repro.brasil.translate import (
    QueryTranslator,
    TranslationNotSupported,
    aggregate_effects,
    environment_for,
    translate_query,
)
from repro.core.combinators import get_combinator
from repro.core.engine import SequentialEngine
from repro.brasil import compile_script
from tests.brasil.test_compiler_and_interpreter import build_world

FISH = """
class Fish {
  public state float x : (x + vx); #range[-4, 4];
  public state float vx : vx + pull / count;
  private effect float pull : sum;
  private effect int count : sum;
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      pull <- (p.x - x) * 0.5;
      count <- 1;
    }
  }
}
"""


class TestAlgebraOperators:
    def test_identity_const_compose(self):
        assert Identity().evaluate(5) == 5
        assert Const(3).evaluate("ignored") == 3
        assert Compose(Const(3), Arith("+", Identity(), Const(1))).evaluate(None) == 4

    def test_tuple_and_project(self):
        plan = TupleCons({"a": Const(1), "b": Identity()})
        assert plan.evaluate(7) == {"a": 1, "b": 7}
        assert Project("a").evaluate({"a": 2}) == 2
        assert Project("missing").evaluate({"a": 2}) is None
        assert Project("a").evaluate(None) is None

    def test_map_flatmap_sng_flatten(self):
        assert MapOp(Arith("*", Identity(), Const(2))).evaluate([1, 2, 3]) == [2, 4, 6]
        assert FlatMap(Sng()).evaluate([1, 2]) == [1, 2]
        assert Sng().evaluate(9) == [9]

    def test_pairwith(self):
        value = {"agent": 1, "others": [10, 20]}
        paired = PairWith("others").evaluate(value)
        assert paired == [{"agent": 1, "others": 10}, {"agent": 1, "others": 20}]

    def test_select_and_get(self):
        assert Select(Arith(">", Identity(), Const(1))).evaluate([0, 1, 2, 3]) == [2, 3]
        assert Get().evaluate([5]) == 5
        assert Get().evaluate([1, 2]) is None

    def test_union_and_aggregates(self):
        union = UnionOp([Sng(), Sng()])
        assert union.evaluate(1) == [1, 1]
        assert Aggregate("sum").evaluate([1, 2, None, 3]) == 6
        assert Aggregate("count").evaluate([1, None]) == 1
        assert Aggregate("mean").evaluate([2, 4]) == 3
        assert Aggregate("min").evaluate([]) is None

    def test_nil_propagation(self):
        assert Arith("+", Const(None), Const(1)).evaluate(None) is None
        assert Arith("/", Const(1), Const(0)).evaluate(None) is None
        assert Negate("-", Const(None)).evaluate(None) is None
        assert Apply("sqrt", [Const(-1.0)]).evaluate(None) is None
        assert NotNil(Const(None)).evaluate(None) is False
        assert NotNil(Const(1)).evaluate(None) is True

    def test_cartesian_product(self):
        value = {"left": [1, 2], "right": ["a"]}
        product = cartesian_product("left", "right").evaluate(value)
        assert len(product) == 2
        assert {pair["left"] for pair in product} == {1, 2}

    def test_plan_size(self):
        plan = Compose(Identity(), MapOp(Const(1)))
        assert plan.size() == 4


class TestTranslation:
    def test_query_plan_effects_match_interpreter(self):
        compiled = compile_script(FISH)
        declaration = parse(FISH).classes[0]
        plan = translate_query(declaration)

        world = build_world(compiled.agent_class, num_agents=25, seed=6)
        SequentialEngine(world, index=None).run_tick()

        combinators = {
            name: get_combinator(combinator)
            for name, combinator in compiled.info.effect_combinators.items()
        }
        # Recompute the same tick's effects through the algebra plan.
        fresh = build_world(compiled.agent_class, num_agents=25, seed=6)
        agents = fresh.agents()
        effect_tuples = []
        for agent in agents:
            effect_tuples.extend(plan.evaluate(environment_for(agent, agents)))
        aggregated = aggregate_effects(effect_tuples, combinators)

        # Compare against the values the interpreter accumulated before the update.
        reference = build_world(compiled.agent_class, num_agents=25, seed=6)
        reference_agents = reference.agents()
        from repro.core.context import QueryContext
        from repro.core.phase import Phase, phase

        context = QueryContext(reference_agents, tick=0, seed=reference.seed, index=None)
        with phase(Phase.QUERY):
            for agent in reference_agents:
                agent.query(context)
        for agent in reference_agents:
            for field_name in ("pull", "count"):
                expected = agent.effect_value(field_name)
                actual = aggregated.get((agent.agent_id, field_name), 0.0)
                if expected == 0.0:
                    assert actual in (0.0, 0)
                else:
                    assert actual == pytest.approx(expected, rel=1e-9)

    def test_translation_rejects_rand(self):
        source = FISH.replace("(p.x - x) * 0.5", "rand()")
        with pytest.raises(TranslationNotSupported):
            translate_query(parse(source).classes[0])

    def test_translation_rejects_local_reassignment(self):
        source = """
        class A {
          public state float x : x; #range[-1, 1];
          private effect float e : sum;
          public void run() {
            float t = 1;
            t = 2;
            e <- t;
          }
        }
        """
        with pytest.raises(TranslationNotSupported):
            QueryTranslator(parse(source).classes[0]).translate()

    def test_empty_run_method_translates_to_empty_effects(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
        }
        """
        plan = translate_query(parse(source).classes[0])
        assert plan.evaluate({"this": {"x": 1.0, "__id__": 0}, "extent": []}) == []


class TestOptimizer:
    def test_identity_elimination(self):
        plan = Compose(Identity(), Compose(Const(2), Identity()))
        optimized = optimize_plan(plan)
        assert optimized.report.identity_eliminations >= 1
        assert optimized.plan.evaluate(None) == 2
        assert optimized.optimized_size < plan.size()

    def test_map_fusion(self):
        plan = Compose(MapOp(Arith("+", Identity(), Const(1))), MapOp(Arith("*", Identity(), Const(2))))
        optimized = optimize_plan(plan)
        assert optimized.report.map_fusions >= 1
        assert optimized.plan.evaluate([1, 2]) == [4, 6]

    def test_singleton_flattening(self):
        plan = Compose(Sng(), FlatMap(Sng()))
        optimized = optimize_plan(plan)
        assert optimized.report.singleton_flattenings >= 1
        assert optimized.plan.evaluate(3) == [3]

    def test_selection_fusion(self):
        plan = Compose(
            Select(Arith(">", Identity(), Const(0))), Select(Arith("<", Identity(), Const(10)))
        )
        optimized = optimize_plan(plan)
        assert optimized.report.selection_fusions >= 1
        assert optimized.plan.evaluate([-1, 5, 20]) == [5]

    def test_dead_tuple_elimination(self):
        plan = Compose(TupleCons({"a": Const(1), "b": Const(2)}), Project("a"))
        optimized = optimize_plan(plan)
        assert optimized.report.dead_tuple_eliminations >= 1
        assert optimized.plan.evaluate(None) == 1

    def test_optimized_query_plan_is_equivalent(self):
        declaration = parse(FISH).classes[0]
        plan = translate_query(declaration)
        optimized = optimize_plan(plan)
        compiled = compile_script(FISH)
        world = build_world(compiled.agent_class, num_agents=15, seed=3)
        agents = world.agents()
        for agent in agents[:5]:
            environment = environment_for(agent, agents)
            assert sorted(map(repr, plan.evaluate(environment))) == sorted(
                map(repr, optimized.plan.evaluate(environment))
            )
        assert optimized.report.total > 0
