"""Tests for the BRASIL lexer and parser."""

import pytest

from repro.brasil.ast_nodes import (
    BinaryOp,
    Call,
    Conditional,
    EffectAssign,
    FieldAccess,
    ForEach,
    If,
    LocalDecl,
    Name,
    NumberLit,
    UnaryOp,
)
from repro.brasil.lexer import tokenize
from repro.brasil.parser import Parser, parse
from repro.brasil.tokens import TokenType
from repro.core.errors import BrasilSyntaxError

FISH = """
class Fish {
  // The fish location
  public state float x : (x + vx); #range[-1, 1];
  public state float y : (y + vy); #range[-1, 1];
  public state float vx : vx + avoidx / count * vx;
  public state float vy : vy + avoidy / count * vy;
  private effect float avoidx : sum;
  private effect float avoidy : sum;
  private effect int count : sum;
  /** The query-phase for this fish. */
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      p.avoidx <- 1 / abs(x - p.x);
      p.avoidy <- 1 / abs(y - p.y);
      p.count <- 1;
    }
  }
}
"""


class TestLexer:
    def test_tokenizes_operators(self):
        kinds = [token.type for token in tokenize("a <- b <= c == d && !e")]
        assert TokenType.EFFECT_ASSIGN in kinds
        assert TokenType.LE in kinds
        assert TokenType.EQ in kinds
        assert TokenType.AND in kinds
        assert TokenType.NOT in kinds
        assert kinds[-1] is TokenType.EOF

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        values = [token.value for token in tokens[:-1]]
        assert values == [1, 2.5, 1000.0, 0.025]

    def test_comments_skipped(self):
        tokens = tokenize("a // comment\n /* block \n comment */ b")
        assert [token.text for token in tokens[:-1]] == ["a", "b"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(BrasilSyntaxError):
            tokenize("/* never closed")

    def test_unexpected_character(self):
        with pytest.raises(BrasilSyntaxError):
            tokenize("a @ b")


class TestParserStructure:
    def test_fish_script_structure(self):
        script = parse(FISH)
        fish = script.class_named("Fish")
        assert fish is not None
        assert [field.name for field in fish.state_fields()] == ["x", "y", "vx", "vy"]
        assert [field.name for field in fish.effect_fields()] == ["avoidx", "avoidy", "count"]
        assert fish.field_named("avoidx").combinator == "sum"
        assert fish.run_method() is not None

    def test_range_annotation_after_semicolon(self):
        script = parse(FISH)
        x = script.class_named("Fish").field_named("x")
        assert x.is_spatial
        assert x.visibility_radius() == 1.0
        assert x.reachability_radius() == 1.0

    def test_update_rules_parsed(self):
        script = parse(FISH)
        vx = script.class_named("Fish").field_named("vx")
        assert isinstance(vx.update_rule, BinaryOp)

    def test_foreach_body(self):
        script = parse(FISH)
        body = script.class_named("Fish").run_method().body
        loop = body.statements[0]
        assert isinstance(loop, ForEach)
        assert loop.variable == "p"
        assert len(loop.body.statements) == 3
        first = loop.body.statements[0]
        assert isinstance(first, EffectAssign)
        assert isinstance(first.target_agent, Name)
        assert first.field_name == "avoidx"

    def test_empty_script_rejected(self):
        with pytest.raises(BrasilSyntaxError):
            parse("   ")

    def test_foreach_type_mismatch_rejected(self):
        with pytest.raises(BrasilSyntaxError):
            parse("class A { public void run() { foreach (A p : Extent<B>) { } } }")

    def test_unknown_annotation_rejected(self):
        with pytest.raises(BrasilSyntaxError):
            parse("class A { public state float x : x; #speed[1]; }")

    def test_unknown_combinator_rejected(self):
        with pytest.raises(BrasilSyntaxError):
            parse("class A { private effect float e : median; }")

    def test_if_else_and_locals(self):
        source = """
        class A {
          public state float x : x;
          private effect float total : sum;
          public void run() {
            const float limit = 2 * 3;
            foreach (A p : Extent<A>) {
              if (p.x - x < limit) { total <- 1; } else { total <- 0.5; }
            }
          }
        }
        """
        script = parse(source)
        body = script.class_named("A").run_method().body
        assert isinstance(body.statements[0], LocalDecl)
        loop = body.statements[1]
        assert isinstance(loop.body.statements[0], If)
        assert loop.body.statements[0].else_block is not None


class TestExpressions:
    def parse_expression(self, text):
        return Parser(tokenize(text)).parse_expression()

    def test_precedence_multiplication_before_addition(self):
        expression = self.parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryOp)
        assert expression.operator == "+"
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.operator == "*"

    def test_parentheses_override_precedence(self):
        expression = self.parse_expression("(1 + 2) * 3")
        assert expression.operator == "*"
        assert isinstance(expression.left, BinaryOp)

    def test_unary_and_field_access(self):
        expression = self.parse_expression("-p.x")
        assert isinstance(expression, UnaryOp)
        assert isinstance(expression.operand, FieldAccess)

    def test_function_call(self):
        expression = self.parse_expression("atan2(y, x)")
        assert isinstance(expression, Call)
        assert expression.function == "atan2"
        assert len(expression.arguments) == 2

    def test_ternary_conditional(self):
        expression = self.parse_expression("a > 0 ? 1 : 2")
        assert isinstance(expression, Conditional)
        assert isinstance(expression.then_expr, NumberLit)

    def test_comparison_chain_via_logical_and(self):
        expression = self.parse_expression("a < b && b < c || !d")
        assert expression.operator == "||"
