"""Tests for the BRASIL compiler and the interpreted execution of scripts."""

import numpy as np
import pytest

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.brasil import compile_script
from repro.brasil.compiler import BrasilCompiler
from repro.core.engine import SequentialEngine
from repro.core.errors import BrasilError
from repro.core.world import World
from repro.simulations.predator.brasil_scripts import (
    FISH_SCHOOL_SCRIPT,
    PREDATOR_LOCAL_SCRIPT,
    PREDATOR_NON_LOCAL_SCRIPT,
)
from repro.spatial.bbox import BBox

SIMPLE = """
class Walker {
  public state float x : x + step; #range[-1, 1];
  public state float speed : speed;
  private effect float step : sum;
  private effect int seen : count;
  public void run() {
    foreach (Walker p : Extent<Walker>) {
      step <- (p.x - x) * 0.1;
      seen <- 1;
    }
  }
}
"""


def build_world(agent_class, num_agents=40, seed=5, size=40.0, **extra_state):
    world = World(bounds=BBox(((-size, size), (-size, size))) if "y" in agent_class._state_fields
                  else BBox(((-size, size),)), seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(num_agents):
        state = {"x": float(rng.uniform(-size / 2, size / 2))}
        if "y" in agent_class._state_fields:
            state["y"] = float(rng.uniform(-size / 2, size / 2))
        if "vx" in agent_class._state_fields:
            state["vx"] = float(rng.uniform(-0.5, 0.5))
        if "vy" in agent_class._state_fields:
            state["vy"] = float(rng.uniform(-0.5, 0.5))
        state.update(extra_state)
        world.add_agent(agent_class(**state))
    return world


class TestCompilation:
    def test_compiled_class_declares_fields(self):
        compiled = compile_script(SIMPLE)
        agent_class = compiled.agent_class
        assert set(agent_class._state_fields) == {"x", "speed"}
        assert set(agent_class._effect_fields) == {"step", "seen"}
        assert agent_class._state_fields["x"].spatial
        assert agent_class._state_fields["x"].visibility == 1.0
        assert agent_class._effect_fields["seen"].combinator.name == "count"

    def test_class_selection_in_multi_class_scripts(self):
        source = SIMPLE + "\nclass Other { public state float x : x; }"
        with pytest.raises(BrasilError):
            compile_script(source)
        compiled = compile_script(source, class_name="Other")
        assert compiled.class_name == "Other"
        with pytest.raises(BrasilError):
            compile_script(source, class_name="Missing")

    def test_invalid_inversion_mode_rejected(self):
        with pytest.raises(BrasilError):
            BrasilCompiler(effect_inversion="sometimes")

    def test_brace_config_overrides(self):
        local = compile_script(PREDATOR_LOCAL_SCRIPT)
        overrides = local.brace_config_overrides()
        assert overrides["non_local_effects"] is False
        # The optimizer's access-path selection rides along: the predator's
        # uniform #range[-8, 8] visibility selects a grid join.
        assert overrides["index"] == "grid"
        assert overrides["cell_size"] == 16.0
        non_local = compile_script(PREDATOR_NON_LOCAL_SCRIPT, effect_inversion="off")
        assert non_local.brace_config_overrides()["non_local_effects"] is True

    def test_algebra_plan_produced_for_pure_scripts(self):
        compiled = compile_script(SIMPLE)
        assert compiled.algebra_plan is not None
        assert compiled.optimized_plan is not None
        assert compiled.optimized_plan.optimized_size <= compiled.optimized_plan.original_size

    def test_algebra_skipped_for_rand_scripts(self):
        source = """
        class A {
          public state float x : x; #range[-1, 1];
          private effect float e : sum;
          public void run() { e <- rand(); }
        }
        """
        compiled = compile_script(source)
        assert compiled.algebra_plan is None


class TestInterpretedExecution:
    def test_compiled_agents_run_and_move(self):
        compiled = compile_script(SIMPLE)
        world = build_world(compiled.agent_class, num_agents=30)
        before = {agent.agent_id: agent.x for agent in world.agents()}
        SequentialEngine(world).run(3)
        assert any(agent.x != before[agent.agent_id] for agent in world.agents())

    def test_reachability_clamp_from_range_annotation(self):
        compiled = compile_script(SIMPLE)
        world = build_world(compiled.agent_class, num_agents=30)
        before = {agent.agent_id: agent.x for agent in world.agents()}
        SequentialEngine(world).run_tick()
        for agent in world.agents():
            assert abs(agent.x - before[agent.agent_id]) <= 1.0 + 1e-9

    def test_deterministic_runs(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        first = build_world(compiled.agent_class, num_agents=40, seed=8)
        second = build_world(compiled.agent_class, num_agents=40, seed=8)
        SequentialEngine(first).run(4)
        SequentialEngine(second).run(4)
        assert first.same_state_as(second)

    def test_use_index_flag_does_not_change_semantics(self):
        indexed = compile_script(FISH_SCHOOL_SCRIPT, use_index=True)
        scanned = compile_script(FISH_SCHOOL_SCRIPT, use_index=False)
        first = build_world(indexed.agent_class, num_agents=40, seed=8)
        second = build_world(scanned.agent_class, num_agents=40, seed=8)
        SequentialEngine(first).run(3)
        SequentialEngine(second).run(3)
        assert first.same_state_as(second, tolerance=1e-9)

    def test_compiled_script_runs_on_brace(self):
        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        reference = build_world(compiled.agent_class, num_agents=40, seed=8)
        SequentialEngine(reference).run(4)
        world = build_world(compiled.agent_class, num_agents=40, seed=8)
        config = BraceConfig(num_workers=4, **compiled.brace_config_overrides())
        BraceRuntime(world, config).run(4)
        assert world.same_state_as(reference, tolerance=1e-9)

    def test_predator_scripts_local_and_inverted_agree(self):
        inverted = compile_script(PREDATOR_NON_LOCAL_SCRIPT)  # auto-inverted
        assert inverted.was_inverted
        hand_local = compile_script(PREDATOR_LOCAL_SCRIPT)
        first = build_world(inverted.agent_class, num_agents=40, seed=2, energy=10.0)
        second = build_world(hand_local.agent_class, num_agents=40, seed=2, energy=10.0)
        SequentialEngine(first).run(4)
        SequentialEngine(second).run(4)
        assert first.same_state_as(second, tolerance=1e-7)

    def test_non_inverted_two_pass_brace_matches_inverted_sequential(self):
        non_local = compile_script(PREDATOR_NON_LOCAL_SCRIPT, effect_inversion="off")
        inverted = compile_script(PREDATOR_NON_LOCAL_SCRIPT)
        reference = build_world(inverted.agent_class, num_agents=40, seed=4, energy=10.0)
        SequentialEngine(reference).run(3)
        world = build_world(non_local.agent_class, num_agents=40, seed=4, energy=10.0)
        config = BraceConfig(num_workers=3, non_local_effects=True)
        BraceRuntime(world, config).run(3)
        assert world.same_state_as(reference, tolerance=1e-7)
