"""Tests for BRASIL semantic analysis (state-effect pattern enforcement)."""

import pytest

from repro.brasil.parser import parse
from repro.brasil.semantics import analyze, analyze_class
from repro.core.errors import BrasilSemanticError


def analyze_source(source):
    return analyze_class(parse(source).classes[0])


VALID = """
class Fish {
  public state float x : (x + vx); #range[-2, 2];
  public state float vx : vx + pull / count;
  private effect float pull : sum;
  private effect int count : sum;
  public void run() {
    foreach (Fish p : Extent<Fish>) {
      pull <- p.x - x;
      count <- 1;
    }
  }
}
"""


class TestScriptInfo:
    def test_valid_script_info(self):
        info = analyze_source(VALID)
        assert info.class_name == "Fish"
        assert info.state_field_names == ["x", "vx"]
        assert info.effect_field_names == ["pull", "count"]
        assert info.spatial_field_names == ["x"]
        assert info.visibility_radii == {"x": 2.0}
        assert info.has_bounded_visibility
        assert info.min_visibility_radius() == 2.0
        assert not info.has_non_local_effects
        assert info.local_assignment_count == 2
        assert info.has_run_method

    def test_non_local_assignments_detected(self):
        source = VALID.replace("pull <- p.x - x;", "p.pull <- x - p.x;")
        info = analyze_source(source)
        assert info.has_non_local_effects
        assert info.non_local_assignment_count == 1

    def test_rand_usage_flags(self):
        source = """
        class A {
          public state float x : x + rand();
          private effect float e : sum;
          public void run() { e <- rand(); }
        }
        """
        info = analyze_source(source)
        assert info.uses_rand_in_query
        assert info.uses_rand_in_update

    def test_analyze_whole_script(self):
        results = analyze(parse(VALID))
        assert set(results) == {"Fish"}


class TestViolations:
    def test_state_written_in_query_phase(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { x = 1; }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_effect_read_in_query_phase(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { e <- e + 1; }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_effect_assignment_to_state_field(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { x <- 1; }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_update_rule_cannot_access_other_agents(self):
        source = """
        class A {
          public state float x : p.x;
          private effect float e : sum;
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_update_rule_unknown_name(self):
        source = """
        class A {
          public state float x : bogus + 1;
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_effect_without_combinator(self):
        source = """
        class A {
          public state float x : x;
          private effect float e;
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_duplicate_field_names(self):
        source = """
        class A {
          public state float x : x;
          public state float x : x;
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_unknown_function_in_query(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { e <- frobnicate(x); }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_unknown_name_in_query(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { e <- mystery; }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_assignment_to_undeclared_local(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum;
          public void run() { temp = 1; }
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)

    def test_effect_field_with_spatial_constraint_rejected(self):
        source = """
        class A {
          public state float x : x;
          private effect float e : sum; #range[-1, 1];
        }
        """
        with pytest.raises(BrasilSemanticError):
            analyze_source(source)
