"""Shared fixtures and helper agent classes for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agent import Agent
from repro.core.combinators import COUNT, SUM
from repro.core.fields import EffectField, StateField
from repro.core.world import World
from repro.spatial.bbox import BBox


class Boid(Agent):
    """A small flocking agent used throughout the tests.

    It exercises the interesting machinery: bounded visibility and
    reachability, local effect assignments with two combinators, and state
    updates that depend on aggregated effects.
    """

    x = StateField(0.0, spatial=True, visibility=10.0, reachability=2.0)
    y = StateField(0.0, spatial=True, visibility=10.0, reachability=2.0)
    vx = StateField(0.0)
    vy = StateField(0.0)

    pull_x = EffectField(SUM)
    pull_y = EffectField(SUM)
    neighbor_count = EffectField(COUNT)

    def query(self, ctx):
        for other in ctx.neighbors(self, 6.0):
            self.pull_x = other.x - self.x
            self.pull_y = other.y - self.y
            self.neighbor_count = 1

    def update(self, ctx):
        count = self.neighbor_count
        if count > 0:
            self.vx = 0.8 * self.vx + 0.2 * (self.pull_x / count)
            self.vy = 0.8 * self.vy + 0.2 * (self.pull_y / count)
        self.x = self.x + self.vx
        self.y = self.y + self.vy


class NonLocalBoid(Agent):
    """A variant that pushes its neighbours (non-local effect assignments)."""

    x = StateField(0.0, spatial=True, visibility=10.0, reachability=2.0)
    y = StateField(0.0, spatial=True, visibility=10.0, reachability=2.0)

    push_x = EffectField(SUM)
    push_count = EffectField(COUNT)

    def query(self, ctx):
        for other in ctx.neighbors(self, 6.0):
            other.push_x = 0.1 * (other.x - self.x)
            other.push_count = 1

    def update(self, ctx):
        if self.push_count > 0:
            self.x = self.x + self.push_x / self.push_count


class SpawningAgent(Agent):
    """An agent with births and deaths, for dynamic-population tests."""

    x = StateField(0.0, spatial=True, visibility=5.0, reachability=1.0)
    y = StateField(0.0, spatial=True, visibility=5.0, reachability=1.0)
    age = StateField(0)

    crowd = EffectField(COUNT)

    def query(self, ctx):
        for _other in ctx.neighbors(self, 4.0):
            self.crowd = 1

    def update(self, ctx):
        self.age = self.age + 1
        if self.age > 6 and self.crowd > 3:
            ctx.kill(self)
            return
        if self.age == 3 and self.crowd <= 1:
            ctx.spawn(self, type(self)(x=self.x + 0.5, y=self.y + 0.5))
        self.x = self.x + 0.3
        self.y = self.y - 0.2


def make_boid_world(num_agents: int = 60, seed: int = 7, agent_class: type = Boid,
                    size: float = 60.0) -> World:
    """A deterministic world of ``num_agents`` agents scattered over a square."""
    world = World(bounds=BBox(((0.0, size), (0.0, size))), seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(num_agents):
        kwargs = {
            "x": float(rng.uniform(0, size)),
            "y": float(rng.uniform(0, size)),
        }
        if "vx" in agent_class._state_fields:
            kwargs["vx"] = float(rng.uniform(-1, 1))
            kwargs["vy"] = float(rng.uniform(-1, 1))
        world.add_agent(agent_class(**kwargs))
    return world


@pytest.fixture
def boid_world() -> World:
    """A 60-agent Boid world."""
    return make_boid_world()


@pytest.fixture
def small_boid_world() -> World:
    """A 20-agent Boid world for cheaper tests."""
    return make_boid_world(num_agents=20, seed=3)
