"""The socket-backed cluster executor on localhost nodes.

These tests exercise the executor contract end to end over real TCP:
resident shards initialized onto spawned node processes, sharded tasks
running where the state lives, physical migration between nodes, remote
errors surfacing with their original type, and externally started nodes
(``python -m repro.cluster.node --connect``) joining a driver that did
not spawn them.
"""

import socket
import subprocess
import sys

import pytest

from repro.core.errors import ExecutorError, NodeLossError
from repro.cluster.client import ClusterExecutor


class CounterShard:
    """Minimal resident state: remembers its payload and counts calls."""

    def __init__(self, shard_id, start):
        self.shard_id = shard_id
        self.value = start
        self.calls = 0


def make_counter(shard_id, payload):
    return CounterShard(shard_id, payload)


def add_task(shard, amount):
    shard.value += amount
    shard.calls += 1
    return (shard.shard_id, shard.value, shard.calls)


def failing_task(shard, payload):
    raise KeyError("missing-thing")


def identity_task(value):
    return value


@pytest.fixture()
def executor():
    ex = ClusterExecutor(2, num_nodes=2, heartbeat_interval=0.1)
    yield ex
    ex.shutdown()


class TestRunTasks:
    def test_results_in_submission_order(self, executor):
        from functools import partial

        tasks = [partial(identity_task, i * i) for i in range(5)]
        results = executor.run_tasks(tasks)
        assert [r.value for r in results] == [0, 1, 4, 9, 16]

    def test_unpicklable_task_rejected_with_guidance(self, executor):
        with pytest.raises(ExecutorError, match="picklable"):
            executor.run_tasks([lambda: 1])


class TestResidentShards:
    def test_init_run_teardown_roundtrip(self, executor):
        executor.init_shards(make_counter, {0: 10, 1: 20, 2: 30})
        assert executor.has_shards()
        results = executor.run_sharded_tasks(
            [(0, add_task, 1), (1, add_task, 2), (2, add_task, 3)]
        )
        assert [r.value for r in results] == [(0, 11, 1), (1, 22, 1), (2, 33, 1)]
        # State is durable across calls — the counter keeps counting.
        results = executor.run_sharded_tasks([(1, add_task, 0)])
        assert results[0].value == (1, 22, 2)
        executor.teardown_shards()
        assert not executor.has_shards()

    def test_shards_are_spread_across_nodes(self, executor):
        executor.init_shards(make_counter, {i: 0 for i in range(4)})
        assert set(executor.shard_node(i) for i in range(4)) == {0, 1}

    def test_byte_accounting_reported(self, executor):
        executor.init_shards(make_counter, {0: 0})
        (result,) = executor.run_sharded_tasks([(0, add_task, 5)])
        assert result.payload_bytes > 0
        assert result.result_bytes > 0
        assert result.wall_seconds >= 0.0

    def test_remote_task_error_surfaces_original_type(self, executor):
        executor.init_shards(make_counter, {0: 0})
        with pytest.raises(KeyError, match="missing-thing"):
            executor.run_sharded_tasks([(0, failing_task, None)])
        # The node survives a task error; the shard state is untouched.
        (result,) = executor.run_sharded_tasks([(0, add_task, 1)])
        assert result.value == (0, 1, 1)

    def test_unknown_shard_rejected(self, executor):
        executor.init_shards(make_counter, {0: 0})
        with pytest.raises(ExecutorError, match="unknown resident shard"):
            executor.run_sharded_tasks([(7, add_task, 1)])

    def test_sharded_tasks_require_init(self, executor):
        with pytest.raises(ExecutorError, match="init_shards"):
            executor.run_sharded_tasks([(0, add_task, 1)])


class TestMigration:
    def test_migrate_moves_live_state(self, executor):
        executor.init_shards(make_counter, {0: 100, 1: 200})
        executor.run_sharded_tasks([(0, add_task, 1), (1, add_task, 1)])
        source = executor.shard_node(0)
        destination = 1 - source
        moved_bytes = executor.migrate_shard(0, destination)
        assert moved_bytes > 0
        assert executor.shard_node(0) == destination
        # The migrated shard kept its mutated state, not its seed payload.
        (result,) = executor.run_sharded_tasks([(0, add_task, 1)])
        assert result.value == (0, 102, 2)

    def test_migrate_to_current_node_is_noop(self, executor):
        executor.init_shards(make_counter, {0: 0})
        node = executor.shard_node(0)
        assert executor.migrate_shard(0, node) == 0

    def test_migrated_shard_runs_on_destination_pid(self, executor):
        executor.init_shards(make_counter, {0: 0, 1: 0})
        destination = 1 - executor.shard_node(0)
        executor.migrate_shard(0, destination)
        assert executor.shard_host_pid(0) == executor.node_pids()[destination]

    def test_rebalance_follows_weights(self, executor):
        executor.init_shards(make_counter, {0: 0, 1: 0, 2: 0, 3: 0})
        # All the weight on shard 3: the planner must give it a node of
        # its own and pack the light shards together.
        moves, moved_bytes = executor.rebalance_shards(
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 500.0}
        )
        assert executor.shard_node(3) != executor.shard_node(0)
        assert executor.shard_node(0) == executor.shard_node(1) == executor.shard_node(2)
        if moves:
            assert moved_bytes > 0


class TestTopologyIntrospection:
    def test_node_topology_records_placement(self, executor):
        executor.init_shards(make_counter, {0: 0, 1: 0})
        topology = executor.node_topology()
        assert len(topology) == 2
        hosted = [shard for record in topology for shard in record["shards"]]
        assert sorted(hosted) == [0, 1]
        for record in topology:
            assert record["spawned"] is True
            assert record["pid"] > 0
            assert ":" in record["address"]


class TestNodeDeath:
    def test_dead_node_raises_recovery_pointing_error(self):
        executor = ClusterExecutor(
            2, num_nodes=2, heartbeat_interval=0.1, heartbeat_timeout=1.5
        )
        try:
            executor.init_shards(make_counter, {0: 0, 1: 0, 2: 0})
            victim = executor.shard_node(0)
            executor._nodes[victim].process.kill()
            with pytest.raises(NodeLossError, match="recover from the last checkpoint") as info:
                for _ in range(20):
                    executor.run_sharded_tasks(
                        [(i, add_task, 1) for i in range(3)]
                    )
            # Supervision pins the loss to the node that actually died and
            # keeps the survivors' resident state — there is no teardown.
            assert info.value.node_index == victim
            assert executor.has_shards()
            lost = executor.lost_shards()
            assert lost == tuple(info.value.lost_shards)
            assert lost and all(s not in executor._shard_to_node for s in lost)
            # Rounds are refused until the lost shards are re-seeded...
            with pytest.raises(ExecutorError, match="re-seeded"):
                executor.run_sharded_tasks([(i, add_task, 1) for i in range(3)])
            # ...and resume — with survivor state intact — once they are.
            executor.reseed_shards({shard_id: 0 for shard_id in lost})
            results = executor.run_sharded_tasks([(i, add_task, 1) for i in range(3)])
            by_shard = {value[0]: value for value in (r.value for r in results)}
            for shard_id in lost:
                assert by_shard[shard_id] == (shard_id, 1, 1)  # re-seeded fresh
            survivors = [i for i in range(3) if i not in lost]
            for shard_id in survivors:
                # Survivor counters kept counting across the loss.
                assert by_shard[shard_id][2] >= 1
            (event,) = executor.drain_fault_events()
            assert event["action"] == "respawned"
            assert event["node"] == victim
        finally:
            executor.shutdown()


class TestExternalNodes:
    def test_externally_started_nodes_join(self):
        # Pick a free port for the driver, start one external node against
        # it (the connect loop retries until the driver listens), and run.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        node = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.node",
                "--connect",
                f"127.0.0.1:{port}",
                "--heartbeat-interval",
                "0.1",
            ],
        )
        executor = ClusterExecutor(
            1, num_nodes=1, listen=f"127.0.0.1:{port}", spawn=False
        )
        try:
            executor.init_shards(make_counter, {0: 5})
            (result,) = executor.run_sharded_tasks([(0, add_task, 2)])
            assert result.value == (0, 7, 1)
            (record,) = executor.node_topology()
            assert record["spawned"] is False
        finally:
            executor.shutdown()
            node.wait(timeout=10)
