"""Tests for the simulated cluster: network model, nodes and cost model."""

import pytest

from repro.cluster.costmodel import ClusterCostModel, WorkerTickCost
from repro.cluster.network import NetworkModel
from repro.cluster.node import SimulatedNode


class TestNetworkModel:
    def test_same_node_transfers_are_free_and_tracked_as_local(self):
        network = NetworkModel()
        assert network.transfer_seconds(0, 0, 10_000) == 0.0
        assert network.totals.local_bytes == 10_000
        assert network.totals.bytes_sent == 0

    def test_transfer_time_scales_with_bytes(self):
        network = NetworkModel(latency_seconds=0.0, bandwidth_bytes_per_second=1000.0)
        assert network.transfer_seconds(0, 1, 500) == pytest.approx(0.5)
        assert network.transfer_seconds(0, 1, 1000) == pytest.approx(1.0)

    def test_latency_charged_per_message(self):
        network = NetworkModel(latency_seconds=0.01, bandwidth_bytes_per_second=1e12)
        assert network.transfer_seconds(0, 1, 10, messages=3) == pytest.approx(0.03)

    def test_switch_assignment(self):
        network = NetworkModel(nodes_per_switch=4)
        assert network.switch_of(3) == 0
        assert network.switch_of(4) == 1
        assert network.same_switch(0, 3)
        assert not network.same_switch(0, 4)

    def test_inter_switch_penalty_applied(self):
        network = NetworkModel(
            latency_seconds=0.0,
            bandwidth_bytes_per_second=1000.0,
            nodes_per_switch=2,
            inter_switch_penalty=2.0,
        )
        same_switch = network.transfer_seconds(0, 1, 1000)
        across_switches = network.transfer_seconds(0, 2, 1000)
        assert across_switches == pytest.approx(2.0 * same_switch)

    def test_broadcast_and_totals(self):
        network = NetworkModel(latency_seconds=0.0, bandwidth_bytes_per_second=1000.0)
        seconds = network.broadcast_seconds(0, [0, 1, 2], 1000)
        assert seconds == pytest.approx(2.0)
        assert network.totals.messages == 2
        network.reset_totals()
        assert network.totals.messages == 0


class TestSimulatedNode:
    def test_compute_seconds(self):
        node = SimulatedNode(0, work_units_per_second=100.0)
        assert node.compute_seconds(50) == pytest.approx(0.5)
        assert node.compute_seconds(0) == 0.0

    def test_checkpoint_seconds(self):
        node = SimulatedNode(0, checkpoint_bytes_per_second=1000.0)
        assert node.checkpoint_seconds(500) == pytest.approx(0.5)
        assert node.checkpoint_seconds(0) == 0.0


class TestClusterCostModel:
    def _model(self, workers=2):
        network = NetworkModel(latency_seconds=0.0, bandwidth_bytes_per_second=1e6)
        nodes = [SimulatedNode(i, work_units_per_second=1000.0) for i in range(workers)]
        return ClusterCostModel(network=network, nodes=nodes, barrier_seconds=0.001)

    def test_tick_time_is_slowest_worker_plus_barriers(self):
        model = self._model()
        costs = [
            WorkerTickCost(0, work_units=1000, agents_owned=10),
            WorkerTickCost(1, work_units=100, agents_owned=10),
        ]
        breakdown = model.tick_cost(0, costs, num_passes=2)
        assert breakdown.max_worker_seconds == pytest.approx(1.0)
        assert breakdown.total_seconds == pytest.approx(1.0 + 2 * 0.001)
        assert breakdown.agents_processed == 20
        assert breakdown.imbalance == pytest.approx(10.0)

    def test_comm_seconds_from_network_model_take_precedence(self):
        model = self._model()
        cost = WorkerTickCost(0, work_units=0, agents_owned=1)
        cost.add_send(1000, remote=True, seconds=0.25)
        breakdown = model.tick_cost(0, [cost], num_passes=1)
        assert breakdown.communication_seconds == pytest.approx(0.25)

    def test_throughput_and_reset(self):
        model = self._model()
        for tick in range(4):
            model.tick_cost(tick, [WorkerTickCost(0, work_units=100, agents_owned=5)], 1)
        assert model.total_agent_ticks() == 20
        assert model.throughput() > 0
        assert model.throughput(skip_ticks=2) > 0
        model.reset()
        assert model.history == []
        assert model.total_virtual_seconds() == 0.0
