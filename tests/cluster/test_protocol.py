"""The cluster wire format under adversarial transport conditions.

TCP guarantees ordered bytes, not message boundaries: a recv() may return
half a length prefix, three messages at once, or a frame spliced across a
dozen chunks.  The frame layer must reassemble the exact payload sequence
from *any* chunking of the byte stream — these tests drive the sans-io
:class:`FrameAssembler` through hypothesis-chosen splits — and a
connection dropped mid-frame must surface as a typed error, never a
silently truncated message.
"""

import pickle
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.protocol import (
    DIRECTION_TO_DRIVER,
    DIRECTION_TO_NODE,
    MAX_FRAME_BYTES,
    ConnectionLostError,
    FrameAssembler,
    FrameChannel,
    FrameIntegrityError,
    FrameSequenceError,
    ProtocolError,
    encode_frame,
    open_payload,
    pack_message,
    seal_payload,
    unpack_message,
)


def chunked(data: bytes, cut_points):
    """Split ``data`` at the given sorted offsets."""
    cuts = [0] + sorted(set(cut_points)) + [len(data)]
    return [data[a:b] for a, b in zip(cuts, cuts[1:])]


def reassemble(stream: bytes, cut_points):
    assembler = FrameAssembler()
    frames = []
    for chunk in chunked(stream, cut_points):
        frames.extend(assembler.feed(chunk))
    return assembler, frames


payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=200), min_size=0, max_size=8
)


class TestFrameReassembly:
    @given(
        payloads=payloads_strategy,
        cut_seed=st.lists(st.integers(min_value=0, max_value=2_000), max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_chunking_yields_exact_payload_sequence(self, payloads, cut_seed):
        stream = b"".join(encode_frame(p) for p in payloads)
        cuts = [c % (len(stream) + 1) for c in cut_seed]
        assembler, frames = reassemble(stream, cuts)
        assert frames == payloads
        assert assembler.pending_bytes == 0
        assembler.close()  # clean close: nothing buffered, no error

    @given(payload=st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_byte_at_a_time_delivery(self, payload):
        assembler = FrameAssembler()
        frames = []
        for index in range(len(encode_frame(payload))):
            frames.extend(assembler.feed(encode_frame(payload)[index : index + 1]))
        assert frames == [payload]

    def test_zero_length_payload_roundtrips(self):
        assembler = FrameAssembler()
        assert assembler.feed(encode_frame(b"")) == [b""]

    def test_boundary_mid_length_prefix(self):
        # The 8-byte length prefix itself split across recv() calls.
        stream = encode_frame(b"hello")
        assembler = FrameAssembler()
        assert assembler.feed(stream[:3]) == []
        assert assembler.feed(stream[3:7]) == []
        assert assembler.feed(stream[7:]) == [b"hello"]

    def test_multiple_frames_in_one_chunk(self):
        stream = encode_frame(b"a") + encode_frame(b"") + encode_frame(b"ccc")
        assembler = FrameAssembler()
        assert assembler.feed(stream) == [b"a", b"", b"ccc"]

    @given(
        payloads=st.lists(st.binary(max_size=50), min_size=1, max_size=4),
        drop=st.integers(min_value=1, max_value=1_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_connection_drop_mid_frame_raises_typed_error(self, payloads, drop):
        stream = b"".join(encode_frame(p) for p in payloads)
        # Truncate strictly inside the stream so at least one byte of some
        # frame (prefix or payload) is outstanding at close.
        cut = len(stream) - 1 - (drop % (len(stream) - 1)) if len(stream) > 1 else 0
        assembler = FrameAssembler()
        assembler.feed(stream[: cut or 1][: len(stream) - 1])
        if assembler.pending_bytes:
            with pytest.raises(ConnectionLostError):
                assembler.close()
        else:
            assembler.close()

    def test_oversized_length_prefix_rejected(self):
        import struct

        bogus = struct.pack(">Q", MAX_FRAME_BYTES + 1)
        assembler = FrameAssembler()
        with pytest.raises(ProtocolError, match="frame"):
            assembler.feed(bogus)


class TestMessageCodec:
    @given(
        kind=st.sampled_from(["hello", "run_task", "result", "error", "bye"]),
        meta=st.none()
        | st.dictionaries(
            st.text(max_size=10),
            st.integers() | st.text(max_size=20) | st.none(),
            max_size=4,
        ),
        blob=st.binary(max_size=300),
    )
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_roundtrip(self, kind, meta, blob):
        packed = pack_message(kind, meta, blob)
        out_kind, out_meta, out_blob = unpack_message(packed)
        assert out_kind == kind
        assert out_meta == (meta or {})
        assert out_blob == blob

    def test_blob_is_carried_raw_not_nested_in_pickle(self):
        # The blob (a columnar frame) must ride next to the pickled header,
        # not inside it — re-pickling an encoded frame would double-copy it.
        blob = b"\x01" * 64
        packed = pack_message("run_task", {"shard_id": 0}, blob)
        assert packed.endswith(blob)

    def test_short_payload_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_message(b"\x00\x00")

    def test_truncated_header_rejected(self):
        header = pickle.dumps(("ok", {}))
        packed = pack_message("ok", {})
        with pytest.raises(ProtocolError):
            unpack_message(packed[: 4 + len(header) // 2])

    def test_garbage_header_rejected(self):
        import struct

        payload = struct.pack(">I", 8) + b"notpickl"
        with pytest.raises(ProtocolError):
            unpack_message(payload)

    @given(payloads=payloads_strategy)
    @settings(max_examples=50, deadline=None)
    def test_messages_survive_framing(self, payloads):
        # Full stack: pack -> frame -> adversarial reassembly -> unpack.
        messages = [("chunk", {"index": i}, p) for i, p in enumerate(payloads)]
        stream = b"".join(encode_frame(pack_message(*m)) for m in messages)
        _, frames = reassemble(stream, list(range(0, len(stream), 7)))
        assert [unpack_message(f) for f in frames] == [
            (kind, meta, blob) for kind, meta, blob in messages
        ]


KEY = b"k" * 32


class TestEnvelope:
    """The integrity envelope turns transport faults into typed errors."""

    @given(body=st.binary(max_size=300), seq=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_plain_and_authenticated(self, body, seq):
        for key in (None, KEY):
            sealed = seal_payload(body, seq=seq, direction=DIRECTION_TO_NODE, key=key)
            assert (
                open_payload(sealed, seq=seq, direction=DIRECTION_TO_NODE, key=key)
                == body
            )

    @given(
        body=st.binary(min_size=1, max_size=200),
        offset=st.integers(min_value=0, max_value=10_000),
        bit=st.integers(min_value=0, max_value=7),
        authed=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_single_bit_flip_is_fail_stop(self, body, offset, bit, authed):
        # Flip one bit anywhere in the sealed frame: never a silently
        # different body — always FrameIntegrityError (CRC or MAC) or, for
        # flips inside the sequence field that evade neither, a
        # FrameSequenceError.  The CRC covers everything after itself, so
        # a flip in the CRC field itself also fails the comparison.
        key = KEY if authed else None
        sealed = bytearray(seal_payload(body, seq=7, direction=DIRECTION_TO_NODE, key=key))
        position = offset % len(sealed)
        sealed[position] ^= 1 << bit
        with pytest.raises((FrameIntegrityError, FrameSequenceError)):
            open_payload(bytes(sealed), seq=7, direction=DIRECTION_TO_NODE, key=key)

    def test_wrong_sequence_number_is_typed(self):
        sealed = seal_payload(b"x", seq=3, direction=DIRECTION_TO_NODE)
        with pytest.raises(FrameSequenceError, match="dropped, duplicated"):
            open_payload(sealed, seq=4, direction=DIRECTION_TO_NODE)

    def test_unauthenticated_frame_rejected_on_authenticated_channel(self):
        sealed = seal_payload(b"x", seq=0, direction=DIRECTION_TO_NODE)
        with pytest.raises(FrameIntegrityError, match="unauthenticated"):
            open_payload(sealed, seq=0, direction=DIRECTION_TO_NODE, key=KEY)

    def test_wrong_key_rejected(self):
        sealed = seal_payload(b"x", seq=0, direction=DIRECTION_TO_NODE, key=KEY)
        with pytest.raises(FrameIntegrityError, match="MAC"):
            open_payload(sealed, seq=0, direction=DIRECTION_TO_NODE, key=b"j" * 32)

    def test_direction_replay_rejected(self):
        # A frame recorded driver->node can never be replayed node->driver:
        # the direction byte is mixed into the MAC.
        sealed = seal_payload(b"x", seq=0, direction=DIRECTION_TO_NODE, key=KEY)
        with pytest.raises(FrameIntegrityError, match="MAC"):
            open_payload(sealed, seq=0, direction=DIRECTION_TO_DRIVER, key=KEY)

    def test_short_frame_rejected(self):
        with pytest.raises(FrameIntegrityError, match="envelope"):
            open_payload(b"\x00\x01", seq=0, direction=DIRECTION_TO_NODE)


class TestFrameChannel:
    """The duplex channel over a real socket pair."""

    def make_pair(self):
        left, right = socket.socketpair()
        return FrameChannel(left, "driver"), FrameChannel(right, "node")

    def test_duplex_roundtrip(self):
        driver, node = self.make_pair()
        try:
            driver.send_message("run_task", {"shard_id": 1}, b"blob")
            assert node.recv_message() == ("run_task", {"shard_id": 1}, b"blob")
            node.send_message("result", {"ok": True})
            assert driver.recv_message() == ("result", {"ok": True}, b"")
        finally:
            driver.sock.close()
            node.sock.close()

    def test_authenticated_roundtrip_and_tamper_detection(self):
        driver, node = self.make_pair()
        try:
            driver.enable_auth(KEY)
            node.enable_auth(KEY)
            for i in range(3):
                driver.send_message("ping", {"i": i})
                assert node.recv_message() == ("ping", {"i": i}, b"")
            # An attacker without the session key cannot inject a frame.
            forged = seal_payload(
                pack_message("ping", {"i": 99}), seq=3, direction=DIRECTION_TO_NODE
            )
            driver.sock.sendall(encode_frame(forged))
            with pytest.raises(FrameIntegrityError):
                node.recv_message()
        finally:
            driver.sock.close()
            node.sock.close()

    def test_duplicated_frame_is_fail_stop(self):
        driver, node = self.make_pair()
        try:
            frame = driver.seal_message("ping", {})
            driver.sock.sendall(frame)
            driver.sock.sendall(frame)  # the duplicate
            assert node.recv_message() == ("ping", {}, b"")
            with pytest.raises(FrameSequenceError):
                node.recv_message()
        finally:
            driver.sock.close()
            node.sock.close()

    def test_seal_message_claims_sequence_in_order(self):
        driver, node = self.make_pair()
        try:
            frames = [driver.seal_message("n", {"i": i}) for i in range(4)]
            for frame in frames:
                driver.sock.sendall(frame)
            received = [node.recv_message() for _ in range(4)]
            assert [meta["i"] for _, meta, _ in received] == [0, 1, 2, 3]
        finally:
            driver.sock.close()
            node.sock.close()
