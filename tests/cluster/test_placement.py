"""Cost-model-driven shard-to-node placement.

Placement must be deterministic (it is part of a run's provenance), keep
strip shards contiguous per node (one partition boundary per node pair is
the minimum cross-node traffic for strip partitioning), and actually
respond to the cost model — heavier shards spread out, faster nodes take
more work.
"""

import pytest

from repro.cluster._simnode import SimulatedNode
from repro.cluster.network import NetworkModel
from repro.cluster.placement import placement_makespan, plan_placement


def make_nodes(speeds):
    return [SimulatedNode(i, work_units_per_second=s) for i, s in enumerate(speeds)]


def place(weights, speeds, **kwargs):
    shard_ids = sorted(weights)
    return plan_placement(
        shard_ids, weights, make_nodes(speeds), NetworkModel(), **kwargs
    )


class TestPlanPlacement:
    def test_every_shard_placed_on_a_valid_node(self):
        placement = place({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}, [1e6, 1e6])
        assert sorted(placement) == [0, 1, 2, 3]
        assert set(placement.values()) <= {0, 1}

    def test_deterministic(self):
        weights = {i: float(1 + (i * 7) % 5) for i in range(9)}
        speeds = [1e6, 2e6, 1.5e6]
        assert place(weights, speeds) == place(weights, speeds)

    def test_contiguous_blocks_per_node(self):
        # Strip shard ids are spatially ordered: each node must own a
        # contiguous run, and node indices must not interleave.
        placement = place({i: float(i + 1) for i in range(8)}, [1e6, 1e6, 1e6])
        sequence = [placement[i] for i in sorted(placement)]
        assert sequence == sorted(sequence)

    def test_equal_weights_split_evenly_on_equal_nodes(self):
        placement = place({i: 1.0 for i in range(6)}, [1e6, 1e6])
        per_node = [sum(1 for n in placement.values() if n == node) for node in (0, 1)]
        assert per_node == [3, 3]

    def test_heavy_shard_gets_its_own_node(self):
        placement = place({0: 100.0, 1: 1.0, 2: 1.0, 3: 1.0}, [1e6, 1e6])
        assert placement[0] != placement[3]
        assert placement[1] == placement[2] == placement[3]

    def test_faster_node_takes_more_shards(self):
        placement = place({i: 1.0 for i in range(8)}, [3e6, 1e6])
        node0 = sum(1 for n in placement.values() if n == 0)
        assert node0 > 4

    def test_single_node_takes_everything(self):
        placement = place({0: 1.0, 1: 5.0}, [1e6])
        assert placement == {0: 0, 1: 0}

    def test_more_nodes_than_shards_leaves_spare_nodes_empty(self):
        placement = place({0: 1.0, 1: 1.0}, [1e6] * 4)
        assert sorted(placement) == [0, 1]
        assert len(set(placement.values())) <= 2

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            plan_placement([0], {0: 1.0}, [], NetworkModel())

    def test_large_shard_count_uses_greedy_and_stays_contiguous(self):
        # Above the enumeration limit the greedy splitter takes over; the
        # contiguity and determinism contracts must hold there too.
        weights = {i: float(1 + i % 3) for i in range(200)}
        speeds = [1e6, 2e6, 1e6, 2e6]
        placement = place(weights, speeds)
        sequence = [placement[i] for i in sorted(placement)]
        assert sequence == sorted(sequence)
        assert place(weights, speeds) == placement


class TestPlacementMakespan:
    def test_balanced_split_beats_lopsided(self):
        nodes = make_nodes([1e6, 1e6])
        network = NetworkModel()
        weights = {i: 1.0 for i in range(4)}
        balanced = placement_makespan([2, 2], weights, nodes, network, 4096.0)
        lopsided = placement_makespan([4, 0], weights, nodes, network, 4096.0)
        assert balanced < lopsided

    def test_cross_node_boundary_charged_on_both_sides(self):
        slow = NetworkModel(latency_seconds=0.0, bandwidth_bytes_per_second=1e3)
        fast = NetworkModel(latency_seconds=0.0, bandwidth_bytes_per_second=1e9)
        nodes = make_nodes([1e6, 1e6])
        weights = {0: 1.0, 1: 1.0}
        assert placement_makespan([1, 1], weights, nodes, slow, 4096.0) > (
            placement_makespan([1, 1], weights, nodes, fast, 4096.0)
        )
