"""Cluster authentication: challenge–response admission and frame MACs.

The driver issues a fresh nonce per connection; a node proves knowledge
of the shared ``cluster_secret`` with an HMAC over that nonce (the
secret never crosses the wire) and both sides then MAC every frame with
a per-connection session key.  These tests cover the primitives, the
policy (non-loopback listeners refuse to run unauthenticated) and the
live handshake: impostors with no proof, a wrong proof or a replayed
hello are closed and ignored while a legitimate node joins and runs.
"""

import os
import socket
import subprocess
import sys
import threading

import pytest

from repro.cluster.auth import (
    SECRET_ENV_VAR,
    derive_session_key,
    hello_proof,
    is_loopback,
    load_credential,
    verify_hello,
)
from repro.cluster.client import ClusterExecutor
from repro.cluster.protocol import FrameChannel
from repro.cluster.retry import RetryPolicy
from repro.core.errors import ExecutorError

SECRET = "orange-tabby-rehearsal"


class TestPrimitives:
    def test_proof_roundtrip(self):
        assert verify_hello(SECRET, "abcd", hello_proof(SECRET, "abcd"))

    def test_wrong_secret_or_nonce_rejected(self):
        proof = hello_proof(SECRET, "abcd")
        assert not verify_hello("other", "abcd", proof)
        assert not verify_hello(SECRET, "efgh", proof)

    def test_non_string_proof_rejected(self):
        for bogus in (None, 7, b"bytes", ["list"]):
            assert not verify_hello(SECRET, "abcd", bogus)

    def test_session_key_differs_from_proof_and_per_nonce(self):
        key = derive_session_key(SECRET, "abcd")
        assert len(key) == 32
        assert key.hex() != hello_proof(SECRET, "abcd")
        assert key != derive_session_key(SECRET, "efgh")

    def test_loopback_classification(self):
        assert is_loopback("127.0.0.1")
        assert is_loopback("::1")
        assert is_loopback("localhost")
        # Anything unrecognized must err on the side of requiring auth.
        assert not is_loopback("0.0.0.0")
        assert not is_loopback("10.1.2.3")
        assert not is_loopback("")
        assert not is_loopback("some-host.example")

    def test_load_credential_prefers_file_and_strips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRED", "  from-env \n")
        assert load_credential("REPRO_TEST_CRED") == "from-env"
        path = tmp_path / "secret"
        path.write_text("from-file\n")
        assert load_credential("REPRO_TEST_CRED", str(path)) == "from-file"
        monkeypatch.delenv("REPRO_TEST_CRED")
        assert load_credential("REPRO_TEST_CRED") is None


class TestListenPolicy:
    def test_non_loopback_listen_requires_secret(self):
        executor = ClusterExecutor(
            1, num_nodes=1, spawn=False, listen="203.0.113.5:0"
        )
        try:
            with pytest.raises(ExecutorError, match="non-loopback"):
                executor._ensure_listener()
        finally:
            executor.shutdown()

    def test_config_validation_mirrors_the_policy(self):
        from repro.brace.config import BraceConfig
        from repro.core.errors import BraceError

        with pytest.raises(BraceError, match="cluster_secret"):
            BraceConfig(
                executor="cluster", cluster_listen="203.0.113.5:0"
            ).validate()
        BraceConfig(
            executor="cluster",
            cluster_listen="203.0.113.5:0",
            cluster_secret=SECRET,
        ).validate()


def make_box(shard_id, seed):
    return [seed]


def read_box(shard, _payload):
    return shard[0]


class TestHandshake:
    """Live driver with a secret: impostors are refused, members join."""

    def test_impostors_refused_then_legitimate_node_admitted(self):
        executor = ClusterExecutor(
            1,
            num_nodes=1,
            listen="127.0.0.1:0",
            spawn=False,
            secret=SECRET,
            heartbeat_interval=0.2,
            retry=RetryPolicy(accept_timeout_seconds=30.0),
        )
        node = None
        refusals = []

        def impostor(build_hello):
            """Dial the driver, answer its challenge with ``build_hello``'s
            meta, and record whether the driver hung up on us."""
            sock = socket.create_connection(executor._listener.getsockname()[:2], 5.0)
            sock.settimeout(5.0)
            channel = FrameChannel(sock, role="node")
            try:
                kind, meta, _ = channel.recv_message()
                assert kind == "challenge"
                assert meta["auth_required"] is True
                channel.send_message("hello", build_hello(meta["nonce"]))
                try:
                    refused = sock.recv(1) == b""
                except OSError:
                    refused = True
                refusals.append(refused)
            finally:
                sock.close()

        try:
            address = executor._ensure_listener()
            admitted = threading.Thread(target=executor._ensure_nodes)
            admitted.start()
            # 1: no proof at all.  2: a wrong-secret proof.  3: a proof
            # replayed from a different nonce (what an eavesdropper has).
            impostor(lambda nonce: {"pid": 1})
            impostor(lambda nonce: {"pid": 2, "proof": hello_proof("wrong", nonce)})
            impostor(lambda nonce: {"pid": 3, "proof": hello_proof(SECRET, "stale")})
            env = dict(os.environ)
            env[SECRET_ENV_VAR] = SECRET
            env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
            node = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.node",
                    "--connect",
                    f"{address[0]}:{address[1]}",
                    "--heartbeat-interval",
                    "0.2",
                ],
                env=env,
            )
            admitted.join(timeout=30)
            assert not admitted.is_alive()
            assert refusals == [True, True, True]
            executor.init_shards(make_box, {0: 9})
            (result,) = executor.run_sharded_tasks([(0, read_box, None)])
            assert result.value == 9
            (record,) = executor.node_topology()
            assert record["authenticated"] is True
        finally:
            executor.shutdown()
            if node is not None:
                node.kill()
                node.wait(timeout=10)

    def test_loopback_without_secret_is_unauthenticated(self):
        executor = ClusterExecutor(1, num_nodes=1, heartbeat_interval=0.2)
        try:
            executor.init_shards(make_box, {0: 1})
            (record,) = executor.node_topology()
            assert record["authenticated"] is False
        finally:
            executor.shutdown()
