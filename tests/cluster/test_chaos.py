"""The chaos harness: every injected transport fault is fail-stop.

A :class:`ChaosProxy` sits between a node and the driver and misbehaves
at frame granularity.  These tests assert the central robustness
invariant of the cluster backend: **no transport fault ever produces a
silently wrong frame** — every corruption, duplication, drop or
truncation surfaces as a typed :class:`ProtocolError` before any payload
past the fault is accepted, and a delay below the heartbeat timeout is
completely harmless.  The end-to-end tests drive a real
:class:`ClusterExecutor` with an external node dialing through the proxy
and check the driver degrades through supervision instead of computing
with corrupt state.
"""

import socket
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.chaos import (
    FAULT_ACTIONS,
    TO_DRIVER,
    TO_NODE,
    ChaosProxy,
    FrameFault,
)
from repro.cluster.client import ClusterExecutor
from repro.cluster.protocol import (
    ConnectionLostError,
    FrameChannel,
    FrameIntegrityError,
    FrameSequenceError,
    ProtocolError,
)
from repro.cluster.retry import RetryPolicy
from repro.core.errors import NodeLossError


def relay_pair(faults):
    """A driver/node FrameChannel pair whose wire runs through the proxy."""
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    proxy = ChaosProxy("127.0.0.1", server.getsockname()[1], faults=tuple(faults))
    proxy.start()
    client = socket.create_connection(("127.0.0.1", proxy.port), timeout=10.0)
    upstream, _ = server.accept()
    server.close()
    for sock in (client, upstream):
        sock.settimeout(10.0)
    return proxy, FrameChannel(upstream, "driver"), FrameChannel(client, "node")


def close_pair(proxy, driver, node):
    for sock in (driver.sock, node.sock):
        try:
            sock.close()
        except OSError:
            pass
    proxy.close()


def endpoints(direction, driver, node):
    """(sender, receiver) channels for frames flowing in ``direction``."""
    return (node, driver) if direction == TO_DRIVER else (driver, node)


@pytest.mark.parametrize("direction", [TO_DRIVER, TO_NODE])
class TestFaultMatrix:
    """Each fault action maps onto exactly one typed failure."""

    def test_corrupt_is_integrity_error(self, direction):
        proxy, driver, node = relay_pair([FrameFault(direction, 2, "corrupt")])
        try:
            sender, receiver = endpoints(direction, driver, node)
            for i in range(4):
                sender.send_message("m", {"i": i})
            assert receiver.recv_message() == ("m", {"i": 0}, b"")
            assert receiver.recv_message() == ("m", {"i": 1}, b"")
            with pytest.raises(FrameIntegrityError):
                receiver.recv_message()
            assert proxy.events == [(direction, 2, "corrupt")]
        finally:
            close_pair(proxy, driver, node)

    def test_drop_is_sequence_error(self, direction):
        proxy, driver, node = relay_pair([FrameFault(direction, 1, "drop")])
        try:
            sender, receiver = endpoints(direction, driver, node)
            for i in range(3):
                sender.send_message("m", {"i": i})
            assert receiver.recv_message() == ("m", {"i": 0}, b"")
            # The dropped frame's successor arrives with a skipped number.
            with pytest.raises(FrameSequenceError):
                receiver.recv_message()
            assert proxy.events == [(direction, 1, "drop")]
        finally:
            close_pair(proxy, driver, node)

    def test_duplicate_is_sequence_error(self, direction):
        proxy, driver, node = relay_pair([FrameFault(direction, 1, "duplicate")])
        try:
            sender, receiver = endpoints(direction, driver, node)
            for i in range(2):
                sender.send_message("m", {"i": i})
            assert receiver.recv_message() == ("m", {"i": 0}, b"")
            assert receiver.recv_message() == ("m", {"i": 1}, b"")
            # The second copy re-uses a consumed sequence number.
            with pytest.raises(FrameSequenceError):
                receiver.recv_message()
            assert proxy.events == [(direction, 1, "duplicate")]
        finally:
            close_pair(proxy, driver, node)

    def test_truncate_is_connection_lost(self, direction):
        proxy, driver, node = relay_pair([FrameFault(direction, 1, "truncate")])
        try:
            sender, receiver = endpoints(direction, driver, node)
            for i in range(2):
                sender.send_message("m", {"i": i, "pad": "x" * 64})
            assert receiver.recv_message()[1]["i"] == 0
            with pytest.raises(ConnectionLostError):
                receiver.recv_message()
            assert proxy.events == [(direction, 1, "truncate")]
        finally:
            close_pair(proxy, driver, node)

    def test_delay_below_timeout_is_harmless(self, direction):
        proxy, driver, node = relay_pair(
            [FrameFault(direction, 0, "delay", delay_seconds=0.3)]
        )
        try:
            sender, receiver = endpoints(direction, driver, node)
            started = time.monotonic()
            sender.send_message("m", {"i": 0})
            sender.send_message("m", {"i": 1})
            assert receiver.recv_message() == ("m", {"i": 0}, b"")
            assert receiver.recv_message() == ("m", {"i": 1}, b"")
            assert time.monotonic() - started >= 0.3
            assert proxy.events == [(direction, 0, "delay")]
        finally:
            close_pair(proxy, driver, node)


N_FRAMES = 6


class TestNoSilentDivergence:
    """Hypothesis-chosen fault placements never yield a wrong frame.

    Whatever single fault hits whatever frame offset, the receiver only
    ever accepts an exact prefix of the sent sequence — the fault always
    surfaces as a typed error (the one silent case is a drop of the very
    last frame, which shortens the prefix but corrupts nothing).
    """

    @given(
        action=st.sampled_from(["corrupt", "drop", "duplicate", "truncate"]),
        index=st.integers(min_value=0, max_value=N_FRAMES - 1),
        direction=st.sampled_from([TO_DRIVER, TO_NODE]),
    )
    @settings(max_examples=30, deadline=None)
    def test_receiver_sees_exact_prefix_then_typed_error(
        self, action, index, direction
    ):
        proxy, driver, node = relay_pair([FrameFault(direction, index, action)])
        try:
            sender, receiver = endpoints(direction, driver, node)
            sent = [("m", {"i": i}, b"payload-%d" % i) for i in range(N_FRAMES)]
            try:
                for message in sent:
                    sender.send_message(*message)
                sender.sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass  # a truncate fault hard-closes the link mid-send
            received, error = [], None
            try:
                while True:
                    message = receiver.recv_message()
                    if message is None:
                        break
                    received.append(message)
            except ProtocolError as exc:
                error = exc
            # The exact-prefix property: nothing wrong was ever accepted.
            assert received == sent[: len(received)]
            if error is None:
                # Only a dropped final frame can pass silently — the
                # stream simply ends one frame short, at a frame boundary.
                assert action == "drop" and index == N_FRAMES - 1
                assert len(received) == N_FRAMES - 1
            else:
                assert len(received) <= index + (1 if action == "duplicate" else 0)
            assert proxy.events == [(direction, index, action)]
        finally:
            close_pair(proxy, driver, node)


def make_box(shard_id, seed):
    return [seed]


def read_box(shard, _payload):
    return shard[0]


def bump_box(shard, _payload):
    return shard[0] + 1


def _start_external_node(port, heartbeat_interval=0.2):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.node",
            "--connect",
            f"127.0.0.1:{port}",
            "--heartbeat-interval",
            str(heartbeat_interval),
            "--retry-seconds",
            "10",
        ],
    )


class TestExecutorUnderChaos:
    """A real driver + node with the proxy in the middle."""

    def test_corrupt_command_degrades_through_supervision(self):
        # Frame 0 driver->node is the challenge, 1 the shard init, 2 the
        # first task — corrupt the task command.  The node fail-stops on
        # the integrity error, the driver sees the death and supervises:
        # with a single node and no re-admission window the action is a
        # total loss, surfaced as NodeLossError — never a wrong result.
        executor = ClusterExecutor(
            1,
            num_nodes=1,
            listen="127.0.0.1:0",
            spawn=False,
            heartbeat_interval=0.2,
            heartbeat_timeout=3.0,
            readmission_timeout=0.0,
        )
        node = proxy = None
        try:
            address = executor._ensure_listener()
            proxy = ChaosProxy(
                address[0], address[1], faults=(FrameFault(TO_NODE, 2, "corrupt"),)
            ).start()
            node = _start_external_node(proxy.port)
            executor.init_shards(make_box, {0: 41})
            with pytest.raises(NodeLossError) as info:
                executor.run_sharded_tasks([(0, read_box, None)])
            assert info.value.action == "lost"
            assert info.value.lost_shards == (0,)
            assert not executor.has_shards()
            (event,) = executor.drain_fault_events()
            assert event["event"] == "node_loss"
            assert proxy.events == [(TO_NODE, 2, "corrupt")]
        finally:
            executor.shutdown()
            if proxy is not None:
                proxy.close()
            if node is not None:
                node.kill()
                node.wait(timeout=10)

    def test_delay_below_heartbeat_timeout_changes_nothing(self):
        executor = ClusterExecutor(
            1,
            num_nodes=1,
            listen="127.0.0.1:0",
            spawn=False,
            heartbeat_interval=0.2,
            heartbeat_timeout=5.0,
        )
        node = proxy = None
        try:
            address = executor._ensure_listener()
            proxy = ChaosProxy(
                address[0],
                address[1],
                faults=(FrameFault(TO_NODE, 2, "delay", delay_seconds=0.4),),
            ).start()
            node = _start_external_node(proxy.port)
            executor.init_shards(make_box, {0: 41})
            (result,) = executor.run_sharded_tasks([(0, bump_box, None)])
            assert result.value == 42
            assert proxy.events == [(TO_NODE, 2, "delay")]
            assert executor.drain_fault_events() == []
        finally:
            executor.shutdown()
            if proxy is not None:
                proxy.close()
            if node is not None:
                node.kill()
                node.wait(timeout=10)


def test_fault_validation():
    with pytest.raises(ValueError, match="direction"):
        FrameFault("sideways", 0, "drop")
    with pytest.raises(ValueError, match="action"):
        FrameFault(TO_DRIVER, 0, "explode")
    assert set(FAULT_ACTIONS) == {"drop", "duplicate", "corrupt", "truncate", "delay"}
