"""Tests for RMSPE/MAPE and series summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.rmspe import mape, rmspe
from repro.stats.summary import scaling_efficiency, summarize


class TestRmspe:
    def test_identical_series_have_zero_error(self):
        assert rmspe([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # 10% relative error everywhere -> RMSPE and MAPE are 10%.
        assert rmspe([1.1, 2.2], [1.0, 2.0]) == pytest.approx(0.1)
        assert mape([1.1, 2.2], [1.0, 2.0]) == pytest.approx(0.1)

    def test_zero_reference_values_skipped(self):
        assert rmspe([1.0, 5.0], [0.0, 5.0]) == 0.0
        assert rmspe([0.0, 0.0], [0.0, 0.0]) == 0.0
        assert rmspe([1.0], [0.0]) == float("inf")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmspe([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mape([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_rmspe_nonnegative_and_zero_on_self(self, values):
        assert rmspe(values, values) == pytest.approx(0.0)


class TestSummary:
    def test_summarize_known_series(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(1.1180, rel=1e-3)

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_scaling_efficiency_linear_curve(self):
        workers = [1, 2, 4]
        throughputs = [100.0, 200.0, 400.0]
        assert scaling_efficiency(throughputs, workers) == pytest.approx([1.0, 1.0, 1.0])

    def test_scaling_efficiency_sublinear_curve(self):
        efficiencies = scaling_efficiency([100.0, 150.0], [1, 2])
        assert efficiencies[1] == pytest.approx(0.75)

    def test_scaling_efficiency_validation(self):
        with pytest.raises(ValueError):
            scaling_efficiency([1.0], [1, 2])
        assert scaling_efficiency([], []) == []
