"""Tests for the hand-coded MITSIM-style baseline simulator."""

import time

import pytest

from repro.baselines.mitsim import HandCodedTrafficSimulator
from repro.core.engine import SequentialEngine
from repro.simulations.traffic import (
    TrafficParameters,
    TrafficStatisticsCollector,
    build_traffic_world,
    compare_lane_statistics,
)


@pytest.fixture(scope="module")
def parameters():
    return TrafficParameters(segment_length=1500.0, num_lanes=4)


class TestBaselineBehaviour:
    def test_populate_matches_parameter_count(self, parameters):
        baseline = HandCodedTrafficSimulator(parameters, seed=1)
        baseline.populate()
        assert len(baseline.vehicles) == parameters.vehicles_total()

    def test_load_from_world_copies_state(self, parameters):
        world = build_traffic_world(parameters, seed=2)
        baseline = HandCodedTrafficSimulator(parameters, seed=2)
        baseline.load_from_world(world)
        assert len(baseline.vehicles) == world.agent_count()
        for record in baseline.vehicles:
            agent = world.get_agent(record.vehicle_id)
            assert record.x == agent.x
            assert record.lane == agent.lane
            assert record.speed == agent.speed

    def test_vehicles_stay_on_segment(self, parameters):
        baseline = HandCodedTrafficSimulator(parameters, seed=3)
        baseline.populate()
        baseline.run(20)
        for record in baseline.vehicles:
            assert 0.0 <= record.x < parameters.segment_length
            assert 0 <= record.lane < parameters.num_lanes
            assert 0.0 <= record.speed <= parameters.max_speed() + 1e-9

    def test_lane_changes_happen(self, parameters):
        baseline = HandCodedTrafficSimulator(parameters, seed=3)
        baseline.populate()
        baseline.run(20)
        assert sum(record.lane_changes for record in baseline.vehicles) > 0

    def test_deterministic(self, parameters):
        first = HandCodedTrafficSimulator(parameters, seed=5)
        first.populate()
        first.run(10)
        second = HandCodedTrafficSimulator(parameters, seed=5)
        second.populate()
        second.run(10)
        for a, b in zip(first.vehicles, second.vehicles):
            assert a.x == b.x and a.lane == b.lane and a.speed == b.speed


class TestBaselineVsAgentFramework:
    def test_statistics_close_to_agent_implementation(self, parameters):
        ticks = 40
        world = build_traffic_world(parameters, seed=17)
        agent_collector = TrafficStatisticsCollector(parameters)
        SequentialEngine(
            world, check_visibility=False,
            on_tick_end=lambda w, _s: agent_collector.observe(w.agents()),
        ).run(ticks)

        baseline = HandCodedTrafficSimulator(parameters, seed=17)
        baseline.load_from_world(build_traffic_world(parameters, seed=17))
        baseline_collector = TrafficStatisticsCollector(parameters)
        baseline.run(ticks, baseline_collector)

        comparison = compare_lane_statistics(baseline_collector, agent_collector)
        for metrics in comparison.values():
            # Velocity and density agree to within a few percent; change
            # frequency is noisier (small counts) but must stay bounded.
            assert metrics["average_velocity"] < 0.10
            assert metrics["average_density"] < 0.25
            assert metrics["change_frequency"] < 1.0

    def test_baseline_is_faster_than_generic_framework(self, parameters):
        ticks = 5
        world = build_traffic_world(parameters, seed=19)
        engine = SequentialEngine(world, index="kdtree", check_visibility=False)
        start = time.perf_counter()
        engine.run(ticks)
        framework_seconds = time.perf_counter() - start

        baseline = HandCodedTrafficSimulator(parameters, seed=19)
        baseline.populate()
        baseline_seconds = baseline.run(ticks)
        assert baseline_seconds < framework_seconds
