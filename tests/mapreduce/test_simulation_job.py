"""The Appendix A MapReduce jobs must agree with the sequential engine."""

import pytest

from repro.core.engine import SequentialEngine
from repro.core.errors import MapReduceError
from repro.mapreduce.simulation_job import (
    LocalEffectSimulationJob,
    NonLocalEffectSimulationJob,
)
from repro.spatial.partitioning import GridPartitioning, StripPartitioning

from tests.conftest import Boid, NonLocalBoid, SpawningAgent, make_boid_world


def run_sequential(agent_class, seed, ticks):
    world = make_boid_world(num_agents=40, seed=seed, agent_class=agent_class)
    SequentialEngine(world).run(ticks)
    return world


class TestLocalEffectJob:
    @pytest.mark.parametrize("num_strips", [1, 2, 4])
    def test_matches_sequential(self, num_strips):
        reference = run_sequential(Boid, seed=6, ticks=4)
        world = make_boid_world(num_agents=40, seed=6, agent_class=Boid)
        partitioning = StripPartitioning.uniform(world.bounds, 0, num_strips)
        job = LocalEffectSimulationJob(partitioning, seed=world.seed)
        finals = job.run(world.agents(), ticks=4)
        assert len(finals) == reference.agent_count()
        for agent in finals:
            assert agent.same_state_as(reference.get_agent(agent.agent_id), tolerance=1e-9)

    def test_grid_partitioning_also_works(self):
        reference = run_sequential(Boid, seed=2, ticks=3)
        world = make_boid_world(num_agents=40, seed=2, agent_class=Boid)
        partitioning = GridPartitioning(world.bounds, [2, 2])
        job = LocalEffectSimulationJob(partitioning, seed=world.seed)
        finals = job.run(world.agents(), ticks=3)
        for agent in finals:
            assert agent.same_state_as(reference.get_agent(agent.agent_id), tolerance=1e-9)

    def test_zero_ticks_returns_clones(self):
        world = make_boid_world(num_agents=5, seed=1)
        partitioning = StripPartitioning.uniform(world.bounds, 0, 2)
        job = LocalEffectSimulationJob(partitioning, seed=0)
        finals = job.run(world.agents(), ticks=0)
        assert len(finals) == 5
        assert all(
            final.same_state_as(world.get_agent(final.agent_id)) for final in finals
        )
        assert all(final is not world.get_agent(final.agent_id) for final in finals)

    def test_input_agents_not_mutated(self):
        world = make_boid_world(num_agents=10, seed=3)
        before = {agent.agent_id: agent.position() for agent in world.agents()}
        partitioning = StripPartitioning.uniform(world.bounds, 0, 2)
        LocalEffectSimulationJob(partitioning, seed=world.seed).run(world.agents(), ticks=3)
        for agent in world.agents():
            assert agent.position() == before[agent.agent_id]

    def test_dynamic_population_rejected(self):
        world = make_boid_world(num_agents=10, seed=3, agent_class=SpawningAgent, size=10.0)
        partitioning = StripPartitioning.uniform(world.bounds, 0, 2)
        job = LocalEffectSimulationJob(partitioning, seed=world.seed)
        with pytest.raises(MapReduceError):
            job.run(world.agents(), ticks=6)


class TestNonLocalEffectJob:
    @pytest.mark.parametrize("num_strips", [1, 3, 5])
    def test_matches_sequential(self, num_strips):
        reference = run_sequential(NonLocalBoid, seed=11, ticks=4)
        world = make_boid_world(num_agents=40, seed=11, agent_class=NonLocalBoid)
        partitioning = StripPartitioning.uniform(world.bounds, 0, num_strips)
        job = NonLocalEffectSimulationJob(partitioning, seed=world.seed)
        finals = job.run(world.agents(), ticks=4)
        assert len(finals) == reference.agent_count()
        for agent in finals:
            assert agent.same_state_as(reference.get_agent(agent.agent_id), tolerance=1e-9)

    def test_local_model_also_correct_under_two_pass_job(self):
        """A local-effects model must be unaffected by the extra reduce pass."""
        reference = run_sequential(Boid, seed=4, ticks=3)
        world = make_boid_world(num_agents=40, seed=4, agent_class=Boid)
        partitioning = StripPartitioning.uniform(world.bounds, 0, 3)
        job = NonLocalEffectSimulationJob(partitioning, seed=world.seed)
        finals = job.run(world.agents(), ticks=3)
        for agent in finals:
            assert agent.same_state_as(reference.get_agent(agent.agent_id), tolerance=1e-9)
