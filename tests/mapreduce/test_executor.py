"""Tests for the pluggable executor backends of the MapReduce engine.

The contract under test: a job produces *bit-identical* output and
equivalent statistics on every backend, per-task accounting is recorded, and
the process backend fails loudly (not mysteriously) on unpicklable tasks.
"""

import pytest

from repro.core.errors import ExecutorError, MapReduceError
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob, MapReduceReduceJob
from repro.mapreduce.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    stable_hash_partition,
)
from repro.mapreduce.simulation_job import LocalEffectSimulationJob
from repro.simulations.traffic.vehicle import Vehicle
from repro.simulations.traffic.workload import build_traffic_world
from repro.spatial.partitioning import StripPartitioning

BACKENDS = ["serial", "thread", "process"]


# Module-level map/reduce functions: picklable for the process backend.
def word_count_map(_key, line):
    return [(word, 1) for word in line.split()]


def word_count_reduce(word, counts):
    return [(word, sum(counts))]


WORD_COUNT_INPUT = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog jumps"),
    (3, "fox and dog and fox"),
]


@pytest.fixture(params=BACKENDS)
def engine(request):
    engine = MapReduceEngine(executor=make_executor(request.param, max_workers=2))
    yield engine
    engine.shutdown()


class TestExecutorBasics:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread", 2), ThreadExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)

    def test_make_executor_passthrough(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(MapReduceError):
            make_executor("quantum")

    def test_serial_executor_is_single_slot(self):
        assert SerialExecutor(max_workers=8).max_workers == 1

    def test_run_tasks_preserves_submission_order(self):
        with ThreadExecutor(max_workers=4) as executor:
            results = executor.run_tasks(
                [(lambda value=value: value * 10) for value in range(16)]
            )
        assert [result.value for result in results] == [value * 10 for value in range(16)]
        assert [result.index for result in results] == list(range(16))

    def test_task_timing_recorded(self):
        results = SerialExecutor().run_tasks([lambda: sum(range(1000))])
        assert results[0].wall_seconds >= 0.0


class TestStableHashPartition:
    def test_in_range_and_deterministic(self):
        keys = ["a", "b", 17, (3, "x"), None]
        for key in keys:
            bucket = stable_hash_partition(key, 4)
            assert 0 <= bucket < 4
            assert bucket == stable_hash_partition(key, 4)

    def test_single_partition(self):
        assert stable_hash_partition("anything", 1) == 0

    def test_spreads_keys(self):
        buckets = {stable_hash_partition(key, 8) for key in range(100)}
        assert len(buckets) > 1


class TestBackendEquivalence:
    def test_word_count_identical_across_backends(self, engine):
        output = engine.run(MapReduceJob(word_count_map, word_count_reduce), WORD_COUNT_INPUT)
        serial_engine = MapReduceEngine()
        expected = serial_engine.run(
            MapReduceJob(word_count_map, word_count_reduce), WORD_COUNT_INPUT
        )
        assert [pair.as_tuple() for pair in output] == [pair.as_tuple() for pair in expected]

    def test_statistics_equivalent_across_backends(self, engine):
        engine.run(MapReduceJob(word_count_map, word_count_reduce), WORD_COUNT_INPUT)
        statistics = engine.last_statistics
        assert statistics.map_input_pairs == 4
        assert statistics.map_output_pairs == 16
        assert statistics.shuffle.pairs == 16
        assert statistics.reduce_output_pairs == statistics.shuffle.distinct_keys

    def test_two_pass_job_identical_across_backends(self, engine):
        job = MapReduceReduceJob(
            word_count_map,
            word_count_reduce,
            word_count_reduce,
        )
        output = engine.run(job, WORD_COUNT_INPUT)
        expected = MapReduceEngine().run(job, WORD_COUNT_INPUT)
        assert [pair.as_tuple() for pair in output] == [pair.as_tuple() for pair in expected]


class TestCombiner:
    def test_combiner_cuts_shuffle_traffic_without_changing_output(self, engine):
        plain = MapReduceJob(word_count_map, word_count_reduce)
        combined = MapReduceJob(
            word_count_map, word_count_reduce, combiner_fn=word_count_reduce
        )
        expected = MapReduceEngine().run(plain, WORD_COUNT_INPUT)
        output = engine.run(combined, WORD_COUNT_INPUT)
        assert [pair.as_tuple() for pair in output] == [pair.as_tuple() for pair in expected]
        statistics = engine.last_statistics
        assert statistics.combined_pairs > 0
        # The shuffle moved only the combined pairs, not the raw emissions.
        assert statistics.shuffle.pairs == statistics.map_output_pairs - statistics.combined_pairs


class TestTaskAccounting:
    def test_map_and_reduce_tasks_recorded(self):
        with ThreadExecutor(max_workers=2) as executor:
            engine = MapReduceEngine(executor=executor)
            engine.run(MapReduceJob(word_count_map, word_count_reduce), WORD_COUNT_INPUT)
            statistics = engine.last_statistics
        assert statistics.executor == "thread"
        assert 1 <= statistics.map_task_count <= 4
        assert 1 <= statistics.reduce_partition_count <= 2
        assert sum(task.pairs_in for task in statistics.map_tasks) == 4
        assert all(task.wall_seconds >= 0.0 for task in statistics.map_tasks)
        assert sum(task.pairs_out for task in statistics.reduce_partitions) == (
            statistics.reduce_output_pairs
        )
        assert statistics.map_imbalance >= 1.0
        assert statistics.reduce_imbalance >= 1.0


class TestSimulationJobAcrossBackends:
    """The Appendix A formal jobs must agree bit-for-bit on every backend."""

    @staticmethod
    def _final_states(executor):
        world = build_traffic_world(seed=13, vehicle_class=Vehicle, num_vehicles=40)
        partitioning = StripPartitioning.uniform(world.bounds, 0, 4)
        job = LocalEffectSimulationJob(
            partitioning, seed=world.seed, check_visibility=False, executor=executor
        )
        try:
            agents = job.run(world.agents(), ticks=2)
        finally:
            job.shutdown()
        return [agent.state_dict() for agent in agents]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_match_serial_bit_for_bit(self, backend):
        serial = self._final_states("serial")
        other = self._final_states(make_executor(backend, max_workers=2))
        assert other == serial


# Module-level shard helpers: picklable for the process backend.
def make_counter_shard(shard_id, payload):
    return {"shard_id": shard_id, "total": payload}


def add_to_shard(state, amount):
    state["total"] += amount
    return (state["shard_id"], state["total"])


def shard_pid(_state, _payload):
    import os

    return os.getpid()


class TestShardedTasks:
    """The resident-shard contract: durable state, affinity, measured bytes."""

    @pytest.fixture(params=BACKENDS)
    def executor(self, request):
        executor = make_executor(request.param, max_workers=2)
        yield executor
        executor.shutdown()

    def test_state_persists_across_batches(self, executor):
        executor.init_shards(make_counter_shard, {0: 100, 1: 200, 2: 300})
        first = executor.run_sharded_tasks(
            [(0, add_to_shard, 1), (1, add_to_shard, 2), (2, add_to_shard, 3)]
        )
        assert [result.value for result in first] == [(0, 101), (1, 202), (2, 303)]
        second = executor.run_sharded_tasks(
            [(2, add_to_shard, 3), (0, add_to_shard, 1), (1, add_to_shard, 2)]
        )
        # State accumulated where the shard lives; results in submission order.
        assert [result.value for result in second] == [(2, 306), (0, 102), (1, 204)]
        assert all(result.wall_seconds >= 0.0 for result in second)

    def test_same_shard_tasks_run_in_submission_order(self, executor):
        executor.init_shards(make_counter_shard, {0: 0})
        results = executor.run_sharded_tasks([(0, add_to_shard, 1)] * 4)
        assert [result.value for result in results] == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_init_twice_rejected_and_teardown_allows_reinit(self, executor):
        executor.init_shards(make_counter_shard, {0: 0})
        with pytest.raises(ExecutorError, match="already initialized"):
            executor.init_shards(make_counter_shard, {0: 0})
        executor.teardown_shards()
        assert not executor.has_shards()
        executor.init_shards(make_counter_shard, {0: 7})
        result = executor.run_sharded_tasks([(0, add_to_shard, 1)])[0]
        assert result.value == (0, 8)

    def test_run_without_init_raises(self, executor):
        with pytest.raises(ExecutorError, match="init_shards"):
            executor.run_sharded_tasks([(0, add_to_shard, 1)])

    def test_unknown_shard_raises(self, executor):
        executor.init_shards(make_counter_shard, {0: 0})
        with pytest.raises(ExecutorError, match="unknown"):
            executor.run_sharded_tasks([(5, add_to_shard, 1)])

    def test_byte_accounting_matches_backend(self, executor):
        executor.init_shards(make_counter_shard, {0: 0, 1: 0})
        results = executor.run_sharded_tasks([(0, add_to_shard, 1), (1, add_to_shard, 2)])
        if executor.shares_memory:
            # Nothing was serialized: bytes must be exactly zero.
            assert all(r.payload_bytes == 0 and r.result_bytes == 0 for r in results)
        else:
            # Real pickled sizes in both directions.
            assert all(r.payload_bytes > 0 and r.result_bytes > 0 for r in results)


class TestProcessShardAffinity:
    def test_shards_are_pinned_to_host_processes(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.init_shards(make_counter_shard, {0: 0, 1: 0, 2: 0, 3: 0})
            first = executor.run_sharded_tasks([(s, shard_pid, None) for s in range(4)])
            second = executor.run_sharded_tasks([(s, shard_pid, None) for s in range(4)])
            pids_first = [result.value for result in first]
            pids_second = [result.value for result in second]
            # A shard never moves between processes...
            assert pids_first == pids_second
            # ...and with 2 hosts for 4 shards, exactly 2 processes are used.
            assert len(set(pids_first)) == 2
            # The driver-side affinity probe agrees with what actually ran.
            assert pids_first == [executor.shard_host_pid(s) for s in range(4)]

    def test_unpicklable_seed_payload_raises_executor_error(self):
        with ProcessExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorError, match="picklable"):
                executor.init_shards(make_counter_shard, {0: lambda: None})
            # The failed init tore everything down; a clean retry works.
            assert not executor.has_shards()
            executor.init_shards(make_counter_shard, {0: 5})
            assert executor.run_sharded_tasks([(0, add_to_shard, 1)])[0].value == (0, 6)

    def test_unpicklable_task_payload_raises_executor_error(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.init_shards(make_counter_shard, {0: 0})
            with pytest.raises(ExecutorError, match="picklable"):
                executor.run_sharded_tasks([(0, add_to_shard, lambda: None)])


class TestProcessExecutorErrorPath:
    def test_unpicklable_map_function_raises_executor_error(self):
        with ProcessExecutor(max_workers=2) as executor:
            engine = MapReduceEngine(executor=executor)
            job = MapReduceJob(lambda key, value: [(key, value)], word_count_reduce)
            with pytest.raises(ExecutorError, match="picklable"):
                engine.run(job, WORD_COUNT_INPUT)

    def test_executor_error_is_a_mapreduce_error(self):
        assert issubclass(ExecutorError, MapReduceError)
