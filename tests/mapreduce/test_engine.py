"""Tests for the generic in-memory MapReduce engine."""

import pytest

from repro.core.errors import MapReduceError
from repro.mapreduce.engine import (
    IterativeMapReduce,
    MapReduceEngine,
    MapReduceJob,
    MapReduceReduceJob,
)
from repro.mapreduce.types import KeyValue


def word_count_job():
    def map_fn(_key, line):
        for word in line.split():
            yield (word, 1)

    def reduce_fn(word, counts):
        yield (word, sum(counts))

    return MapReduceJob(map_fn, reduce_fn, name="word-count")


class TestKeyValue:
    def test_wrap_tuple(self):
        pair = KeyValue.wrap(("a", 1))
        assert pair.key == "a" and pair.value == 1
        assert pair.as_tuple() == ("a", 1)

    def test_wrap_passthrough(self):
        pair = KeyValue("a", 1)
        assert KeyValue.wrap(pair) is pair


class TestSinglePassJobs:
    def test_word_count(self):
        engine = MapReduceEngine()
        output = engine.run(word_count_job(), [(0, "a b a"), (1, "b c")])
        counts = {pair.key: pair.value for pair in output}
        assert counts == {"a": 2, "b": 2, "c": 1}

    def test_statistics_collected(self):
        engine = MapReduceEngine()
        engine.run(word_count_job(), [(0, "a b a"), (1, "b c")])
        statistics = engine.last_statistics
        assert statistics.map_input_pairs == 2
        assert statistics.map_output_pairs == 5
        assert statistics.shuffle.distinct_keys == 3
        assert statistics.reduce_output_pairs == 3

    def test_reduce_sees_all_values_for_a_key(self):
        seen = {}

        def map_fn(key, value):
            yield (value % 2, value)

        def reduce_fn(key, values):
            seen[key] = sorted(values)
            return []

        MapReduceEngine().run(MapReduceJob(map_fn, reduce_fn), [(i, i) for i in range(6)])
        assert seen == {0: [0, 2, 4], 1: [1, 3, 5]}

    def test_map_may_emit_nothing(self):
        job = MapReduceJob(lambda k, v: [], lambda k, values: [(k, values)])
        assert MapReduceEngine().run(job, [(1, "x")]) == []

    def test_unknown_job_type_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceEngine().run(object(), [])


class TestMapReduceReduce:
    def test_two_pass_aggregation(self):
        # First pass: partial sums per (partition, word); second: global sums.
        def map_fn(_key, line):
            for index, word in enumerate(line.split()):
                yield ((index % 2, word), 1)

        def reduce1_fn(key, counts):
            _partition, word = key
            yield (word, sum(counts))

        def reduce2_fn(word, partial_sums):
            yield (word, sum(partial_sums))

        job = MapReduceReduceJob(map_fn, reduce1_fn, reduce2_fn)
        output = MapReduceEngine().run(job, [(0, "a b a b"), (1, "a")])
        counts = {pair.key: pair.value for pair in output}
        assert counts == {"a": 3, "b": 2}

    def test_second_pass_statistics(self):
        job = MapReduceReduceJob(
            lambda k, v: [(k, v)],
            lambda k, values: [(k, sum(values))],
            lambda k, values: [(k, sum(values))],
        )
        engine = MapReduceEngine()
        engine.run(job, [(0, 1), (0, 2), (1, 3)])
        assert engine.last_statistics.second_reduce_output_pairs == 2


class TestIterativeMapReduce:
    def test_iteration_feeds_output_forward(self):
        # Each iteration increments every value by one.
        def job_factory(_iteration):
            return MapReduceJob(
                lambda k, v: [(k, v + 1)],
                lambda k, values: [(k, value) for value in values],
            )

        runner = IterativeMapReduce()
        output = runner.run(job_factory, [(0, 0), (1, 10)], iterations=5)
        values = {pair.key: pair.value for pair in output}
        assert values == {0: 5, 1: 15}
        assert len(runner.iteration_statistics) == 5

    def test_zero_iterations(self):
        runner = IterativeMapReduce()
        output = runner.run(lambda i: word_count_job(), [(0, "a")], iterations=0)
        assert [pair.as_tuple() for pair in output] == [(0, "a")]
