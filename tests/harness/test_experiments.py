"""Integration tests of the experiment harness.

Each driver is run at a tiny scale and the *shape* of the paper's result is
asserted: who wins, whether curves grow, whether the optimization helps.
Absolute numbers are not checked — that is EXPERIMENTS.md's job.
"""

import pytest

from repro.harness import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_table2,
)
from repro.harness.common import format_table, speedup


class TestCommonHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], [10, 3000.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0


class TestTable2:
    def test_rmspe_values_are_small(self):
        result = run_table2(segment_length=1200.0, ticks=30, seed=17)
        rows = result.rows()
        assert len(rows) == 4
        for row in rows:
            # Velocities agree closely; densities are noisier at this tiny
            # scale (the paper's lane 4 shows the same effect) but bounded.
            assert row["average_velocity_rmspe"] < 10.0
            assert row["average_density_rmspe"] < 50.0
        assert "Table 2" in result.format_table()


class TestSingleNodeFigures:
    def test_figure3_shape(self):
        result = run_figure3(segment_lengths=(400.0, 800.0, 1600.0), ticks=4, seed=11)
        rows = result.rows()
        assert len(rows) == 3
        # The hand-coded baseline is the fastest; the un-indexed engine is the
        # slowest at the largest problem size and grows faster than indexed.
        largest = rows[-1]
        assert largest["mitsim_seconds"] < largest["brace_index_seconds"]
        assert largest["brace_no_index_seconds"] > largest["brace_index_seconds"]
        no_index_growth = rows[-1]["brace_no_index_seconds"] / rows[0]["brace_no_index_seconds"]
        index_growth = rows[-1]["brace_index_seconds"] / rows[0]["brace_index_seconds"]
        assert no_index_growth > index_growth
        assert "Figure 3" in result.format_table()

    def test_figure4_shape(self):
        result = run_figure4(visibility_ranges=(3.0, 12.0), num_fish=250, ticks=3, seed=5)
        rows = result.rows()
        assert len(rows) == 2
        for row in rows:
            assert row["brace_index_seconds"] < row["brace_no_index_seconds"]
        # The indexing advantage shrinks as the visibility range grows.
        small = rows[0]["brace_no_index_seconds"] / rows[0]["brace_index_seconds"]
        large = rows[-1]["brace_no_index_seconds"] / rows[-1]["brace_index_seconds"]
        assert large < small
        assert "Figure 4" in result.format_table()


class TestDistributedFigures:
    def test_figure5_inversion_and_indexing_help(self):
        result = run_figure5(num_fish=300, workers=16, ticks=3, seed=23)
        throughputs = result.throughputs
        assert set(throughputs) == set(result.CONFIGURATIONS)
        assert throughputs["Idx-Only"] > throughputs["No-Opt"]
        assert throughputs["Inv-Only"] > throughputs["No-Opt"]
        assert throughputs["Idx+Inv"] > throughputs["Idx-Only"]
        assert result.improvement_from_inversion(with_index=True) > 0.05
        assert result.improvement_from_inversion(with_index=False) > 0.0
        assert "Figure 5" in result.format_table()

    def test_figure6_throughput_grows_with_workers(self):
        result = run_figure6(worker_counts=(1, 4, 8, 16), vehicles_per_worker=50, ticks=2, seed=31)
        throughputs = result.throughputs
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
        # Scale-up stays reasonably efficient once communication appears.
        efficiencies = [row["scaleup_efficiency"] for row in result.rows()]
        assert efficiencies[-1] > 0.4
        assert "Figure 6" in result.format_table()

    def test_figure7_load_balancing_wins_at_scale(self):
        result = run_figure7(
            worker_counts=(2, 8, 16), fish_per_worker=30, ticks=4, ticks_per_epoch=2, seed=41
        )
        rows = result.rows()
        assert rows[-1]["throughput_lb"] > rows[-1]["throughput_no_lb"]
        assert rows[-1]["throughput_lb"] > rows[0]["throughput_lb"]
        assert "Figure 7" in result.format_table()

    def test_figure8_lb_epochs_cheaper_after_rebalance(self):
        result = run_figure8(workers=8, num_fish=300, epochs=4, ticks_per_epoch=2, seed=47)
        rows = result.rows()
        assert len(rows) == 4
        # After the initial rebalancing epoch, the balanced run is cheaper.
        later_lb = [row["seconds_lb"] for row in rows[1:]]
        later_no_lb = [row["seconds_no_lb"] for row in rows[1:]]
        assert sum(later_lb) < sum(later_no_lb)
        assert "Figure 8" in result.format_table()
