"""Replica delta shipping: ship only what the destination doesn't hold.

In delta mode (``distribute(replica_deltas=True)``) every destination
retains last tick's replicas and the source ships a
:class:`~repro.ipc.frames.ReplicaDelta` naming only new, changed, or
removed rows.  "Changed" is decided by *object identity* of the state
values against what was last sent — exact by construction, never by
``==`` (which would conflate NaNs and signed zeros).  These tests pin the
protocol's invariants; the end-to-end equivalence suites prove the whole
runtime stays bit-identical across modes.
"""

import math

from repro.brace.shards import (
    _lazy_agent_map,
    _pack_agent_chunks,
    _pack_agent_map,
    _unpack_agent_chunks,
)
from repro.brace.worker import Worker
from repro.ipc.frames import LazyAgentFrame, ReplicaDelta
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import StripPartitioning

from tests.conftest import Boid


def make_worker(worker_id=0, partitions=2, width=60.0):
    partitioning = StripPartitioning.uniform(
        BBox(((0.0, width), (0.0, width))), 0, partitions
    )
    return Worker(worker_id, partitioning.partition(worker_id)), partitioning


def distribute(worker, partitioning):
    return worker.distribute(partitioning, replica_deltas=True)


class TestDeltaDistribute:
    def test_first_tick_ships_everything(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))  # visible across 30.0
        result = distribute(worker, partitioning)
        delta = result.replicas_out[1]
        assert isinstance(delta, ReplicaDelta)
        assert [a.agent_id for a in delta.additions] == [1]
        assert delta.removed_ids == []

    def test_unchanged_agent_ships_nothing(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))
        distribute(worker, partitioning)
        result = distribute(worker, partitioning)
        assert result.replicas_out == {}

    def test_changed_field_triggers_resend(self):
        worker, partitioning = make_worker()
        agent = Boid(agent_id=1, x=29.0, y=5.0)
        worker.add_owned(agent)
        distribute(worker, partitioning)
        agent._state["vx"] = 3.5  # new object -> identity check must fire
        result = distribute(worker, partitioning)
        delta = result.replicas_out[1]
        assert [a.agent_id for a in delta.additions] == [1]
        assert delta.additions[0]._state["vx"] == 3.5

    def test_identity_not_equality_decides_changed(self):
        # A rewritten-but-equal NaN is a *different object*: delta mode must
        # resend it rather than trust `==` (NaN != NaN would resend forever,
        # while `==` on 0.0/-0.0 would wrongly skip a sign flip).
        worker, partitioning = make_worker()
        agent = Boid(agent_id=1, x=29.0, y=5.0)
        agent._state["vx"] = math.nan
        worker.add_owned(agent)
        distribute(worker, partitioning)
        assert distribute(worker, partitioning).replicas_out == {}  # same object
        agent._state["vx"] = float("nan")  # equal-looking, distinct object
        result = distribute(worker, partitioning)
        assert 1 in result.replicas_out

    def test_leaving_visibility_emits_removal(self):
        worker, partitioning = make_worker()
        agent = Boid(agent_id=1, x=29.0, y=5.0)
        worker.add_owned(agent)
        distribute(worker, partitioning)
        agent._state["x"] = 5.0  # out of partition 1's visible region
        result = distribute(worker, partitioning)
        delta = result.replicas_out[1]
        assert delta.additions == []
        assert delta.removed_ids == [1]
        assert distribute(worker, partitioning).replicas_out == {}

    def test_migrated_away_agent_emits_removal(self):
        worker, partitioning = make_worker(partitions=3, width=90.0)
        agent = Boid(agent_id=1, x=29.0, y=5.0)
        worker.add_owned(agent)
        distribute(worker, partitioning)
        worker.remove_owned(1)  # owner changed; this shard no longer ships it
        result = distribute(worker, partitioning)
        assert result.replicas_out[1].removed_ids == [1]

    def test_self_destined_replicas_install_and_discard_locally(self):
        # An owned agent that migrates out but stays visible here becomes a
        # local replica; when it later leaves visibility the removal applies
        # directly instead of riding the wire.
        worker, partitioning = make_worker()
        agent = Boid(agent_id=1, x=31.0, y=5.0)  # owned by 1, visible in 0
        worker.add_owned(agent)
        result = distribute(worker, partitioning)
        assert result.agents_migrated == 1
        assert [a.agent_id for a in worker.replica_agents()] == [1]
        assert 0 not in result.replicas_out
        # The migrated copy now lives on worker 1; locally nothing remains,
        # so the retained self-replica must be discarded on the next pass.
        result = distribute(worker, partitioning)
        assert worker.replica_agents() == []

    def test_accounting_identical_to_full_mode(self):
        def populate(worker):
            for i in range(6):
                worker.add_owned(Boid(agent_id=i, x=24.0 + i, y=5.0))

        full_worker, partitioning = make_worker()
        populate(full_worker)
        full = full_worker.distribute(partitioning, replica_deltas=False)

        delta_worker, _ = make_worker()
        populate(delta_worker)
        distribute(delta_worker, partitioning)  # warm the send cache
        steady = distribute(delta_worker, partitioning)

        # Modeled costs charge every logical replica even when nothing ships.
        assert steady.replicas_created == full.replicas_created > 0
        assert steady.replication_pair_bytes == full.replication_pair_bytes
        assert steady.replicas_out == {}

    def test_clear_replicas_forces_full_resend(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))
        distribute(worker, partitioning)
        worker.clear_replicas()  # what adopt_partitioning does on rebalance
        result = distribute(worker, partitioning)
        assert [a.agent_id for a in result.replicas_out[1].additions] == [1]

    def test_adopt_partitioning_drops_send_history(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))
        distribute(worker, partitioning)
        assert worker._replica_sent
        worker.adopt_partitioning(partitioning, partitioning.partition(0))
        assert worker._replica_sent == {}


class TestDeltaWireFormat:
    def test_agent_map_roundtrips_deltas_lazily(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))
        result = distribute(worker, partitioning)
        decoded = _lazy_agent_map(_pack_agent_map(result.replicas_out))
        delta = decoded[1]
        assert isinstance(delta, ReplicaDelta)
        assert isinstance(delta.additions, LazyAgentFrame)
        assert [a.agent_id for a in delta.additions.unpack()] == [1]
        assert delta.removed_ids == []

    def test_agent_chunks_roundtrip_delta_lists(self):
        worker, partitioning = make_worker()
        agent = Boid(agent_id=1, x=29.0, y=5.0)
        worker.add_owned(agent)
        shipped = distribute(worker, partitioning).replicas_out[1]
        agent._state["x"] = 5.0
        removal = distribute(worker, partitioning).replicas_out[1]
        chunks = [shipped, removal]
        decoded = _unpack_agent_chunks(_pack_agent_chunks(chunks))
        assert [a.agent_id for a in decoded[0].additions.unpack()] == [1]
        assert decoded[0].removed_ids == []
        assert decoded[1].additions.unpack() == []
        assert decoded[1].removed_ids == [1]

    def test_routed_frames_reemit_without_unpacking(self):
        worker, partitioning = make_worker()
        worker.add_owned(Boid(agent_id=1, x=29.0, y=5.0))
        result = distribute(worker, partitioning)
        lazy = _lazy_agent_map(_pack_agent_map(result.replicas_out))
        packed_frame = lazy[1].additions.frame
        kind, entries = _pack_agent_chunks([lazy[1]])
        assert kind == "deltas"
        assert entries[0][0] is packed_frame  # same object, never re-encoded
