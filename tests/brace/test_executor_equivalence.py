"""Equivalence of the BRACE runtime across executor backends.

The executor only changes *where* the worker phases run, never *what* they
compute: a thread- or process-backed run must produce bit-identical agent
states and identical work statistics to a serial run on the same world.
"""

import pytest

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.errors import BraceError, ExecutorError
from repro.simulations.predator.workload import build_predator_world
from repro.simulations.traffic.workload import build_traffic_world

TICKS = 3


def run_traffic(
    executor,
    max_workers=2,
    num_workers=4,
    resident_shards=None,
    ipc_backend=None,
):
    world = build_traffic_world(seed=11, num_vehicles=80)
    config = BraceConfig(
        num_workers=num_workers,
        ticks_per_epoch=TICKS,
        check_visibility=False,
        executor=executor,
        max_workers=max_workers,
        resident_shards=resident_shards,
        ipc_backend=ipc_backend,
    )
    with BraceRuntime(world, config) as runtime:
        runtime.run(TICKS)
        return world, runtime.metrics


#: Tick-statistics fields that must match exactly across backends
#: (everything except wall-clock timings, which necessarily differ).
DETERMINISTIC_TICK_FIELDS = (
    "tick",
    "num_agents",
    "bytes_replicated",
    "bytes_effects",
    "bytes_migrated",
    "replicas_created",
    "agents_migrated",
    "max_worker_agents",
    "min_worker_agents",
    "num_passes",
    "spawned",
    "killed",
    "virtual_seconds",
)


class TestTrafficEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_states_bit_identical_to_serial(self, backend):
        serial_world, _ = run_traffic("serial")
        other_world, _ = run_traffic(backend)
        assert serial_world.same_state_as(other_world, tolerance=0.0)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_statistics_identical_to_serial(self, backend):
        _, serial_metrics = run_traffic("serial")
        _, other_metrics = run_traffic(backend)
        assert len(serial_metrics.ticks) == len(other_metrics.ticks) == TICKS
        for serial_tick, other_tick in zip(serial_metrics.ticks, other_metrics.ticks):
            for field in DETERMINISTIC_TICK_FIELDS:
                assert getattr(serial_tick, field) == getattr(other_tick, field), field

    def test_per_worker_wall_clock_recorded(self):
        _, metrics = run_traffic("thread")
        for tick in metrics.ticks:
            assert tick.executor == "thread"
            assert len(tick.query_seconds_per_worker) == 4
            assert len(tick.update_seconds_per_worker) == 4
            assert all(seconds >= 0.0 for seconds in tick.query_seconds_per_worker)
            assert tick.query_wall_imbalance >= 1.0
        assert metrics.mean_query_wall_imbalance() >= 1.0


class TestResidentShardEquivalence:
    """The resident-shard delta protocol must be invisible to results.

    The process backend defaults to resident shards; forcing the protocol
    onto the serial backend exercises every round without pool overhead, and
    disabling it on the process backend keeps the legacy ship-everything
    path alive as a second oracle.
    """

    def test_process_backend_defaults_to_resident(self):
        _, metrics = run_traffic("process")
        assert all(tick.resident for tick in metrics.ticks)

    def test_legacy_process_path_still_available_and_identical(self):
        serial_world, _ = run_traffic("serial")
        legacy_world, legacy_metrics = run_traffic("process", resident_shards=False)
        assert not any(tick.resident for tick in legacy_metrics.ticks)
        assert serial_world.same_state_as(legacy_world, tolerance=0.0)

    def test_forced_resident_serial_matches_in_place_serial(self):
        in_place_world, in_place_metrics = run_traffic("serial")
        resident_world, resident_metrics = run_traffic("serial", resident_shards=True)
        assert all(tick.resident for tick in resident_metrics.ticks)
        assert in_place_world.same_state_as(resident_world, tolerance=0.0)
        for in_place_tick, resident_tick in zip(in_place_metrics.ticks, resident_metrics.ticks):
            for field in DETERMINISTIC_TICK_FIELDS:
                assert getattr(in_place_tick, field) == getattr(resident_tick, field), field

    def test_ipc_bytes_measured_only_across_process_boundaries(self):
        _, serial_metrics = run_traffic("serial", resident_shards=True)
        _, process_metrics = run_traffic("process")
        # Memory-sharing residency ships nothing; the process backend reports
        # real pickled bytes in both directions every tick.
        assert serial_metrics.total_ipc_bytes() == 0
        assert all(tick.ipc_bytes_sent > 0 for tick in process_metrics.ticks)
        assert all(tick.ipc_bytes_received > 0 for tick in process_metrics.ticks)
        assert process_metrics.total_ipc_bytes() > 0


class TestIpcBackendEquivalence:
    """The wire format must be invisible to results.

    The columnar delta frames replace pickled protocol objects on the
    resident path; forcing either backend must leave agent states and every
    deterministic statistic bit-identical.  Forcing ``"columnar"`` on the
    serial backend round-trips every round's payload and result through the
    frame codec in process — full wire-format conformance without pools.
    """

    def test_process_resident_defaults_to_columnar(self):
        world = build_traffic_world(seed=11, num_vehicles=80)
        config = BraceConfig(
            num_workers=4,
            ticks_per_epoch=TICKS,
            check_visibility=False,
            executor="process",
            max_workers=2,
        )
        with BraceRuntime(world, config) as runtime:
            assert runtime.ipc_backend == "columnar"

    def test_memory_sharing_backends_default_to_pickle(self):
        world = build_traffic_world(seed=11, num_vehicles=80)
        config = BraceConfig(
            num_workers=4, ticks_per_epoch=TICKS, resident_shards=True
        )
        with BraceRuntime(world, config) as runtime:
            assert runtime.ipc_backend == "pickle"

    @pytest.mark.parametrize("ipc_backend", ["pickle", "columnar"])
    def test_forced_backend_states_identical_to_serial(self, ipc_backend):
        serial_world, _ = run_traffic("serial")
        forced_world, _ = run_traffic("process", ipc_backend=ipc_backend)
        assert serial_world.same_state_as(forced_world, tolerance=0.0)

    @pytest.mark.parametrize("ipc_backend", ["pickle", "columnar"])
    def test_forced_backend_statistics_identical_to_serial(self, ipc_backend):
        _, serial_metrics = run_traffic("serial")
        _, forced_metrics = run_traffic("process", ipc_backend=ipc_backend)
        assert len(forced_metrics.ticks) == TICKS
        for serial_tick, forced_tick in zip(serial_metrics.ticks, forced_metrics.ticks):
            for field in DETERMINISTIC_TICK_FIELDS:
                assert getattr(serial_tick, field) == getattr(forced_tick, field), field

    def test_forced_columnar_serial_roundtrips_codec_in_process(self):
        in_place_world, _ = run_traffic("serial")
        codec_world, codec_metrics = run_traffic(
            "serial", resident_shards=True, ipc_backend="columnar"
        )
        assert in_place_world.same_state_as(codec_world, tolerance=0.0)
        # The in-process round trip measures real encoded frame bytes even
        # though nothing crosses a process boundary.
        assert all(tick.ipc_bytes_sent > 0 for tick in codec_metrics.ticks)
        assert all(tick.ipc_bytes_received > 0 for tick in codec_metrics.ticks)

    def test_columnar_handles_births_deaths_and_second_reduce(self):
        # Forced columnar + forced residency on the serial backend pushes
        # spawn/kill round-trips and routed second-reduce partials through
        # the frame codec, on agent classes that need the escape paths.
        def run(ipc_backend):
            world = build_predator_world(50, seed=5)
            config = BraceConfig(
                num_workers=2,
                ticks_per_epoch=4,
                non_local_effects=True,
                resident_shards=True,
                ipc_backend=ipc_backend,
            )
            with BraceRuntime(world, config) as runtime:
                runtime.run(4)
            return world

        pickle_world = run("pickle")
        columnar_world = run("columnar")
        assert pickle_world.agent_count() == columnar_world.agent_count()
        assert pickle_world.same_state_as(columnar_world, tolerance=0.0)


class TestDynamicPopulationEquivalence:
    def test_thread_backend_handles_births_and_deaths(self):
        def run(executor):
            world = build_predator_world(50, seed=5)
            config = BraceConfig(
                num_workers=2,
                ticks_per_epoch=4,
                non_local_effects=True,
                executor=executor,
                max_workers=2,
            )
            with BraceRuntime(world, config) as runtime:
                runtime.run(4)
            return world

        serial_world = run("serial")
        thread_world = run("thread")
        assert serial_world.agent_count() == thread_world.agent_count()
        assert serial_world.same_state_as(thread_world, tolerance=0.0)

    def test_resident_protocol_handles_births_deaths_and_second_reduce(self):
        # Forced residency on the serial backend runs the full delta protocol
        # (boundary deltas, partial routing, spawn/kill round-trips) without
        # requiring picklable agent classes.
        def run(resident):
            world = build_predator_world(50, seed=5)
            config = BraceConfig(
                num_workers=2,
                ticks_per_epoch=4,
                non_local_effects=True,
                resident_shards=resident,
            )
            with BraceRuntime(world, config) as runtime:
                runtime.run(4)
            return world

        in_place_world = run(False)
        resident_world = run(True)
        assert in_place_world.agent_count() == resident_world.agent_count()
        assert in_place_world.same_state_as(resident_world, tolerance=0.0)


class TestProcessBackendErrorPath:
    def test_dynamic_agent_class_raises_executor_error(self):
        # The predator classes are built dynamically (not importable by
        # name), so the process backend must refuse them with a clear error
        # instead of a bare pickling traceback.
        world = build_predator_world(20, seed=5)
        config = BraceConfig(
            num_workers=2,
            ticks_per_epoch=2,
            non_local_effects=True,
            executor="process",
            max_workers=2,
        )
        with BraceRuntime(world, config) as runtime:
            with pytest.raises(ExecutorError, match="picklable"):
                runtime.run_tick()


class TestConfigValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(BraceError):
            BraceConfig(executor="gpu").validate()

    def test_bad_max_workers_rejected(self):
        with pytest.raises(BraceError):
            BraceConfig(max_workers=0).validate()
