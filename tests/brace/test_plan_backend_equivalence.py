"""Bit-identical world states across plan backends.

The plan kernels (:mod:`repro.brasil.kernels`) are an *execution* strategy,
never a semantic one: ``plan_backend="interpreted"`` and ``"compiled"`` must
produce exactly the same agent states — on every executor, under both
spatial backends, with resident shards on and off, for both the fish-school
and ring-traffic BRASIL workloads, through dynamic populations and across a
pause/resume boundary.  This is the conformance matrix backing the
``plan_backend`` knob's "only trades speed" promise.
"""

import pytest

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.brasil import compile_script, run_script
from repro.core.agent import Agent
from repro.core.errors import BraceError
from repro.core.fields import StateField
from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT
from repro.simulations.traffic.brasil_scripts import TRAFFIC_SCRIPT

TICKS = 4
NUM_AGENTS = 100
SCRIPTS = {"fish": FISH_SCHOOL_SCRIPT, "traffic": TRAFFIC_SCRIPT}

SPATIAL_BACKENDS = ("python", "vectorized")
PLAN_BACKENDS = ("interpreted", "compiled")
RESIDENCY = (False, True)


def run_cell(workload, executor, spatial, plan, resident):
    config = BraceConfig(
        num_workers=3,
        executor=executor,
        spatial_backend=spatial,
        plan_backend=plan,
        resident_shards=resident,
        ticks_per_epoch=2,
    )
    result = run_script(
        SCRIPTS[workload], config, num_agents=NUM_AGENTS, ticks=TICKS, seed=5
    )
    return result.final_states()


@pytest.fixture(scope="module")
def baseline():
    # The reference cell every other combination must reproduce exactly.
    return {
        workload: run_cell(workload, "serial", "python", "interpreted", False)
        for workload in SCRIPTS
    }


class TestPlanBackendMatrix:
    @pytest.mark.parametrize("workload", sorted(SCRIPTS))
    @pytest.mark.parametrize("spatial", SPATIAL_BACKENDS)
    @pytest.mark.parametrize("plan", PLAN_BACKENDS)
    @pytest.mark.parametrize("resident", RESIDENCY)
    def test_serial_matrix_bit_identical(self, baseline, workload, spatial, plan, resident):
        states = run_cell(workload, "serial", spatial, plan, resident)
        assert states == baseline[workload]

    @pytest.mark.parametrize("workload", sorted(SCRIPTS))
    def test_process_compiled_matches_serial_interpreted(self, baseline, workload):
        states = run_cell(workload, "process", "vectorized", "compiled", True)
        assert states == baseline[workload]

    @pytest.mark.slow
    @pytest.mark.parametrize("workload", sorted(SCRIPTS))
    @pytest.mark.parametrize("spatial", SPATIAL_BACKENDS)
    @pytest.mark.parametrize("plan", PLAN_BACKENDS)
    @pytest.mark.parametrize("resident", RESIDENCY)
    def test_process_matrix_bit_identical(self, baseline, workload, spatial, plan, resident):
        states = run_cell(workload, "process", spatial, plan, resident)
        assert states == baseline[workload]

    @pytest.mark.parametrize("workload", sorted(SCRIPTS))
    def test_auto_matches_forced_backends(self, baseline, workload):
        # plan_backend=None attempts kernels wherever they exist, so for
        # these fully-compilable scripts it must equal both forced choices.
        states = run_cell(workload, "serial", "vectorized", None, False)
        assert states == baseline[workload]

    def test_workloads_actually_compile(self):
        # Non-vacuity: both matrix workloads exercise real kernels.
        for workload, source in SCRIPTS.items():
            selection = compile_script(source).plan_selection
            assert selection.query_compiled, workload
            assert selection.update_compiled, workload


# ---------------------------------------------------------------------------
# Dynamic populations: births and deaths while kernels execute
# ---------------------------------------------------------------------------

_CRITTER_SCRIPT = """
class Critter {
    public state float x : (x + min(max(w, 0 - 0.5), 0.5)); #visibility[2];
    public state float y : (y - min(max(w, 0 - 0.5), 0.5)); #visibility[2];
    public state float w : (cnt > 0) ? (w + acc / cnt) * 0.5 : w;
    private effect float acc : sum;
    private effect int cnt : count;
    public void run() {
        foreach (Critter p : Extent<Critter>) {
            acc <- (x - p.x) + (y - p.y);
            cnt <- 1;
        }
    }
}
"""

_CRITTER = compile_script(_CRITTER_SCRIPT)


class Drone(Agent):
    """Hand-written spawner: births compiled Critters, then dies.

    Lives alongside the compiled class so the update phase runs its kernel
    over a population that grows and shrinks mid-run.
    """

    x = StateField(default=0.0, spatial=True, visibility=2.0)
    y = StateField(default=0.0, spatial=True, visibility=2.0)
    age = StateField(default=0.0)

    def query(self, ctx) -> None:
        pass

    def update(self, ctx) -> None:
        self.age = self.age + 1.0
        if self.age <= 3.0:
            child = _CRITTER.make_agent(
                x=self.x + 0.25 * self.age, y=self.y - 0.25 * self.age, w=0.125
            )
            ctx.spawn(self, child)
        if self.age >= 4.0:
            ctx.kill(self)


def _run_dynamic(plan_backend):
    from repro.brace.runtime import BraceRuntime
    from repro.core.world import World
    from repro.spatial.bbox import BBox

    world = World(bounds=BBox(((-20.0, 20.0), (-20.0, 20.0))), seed=3)
    for i in range(24):
        world.add_agent(_CRITTER.make_agent(x=float(i) - 12.0, y=float(i % 5) - 2.0))
    for i in range(4):
        world.add_agent(Drone(x=4.0 * i - 8.0, y=2.0 * i - 3.0))
    config = BraceConfig(num_workers=3, plan_backend=plan_backend, ticks_per_epoch=2)
    with BraceRuntime(world, config) as runtime:
        runtime.run(6)
    states = {agent.agent_id: agent.state_dict() for agent in world.agents()}
    return states, world.agent_count()


class TestDynamicPopulation:
    def test_births_and_deaths_bit_identical(self):
        interpreted, interp_count = _run_dynamic("interpreted")
        compiled, compiled_count = _run_dynamic("compiled")
        assert compiled == interpreted
        assert compiled_count == interp_count
        # Non-vacuity: the population actually changed (drones died after
        # spawning three critters each).
        assert interp_count == 24 + 4 * 3


# ---------------------------------------------------------------------------
# Pause/resume boundary
# ---------------------------------------------------------------------------


class TestPauseResumeBoundary:
    def test_compiled_run_survives_pause_resume(self):
        def split_run(plan_backend):
            session = Simulation.from_script(
                FISH_SCHOOL_SCRIPT, num_agents=80, seed=9
            ).with_workers(3).with_plan_backend(plan_backend)
            with session:
                session.run(2)
                session.pause()
                session.resume()
                result = session.run(2)
            return result.final_states

        straight = Simulation.from_script(
            FISH_SCHOOL_SCRIPT, num_agents=80, seed=9
        ).with_workers(3).with_plan_backend("interpreted")
        with straight:
            reference = straight.run(TICKS).final_states

        assert split_run("compiled") == reference
        assert split_run("interpreted") == reference


# ---------------------------------------------------------------------------
# Configuration surface and provenance
# ---------------------------------------------------------------------------


class TestConfigSurface:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(BraceError, match="plan backend"):
            BraceConfig(plan_backend="jit").validate()

    def test_builder_rejects_unknown_backend(self):
        session = Simulation.from_script(FISH_SCHOOL_SCRIPT, num_agents=10, seed=1)
        with pytest.raises(BraceError, match="plan backend"):
            session.with_plan_backend("jit")

    def test_builder_accepts_and_round_trips_backend(self):
        session = Simulation.from_script(
            FISH_SCHOOL_SCRIPT, num_agents=10, seed=1
        ).with_plan_backend("compiled")
        assert session._builder.build().plan_backend == "compiled"

    def test_provenance_records_resolved_backend(self):
        with Simulation.from_script(FISH_SCHOOL_SCRIPT, num_agents=20, seed=2) as sim:
            result = sim.run(2)
        # Automatic selection resolved to "compiled" for a fully-compilable
        # script, and the provenance pins the resolved choice (PR 6 style).
        assert result.provenance.config.plan_backend == "compiled"
