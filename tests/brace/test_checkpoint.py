"""Tests for coordinated checkpointing and recovery by re-execution."""

import pytest

from repro.brace.checkpoint import CheckpointManager, FailureInjector
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.engine import SequentialEngine
from repro.core.errors import BraceError, CheckpointError

from tests.conftest import Boid, make_boid_world


class TestCheckpointManager:
    def test_take_and_restore(self):
        world = make_boid_world(num_agents=10, seed=1)
        manager = CheckpointManager()
        manager.take(world, epoch=1, size_bytes=100)
        original = world.copy()
        SequentialEngine(world).run(3)
        assert not world.same_state_as(original)
        manager.restore_latest(world)
        assert world.same_state_as(original)
        assert world.tick == original.tick

    def test_latest_without_checkpoint_raises(self):
        manager = CheckpointManager()
        assert not manager.has_checkpoint()
        with pytest.raises(CheckpointError):
            manager.latest()

    def test_keep_last_evicts_older_checkpoints(self):
        world = make_boid_world(num_agents=5, seed=1)
        manager = CheckpointManager(keep_last=2)
        for epoch in range(5):
            world.tick = epoch
            manager.take(world, epoch=epoch, size_bytes=10)
        assert manager.total_checkpoints == 5
        assert manager.latest().epoch == 4

    def test_invalid_keep_last(self):
        with pytest.raises(CheckpointError):
            CheckpointManager(keep_last=0)


class TestFailureInjector:
    def test_zero_probability_never_fails(self):
        injector = FailureInjector(0.0, seed=1)
        assert not any(injector.should_fail() for _ in range(100))

    def test_deterministic_given_seed(self):
        first = [FailureInjector(0.3, seed=5).should_fail() for _ in range(1)]
        second = [FailureInjector(0.3, seed=5).should_fail() for _ in range(1)]
        assert first == second

    def test_counts_failures(self):
        injector = FailureInjector(1.0, seed=0)
        for _ in range(3):
            injector.should_fail()
        assert injector.failures_injected == 3

    def test_invalid_probability(self):
        with pytest.raises(CheckpointError):
            FailureInjector(1.5)


class TestRuntimeRecovery:
    def _runtime(self, seed=9):
        world = make_boid_world(num_agents=30, seed=seed)
        config = BraceConfig(
            num_workers=3, ticks_per_epoch=2, checkpointing=True, checkpoint_interval_epochs=1
        )
        return world, BraceRuntime(world, config)

    def test_checkpoints_taken_at_epoch_boundaries(self):
        _world, runtime = self._runtime()
        runtime.run(6)
        assert runtime.master.checkpoint_manager.total_checkpoints == 3
        assert any(epoch.checkpointed for epoch in runtime.metrics.epochs)

    def test_recover_rewinds_to_last_checkpoint(self):
        world, runtime = self._runtime()
        runtime.run(5)  # checkpoints at ticks 2 and 4
        ticks_lost = runtime.recover()
        assert ticks_lost == 1
        assert world.tick == 4
        assert sum(runtime.owned_counts()) == world.agent_count()

    def test_recovery_and_reexecution_match_failure_free_run(self):
        reference = make_boid_world(num_agents=30, seed=9)
        SequentialEngine(reference).run(8)

        world, runtime = self._runtime()
        runtime.run(5)
        runtime.recover()          # lose tick 4
        remaining = 8 - world.tick
        runtime.run(remaining)     # re-execute to tick 8
        assert world.same_state_as(reference, tolerance=1e-9)

    def test_recover_without_checkpoint_raises(self):
        world = make_boid_world(num_agents=10, seed=9)
        runtime = BraceRuntime(world, BraceConfig(num_workers=2, checkpointing=False))
        with pytest.raises(CheckpointError):
            runtime.recover()

    def test_run_with_failures_requires_checkpointing(self):
        world = make_boid_world(num_agents=10, seed=9)
        runtime = BraceRuntime(world, BraceConfig(num_workers=2, checkpointing=False))
        with pytest.raises(BraceError):
            runtime.run_with_failures(2, FailureInjector(0.1, seed=0))

    def test_run_with_failures_still_reaches_target_and_matches_reference(self):
        reference = make_boid_world(num_agents=30, seed=9)
        SequentialEngine(reference).run(8)

        world, runtime = self._runtime()
        injector = FailureInjector(0.25, seed=3)
        runtime.run_with_failures(8, injector)
        assert world.tick == 8
        assert world.same_state_as(reference, tolerance=1e-9)
