"""Checkpointing and recovery on the process backend (resident shards).

The fault-tolerance machinery was previously only exercised in process: these
tests run the full story across a real process boundary — coordinated
checkpoints pull state out of the resident shards, ``recover()`` restores the
driver's world and re-seeds the shards, and the recovered run must match an
uninterrupted serial run bit for bit.
"""

import os
import signal
import socket
import subprocess
import sys

import pytest

from repro.brace.checkpoint import FailureInjector
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.errors import ExecutorError
from repro.simulations.traffic.workload import build_traffic_world

SEED = 17
VEHICLES = 60
TOTAL_TICKS = 8


def build_world():
    """The deterministic traffic world every run in this module starts from."""
    return build_traffic_world(seed=SEED, num_vehicles=VEHICLES)


def make_config(executor, resident_shards=None, **overrides):
    """Checkpoint-every-epoch configuration (epoch = 2 ticks)."""
    return BraceConfig(
        num_workers=3,
        ticks_per_epoch=2,
        check_visibility=False,
        load_balance=False,
        checkpointing=True,
        checkpoint_interval_epochs=1,
        executor=executor,
        max_workers=2,
        resident_shards=resident_shards,
        **overrides,
    )


def reference_world():
    """An uninterrupted serial run to TOTAL_TICKS (the ground truth)."""
    world = build_world()
    with BraceRuntime(world, make_config("serial")) as runtime:
        runtime.run(TOTAL_TICKS)
    return world


@pytest.fixture(scope="module")
def serial_reference():
    return reference_world()


class TestProcessCheckpointRecovery:
    def test_recover_reseeds_shards_and_matches_serial(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run(5)  # checkpoints at ticks 2 and 4
            ticks_lost = runtime.recover()
            assert ticks_lost == 1
            assert world.tick == 4
            # Ownership was rebuilt from the restored world.
            assert sum(runtime.owned_counts()) == world.agent_count()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_run_with_failures_on_process_backend_matches_serial(self, serial_reference):
        world = build_world()
        injector = FailureInjector(0.25, seed=3)
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run_with_failures(TOTAL_TICKS, injector)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_checkpoints_record_bytes_and_epoch_ipc(self):
        world = build_world()
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run(4)
            epochs = runtime.metrics.epochs
            assert len(epochs) == 2
            assert all(epoch.checkpointed for epoch in epochs)
            assert all(epoch.checkpoint_bytes > 0 for epoch in epochs)
            # Pulling state out of the shards is measured epoch traffic.
            assert all(epoch.ipc_bytes > 0 for epoch in epochs)

    def test_legacy_process_path_recovers_identically(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, make_config("process", resident_shards=False)) as runtime:
            runtime.run(5)
            runtime.recover()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.same_state_as(serial_reference, tolerance=0.0)


@pytest.mark.slow
class TestClusterNodeFailureRecovery:
    """A killed cluster node is a *machine* failure, not a pool hiccup.

    The heartbeat detector must turn a SIGKILLed node process into the
    same recoverable :class:`ExecutorError` the process backend raises,
    so the one checkpoint-recover path handles both failure domains —
    and the recovered run must still match the serial ground truth bit
    for bit.
    """

    def cluster_config(self):
        # A tight heartbeat so the test detects the kill in well under a
        # second instead of the production ten.
        return make_config(
            "cluster",
            heartbeat_interval_seconds=0.1,
            heartbeat_timeout_seconds=1.5,
        )

    def test_node_kill_mid_run_recovers_bit_identical(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run(5)  # checkpoints at ticks 2 and 4
            victim_pid = runtime.executor.node_pids()[1]
            os.kill(victim_pid, signal.SIGKILL)
            with pytest.raises(ExecutorError, match="recover from the last checkpoint"):
                # The tick may need a few protocol rounds to trip over the
                # dead socket; the heartbeat timeout bounds the wait.
                for _ in range(10):
                    runtime.run_tick()
            ticks_lost = runtime.recover()
            assert ticks_lost >= 0
            assert world.tick == 4
            # Recovery respawned the dead node and re-seeded every shard.
            assert sum(runtime.owned_counts()) == world.agent_count()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_run_with_failures_on_cluster_backend_matches_serial(self, serial_reference):
        world = build_world()
        injector = FailureInjector(0.25, seed=3)
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run_with_failures(TOTAL_TICKS, injector)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _start_node(port):
    """An external node that retries connecting until the driver listens."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.node",
            "--connect",
            f"127.0.0.1:{port}",
            "--heartbeat-interval",
            "0.1",
            "--retry-seconds",
            "30",
        ],
        env=env,
    )


@pytest.mark.slow
class TestSupervisedNodeLoss:
    """Node death degrades the cluster instead of tearing it down.

    Each path — respawn (spawned mode), re-admission (an external
    replacement dials in) and rehoming (no replacement, survivors absorb
    the lost shards) — must end bit-identical to the uninterrupted
    serial run, and the survivors must keep their resident state (same
    node process, no re-seed) throughout.
    """

    def cluster_config(self, **overrides):
        return make_config(
            "cluster",
            heartbeat_interval_seconds=0.1,
            heartbeat_timeout_seconds=1.5,
            **overrides,
        )

    def test_respawn_recovers_without_survivor_teardown(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run(5)  # checkpoints at ticks 2 and 4
            pids_before = dict(runtime.executor.node_pids())
            os.kill(pids_before[1], signal.SIGKILL)
            # run() absorbs the supervised loss: recover + re-execute.
            runtime.run(TOTAL_TICKS - world.tick)
            events = runtime.fault_events
            loss = next(e for e in events if e["event"] == "node_loss")
            assert loss["node"] == 1
            assert loss["action"] == "respawned"
            recovered = next(e for e in events if e["event"] == "recovered")
            assert recovered["partial"] is True  # survivors rewound in place
            pids_after = runtime.executor.node_pids()
            # The survivor kept its process; only the dead slot changed.
            assert pids_after[0] == pids_before[0]
            assert pids_after[1] != pids_before[1]
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_external_replacement_is_readmitted(self, serial_reference):
        port = _free_port()
        nodes = [_start_node(port), _start_node(port)]
        world = build_world()
        try:
            config = self.cluster_config(
                cluster_listen=f"127.0.0.1:{port}",
                cluster_spawn=False,
                readmission_timeout_seconds=20.0,
            )
            with BraceRuntime(world, config) as runtime:
                runtime.run(5)
                pids_before = dict(runtime.executor.node_pids())
                victim = next(
                    index
                    for index, node in enumerate(nodes)
                    if node.pid == pids_before[1]
                )
                nodes[victim].kill()
                # The replacement dials in while the degraded driver holds
                # its listener open for readmission_timeout seconds.
                nodes.append(_start_node(port))
                runtime.run(TOTAL_TICKS - world.tick)
                loss = next(
                    e for e in runtime.fault_events if e["event"] == "node_loss"
                )
                assert loss["action"] == "readmitted"
                pids_after = runtime.executor.node_pids()
                assert pids_after[0] == pids_before[0]
                assert pids_after[1] == nodes[-1].pid
            assert world.tick == TOTAL_TICKS
            assert world.same_state_as(serial_reference, tolerance=0.0)
        finally:
            for node in nodes:
                node.kill()
            for node in nodes:
                node.wait(timeout=10)

    def test_no_replacement_rehomes_onto_survivors(self, serial_reference):
        port = _free_port()
        nodes = [_start_node(port), _start_node(port)]
        world = build_world()
        try:
            config = self.cluster_config(
                cluster_listen=f"127.0.0.1:{port}",
                cluster_spawn=False,
                readmission_timeout_seconds=0.0,  # rehome immediately
            )
            with BraceRuntime(world, config) as runtime:
                runtime.run(5)
                pids_before = dict(runtime.executor.node_pids())
                victim = next(
                    index
                    for index, node in enumerate(nodes)
                    if node.pid == pids_before[1]
                )
                nodes[victim].kill()
                runtime.run(TOTAL_TICKS - world.tick)
                loss = next(
                    e for e in runtime.fault_events if e["event"] == "node_loss"
                )
                assert loss["action"] == "rehomed"
                # Every shard now lives on the lone survivor.
                topology = runtime.executor.node_topology()
                assert len(topology) == 1
                assert topology[0]["pid"] == pids_before[0]
                assert sorted(topology[0]["shards"]) == [0, 1, 2]
            assert world.tick == TOTAL_TICKS
            assert world.same_state_as(serial_reference, tolerance=0.0)
        finally:
            for node in nodes:
                node.kill()
            for node in nodes:
                node.wait(timeout=10)

    @pytest.mark.parametrize("kill_tick", range(1, TOTAL_TICKS))
    def test_sigkill_at_every_tick_stays_bit_identical(
        self, kill_tick, serial_reference
    ):
        # The acceptance sweep: whatever tick the kill lands on — before
        # the first checkpoint, on a checkpoint boundary, mid-epoch — the
        # outcome is never a silently wrong state: either the supervised
        # run converges to the serial ground truth, or (only before the
        # first checkpoint exists) it raises the documented recovery error.
        world = build_world()
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run(kill_tick)
            os.kill(runtime.executor.node_pids()[0], signal.SIGKILL)
            try:
                runtime.run(TOTAL_TICKS - world.tick)
            except ExecutorError:
                # Absorbing a loss needs a checkpoint; the first lands at
                # tick 2.  Any raise after that is a real failure.
                assert kill_tick < 2
                return
            assert any(
                event["event"] == "node_loss" for event in runtime.fault_events
            )
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)
