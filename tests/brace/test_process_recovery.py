"""Checkpointing and recovery on the process backend (resident shards).

The fault-tolerance machinery was previously only exercised in process: these
tests run the full story across a real process boundary — coordinated
checkpoints pull state out of the resident shards, ``recover()`` restores the
driver's world and re-seeds the shards, and the recovered run must match an
uninterrupted serial run bit for bit.
"""

import os
import signal

import pytest

from repro.brace.checkpoint import FailureInjector
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.errors import ExecutorError
from repro.simulations.traffic.workload import build_traffic_world

SEED = 17
VEHICLES = 60
TOTAL_TICKS = 8


def build_world():
    """The deterministic traffic world every run in this module starts from."""
    return build_traffic_world(seed=SEED, num_vehicles=VEHICLES)


def make_config(executor, resident_shards=None, **overrides):
    """Checkpoint-every-epoch configuration (epoch = 2 ticks)."""
    return BraceConfig(
        num_workers=3,
        ticks_per_epoch=2,
        check_visibility=False,
        load_balance=False,
        checkpointing=True,
        checkpoint_interval_epochs=1,
        executor=executor,
        max_workers=2,
        resident_shards=resident_shards,
        **overrides,
    )


def reference_world():
    """An uninterrupted serial run to TOTAL_TICKS (the ground truth)."""
    world = build_world()
    with BraceRuntime(world, make_config("serial")) as runtime:
        runtime.run(TOTAL_TICKS)
    return world


@pytest.fixture(scope="module")
def serial_reference():
    return reference_world()


class TestProcessCheckpointRecovery:
    def test_recover_reseeds_shards_and_matches_serial(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run(5)  # checkpoints at ticks 2 and 4
            ticks_lost = runtime.recover()
            assert ticks_lost == 1
            assert world.tick == 4
            # Ownership was rebuilt from the restored world.
            assert sum(runtime.owned_counts()) == world.agent_count()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_run_with_failures_on_process_backend_matches_serial(self, serial_reference):
        world = build_world()
        injector = FailureInjector(0.25, seed=3)
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run_with_failures(TOTAL_TICKS, injector)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_checkpoints_record_bytes_and_epoch_ipc(self):
        world = build_world()
        with BraceRuntime(world, make_config("process")) as runtime:
            runtime.run(4)
            epochs = runtime.metrics.epochs
            assert len(epochs) == 2
            assert all(epoch.checkpointed for epoch in epochs)
            assert all(epoch.checkpoint_bytes > 0 for epoch in epochs)
            # Pulling state out of the shards is measured epoch traffic.
            assert all(epoch.ipc_bytes > 0 for epoch in epochs)

    def test_legacy_process_path_recovers_identically(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, make_config("process", resident_shards=False)) as runtime:
            runtime.run(5)
            runtime.recover()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.same_state_as(serial_reference, tolerance=0.0)


@pytest.mark.slow
class TestClusterNodeFailureRecovery:
    """A killed cluster node is a *machine* failure, not a pool hiccup.

    The heartbeat detector must turn a SIGKILLed node process into the
    same recoverable :class:`ExecutorError` the process backend raises,
    so the one checkpoint-recover path handles both failure domains —
    and the recovered run must still match the serial ground truth bit
    for bit.
    """

    def cluster_config(self):
        # A tight heartbeat so the test detects the kill in well under a
        # second instead of the production ten.
        return make_config(
            "cluster",
            heartbeat_interval_seconds=0.1,
            heartbeat_timeout_seconds=1.5,
        )

    def test_node_kill_mid_run_recovers_bit_identical(self, serial_reference):
        world = build_world()
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run(5)  # checkpoints at ticks 2 and 4
            victim_pid = runtime.executor.node_pids()[1]
            os.kill(victim_pid, signal.SIGKILL)
            with pytest.raises(ExecutorError, match="recover from the last checkpoint"):
                # The tick may need a few protocol rounds to trip over the
                # dead socket; the heartbeat timeout bounds the wait.
                for _ in range(10):
                    runtime.run_tick()
            ticks_lost = runtime.recover()
            assert ticks_lost >= 0
            assert world.tick == 4
            # Recovery respawned the dead node and re-seeded every shard.
            assert sum(runtime.owned_counts()) == world.agent_count()
            runtime.run(TOTAL_TICKS - world.tick)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)

    def test_run_with_failures_on_cluster_backend_matches_serial(self, serial_reference):
        world = build_world()
        injector = FailureInjector(0.25, seed=3)
        with BraceRuntime(world, self.cluster_config()) as runtime:
            runtime.run_with_failures(TOTAL_TICKS, injector)
        assert world.tick == TOTAL_TICKS
        assert world.same_state_as(serial_reference, tolerance=0.0)
