"""Bit-identical world states across spatial backends.

The columnar kernels are an *execution* strategy, never a semantic one:
``spatial_backend="python"`` and ``"vectorized"`` must produce exactly the
same agent states — on every executor, for both the fish and the traffic
workloads, and through the BRASIL script front door whose optimizer now pins
the vectorized backend.
"""

import pytest

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.errors import BraceError
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.traffic.workload import build_traffic_world

TICKS = 4


def final_states(world):
    return {agent.agent_id: agent.state_dict() for agent in world.agents()}


def build_world(workload):
    if workload == "fish":
        # The canonical Fish class is importable by name, as the process
        # executor's pickling requires.
        return build_fish_world(120, seed=5, fish_class=Fish)
    return build_traffic_world(seed=5, num_vehicles=120)


def run_backend(workload, backend, executor):
    world = build_world(workload)
    config = BraceConfig(
        num_workers=3,
        executor=executor,
        spatial_backend=backend,
        ticks_per_epoch=2,
    )
    with BraceRuntime(world, config) as runtime:
        runtime.run(TICKS)
    return final_states(world)


class TestBackendEquivalence:
    @pytest.mark.parametrize("workload", ["fish", "traffic"])
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_python_and_vectorized_states_bit_identical(self, workload, executor):
        python_states = run_backend(workload, "python", executor)
        vectorized_states = run_backend(workload, "vectorized", executor)
        assert python_states == vectorized_states

    @pytest.mark.parametrize("workload", ["fish", "traffic"])
    def test_auto_matches_forced_backends(self, workload):
        auto_states = run_backend(workload, None, "serial")
        assert auto_states == run_backend(workload, "python", "serial")

    def test_index_choice_is_bit_neutral(self):
        # Canonical match ordering makes the access path invisible even at
        # the last bit — a stronger form of the old tolerance-based check.
        reference = None
        for index in ("kdtree", "grid", "quadtree", None):
            world = build_world("fish")
            config = BraceConfig(num_workers=3, index=index, cell_size=12.0)
            with BraceRuntime(world, config) as runtime:
                runtime.run(TICKS)
            states = final_states(world)
            if reference is None:
                reference = states
            else:
                assert states == reference, f"index {index!r} changed states"


class TestScriptFrontDoor:
    def test_script_session_backends_bit_identical(self):
        from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

        def run(backend):
            session = Simulation.from_script(
                FISH_SCHOOL_SCRIPT, num_agents=90, seed=9
            ).with_workers(3)
            if backend is not None:
                session = session.with_spatial_backend(backend)
            with session:
                result = session.run(TICKS)
            return result.final_states

        vectorized = run(None)  # optimizer pins "vectorized" for uniform radii
        assert vectorized == run("python")

    def test_optimizer_pins_vectorized_for_uniform_radii(self):
        from repro.brasil import compile_script
        from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        assert compiled.index_selection.spatial_backend == "vectorized"
        assert compiled.brace_config_overrides()["spatial_backend"] == "vectorized"

    def test_explicit_config_backend_beats_the_pin(self):
        from repro.brasil import compile_script, config_for_script
        from repro.simulations.predator.brasil_scripts import FISH_SCHOOL_SCRIPT

        compiled = compile_script(FISH_SCHOOL_SCRIPT)
        # No explicit choice: the optimizer's pin applies.
        assert config_for_script(compiled).spatial_backend == "vectorized"
        # An explicitly configured backend survives the pin...
        base = BraceConfig(spatial_backend="python")
        assert config_for_script(compiled, base).spatial_backend == "python"
        # ...including when the access path is forced.
        assert (
            config_for_script(compiled, base, index="kdtree").spatial_backend
            == "python"
        )
        # A forced access path alone drops the pin back to auto.
        assert config_for_script(compiled, index="kdtree").spatial_backend is None


class TestConfigSurface:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(BraceError, match="spatial backend"):
            BraceConfig(spatial_backend="simd").validate()

    def test_builder_rejects_unknown_backend(self):
        world = build_world("fish")
        with pytest.raises(BraceError, match="spatial backend"):
            Simulation.from_agents(world).with_spatial_backend("simd")

    def test_builder_accepts_and_round_trips_backend(self):
        world = build_world("fish")
        session = Simulation.from_agents(world).with_spatial_backend("vectorized")
        assert session._builder.build().spatial_backend == "vectorized"
