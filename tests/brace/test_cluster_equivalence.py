"""The socket cluster backend against the in-driver backends, bit for bit.

The cluster executor moves resident shards out of the driver's *machine*
(not just its process), but the delta protocol it speaks is the same —
so cluster runs must produce bit-identical agent states and identical
deterministic statistics on both evaluation models (fish and traffic),
including across a forced mid-run shard migration, and the configuration
and provenance layers must reflect the new backend honestly.
"""

import pytest

from repro.api import Simulation
from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.errors import BraceError
from repro.simulations.fish.fish import Fish
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.traffic.workload import build_traffic_world

TICKS = 3


def build_world(model):
    if model == "fish":
        # The importable module-level Fish: dynamic classes cannot cross
        # a process (or node) boundary by reference.
        return build_fish_world(48, seed=7, fish_class=Fish)
    return build_traffic_world(seed=11, num_vehicles=80)


def run_model(model, executor, ticks=TICKS):
    world = build_world(model)
    config = BraceConfig(
        num_workers=4,
        ticks_per_epoch=ticks,
        check_visibility=False,
        executor=executor,
        max_workers=2,
    )
    with BraceRuntime(world, config) as runtime:
        runtime.run(ticks)
        return world, runtime.metrics


#: Tick statistics that must match across backends (wall clock excluded).
DETERMINISTIC_TICK_FIELDS = (
    "tick",
    "num_agents",
    "bytes_replicated",
    "bytes_effects",
    "bytes_migrated",
    "replicas_created",
    "agents_migrated",
    "num_passes",
    "spawned",
    "killed",
    "virtual_seconds",
)


@pytest.mark.slow
class TestClusterEquivalence:
    @pytest.mark.parametrize("model", ["fish", "traffic"])
    def test_states_bit_identical_to_serial(self, model):
        serial_world, _ = run_model(model, "serial")
        cluster_world, cluster_metrics = run_model(model, "cluster")
        assert serial_world.same_state_as(cluster_world, tolerance=0.0)
        assert all(tick.resident for tick in cluster_metrics.ticks)

    @pytest.mark.parametrize("model", ["fish", "traffic"])
    def test_states_bit_identical_to_process(self, model):
        process_world, _ = run_model(model, "process")
        cluster_world, _ = run_model(model, "cluster")
        assert process_world.same_state_as(cluster_world, tolerance=0.0)

    def test_statistics_identical_to_serial(self):
        _, serial_metrics = run_model("traffic", "serial")
        _, cluster_metrics = run_model("traffic", "cluster")
        assert len(cluster_metrics.ticks) == TICKS
        for serial_tick, cluster_tick in zip(serial_metrics.ticks, cluster_metrics.ticks):
            for field in DETERMINISTIC_TICK_FIELDS:
                assert getattr(serial_tick, field) == getattr(cluster_tick, field), field

    def test_socket_bytes_measured_every_tick(self):
        _, metrics = run_model("traffic", "cluster")
        assert all(tick.ipc_bytes_sent > 0 for tick in metrics.ticks)
        assert all(tick.ipc_bytes_received > 0 for tick in metrics.ticks)


@pytest.mark.slow
class TestForcedMigrationEquivalence:
    @pytest.mark.parametrize("model", ["fish", "traffic"])
    def test_mid_run_migration_stays_bit_identical(self, model):
        serial_world = build_world(model)
        config = dict(
            num_workers=4, ticks_per_epoch=6, check_visibility=False, max_workers=2
        )
        with BraceRuntime(serial_world, BraceConfig(executor="serial", **config)) as runtime:
            runtime.run(6)

        cluster_world = build_world(model)
        with BraceRuntime(cluster_world, BraceConfig(executor="cluster", **config)) as runtime:
            runtime.run(3)
            shard_id = 0
            source = runtime.executor.shard_node(shard_id)
            destination = (source + 1) % 2
            moved_bytes = runtime.migrate_shard(shard_id, destination)
            assert moved_bytes > 0
            assert runtime.executor.shard_node(shard_id) == destination
            runtime.run(3)
        assert serial_world.same_state_as(cluster_world, tolerance=0.0)

    def test_migrate_shard_requires_cluster_backend(self):
        world = build_traffic_world(seed=11, num_vehicles=40)
        config = BraceConfig(num_workers=2, executor="serial")
        with BraceRuntime(world, config) as runtime:
            with pytest.raises(BraceError, match="cluster"):
                runtime.migrate_shard(0, 1)


class TestClusterConfigValidation:
    def test_cluster_with_legacy_path_rejected(self):
        with pytest.raises(BraceError, match="resident shards"):
            BraceConfig(executor="cluster", resident_shards=False).validate()

    def test_cluster_defaults_validate(self):
        BraceConfig(executor="cluster").validate()

    def test_bad_node_count_rejected(self):
        with pytest.raises(BraceError, match="cluster_nodes"):
            BraceConfig(executor="cluster", cluster_nodes=0).validate()

    def test_bad_listen_address_rejected(self):
        with pytest.raises(BraceError, match="cluster_listen"):
            BraceConfig(executor="cluster", cluster_listen="nonsense").validate()

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(BraceError, match="heartbeat"):
            BraceConfig(
                executor="cluster",
                heartbeat_interval_seconds=2.0,
                heartbeat_timeout_seconds=1.0,
            ).validate()


class TestClusterProvenance:
    def test_provenance_records_resolved_node_topology(self):
        result = (
            Simulation.from_agents(build_traffic_world(seed=3, num_vehicles=40))
            .with_executor("cluster")
            .with_nodes(2, heartbeat_interval=0.1)
            .with_workers(2)
            .run(2)
        )
        assert result.provenance.backend == "cluster"
        nodes = result.provenance.nodes
        assert nodes is not None and len(nodes) == 2
        hosted = [shard for record in nodes for shard in record["shards"]]
        assert sorted(hosted) == [0, 1]
        for record in nodes:
            assert record["pid"] > 0
            assert record["spawned"] is True

    def test_single_host_backends_record_no_topology(self):
        result = (
            Simulation.from_agents(build_traffic_world(seed=3, num_vehicles=40))
            .with_workers(2)
            .run(2)
        )
        assert result.provenance.nodes is None
