"""Tests for the one-dimensional load balancer."""

import numpy as np
import pytest

from repro.brace.config import BraceConfig
from repro.brace.loadbalance import OneDimensionalLoadBalancer
from repro.brace.runtime import BraceRuntime
from repro.core.errors import LoadBalanceError
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import StripPartitioning

from tests.conftest import make_boid_world

BOUNDS = BBox(((0.0, 100.0), (0.0, 100.0)))


class TestImbalanceMetric:
    def test_balanced_counts(self):
        assert OneDimensionalLoadBalancer.imbalance([10, 10, 10]) == pytest.approx(1.0)

    def test_skewed_counts(self):
        assert OneDimensionalLoadBalancer.imbalance([30, 0, 0]) == pytest.approx(3.0)

    def test_empty(self):
        assert OneDimensionalLoadBalancer.imbalance([]) == 1.0
        assert OneDimensionalLoadBalancer.imbalance([0, 0]) == 1.0


class TestBalancedBoundaries:
    def test_quantile_boundaries_split_evenly(self):
        coordinates = list(np.linspace(40.0, 60.0, 100))
        boundaries = OneDimensionalLoadBalancer.balanced_boundaries(coordinates, 4, 0.0, 100.0)
        partitioning = StripPartitioning(BOUNDS, 0, boundaries)
        counts = [0] * 4
        for coordinate in coordinates:
            counts[partitioning.partition_of((coordinate, 0.0))] += 1
        assert max(counts) - min(counts) <= 2

    def test_single_strip_has_no_boundaries(self):
        assert OneDimensionalLoadBalancer.balanced_boundaries([1.0, 2.0], 1, 0.0, 10.0) == []

    def test_boundaries_strictly_increasing_even_with_duplicates(self):
        coordinates = [50.0] * 40
        boundaries = OneDimensionalLoadBalancer.balanced_boundaries(coordinates, 4, 0.0, 100.0)
        assert all(b1 < b2 for b1, b2 in zip(boundaries, boundaries[1:]))
        StripPartitioning(BOUNDS, 0, boundaries)  # must be a valid partitioning

    def test_invalid_strip_count(self):
        with pytest.raises(LoadBalanceError):
            OneDimensionalLoadBalancer.balanced_boundaries([1.0], 0, 0.0, 1.0)


class TestDecision:
    def _concentrated_coordinates(self):
        rng = np.random.default_rng(0)
        return list(rng.uniform(40.0, 60.0, size=200))

    def test_rebalances_concentrated_load(self):
        balancer = OneDimensionalLoadBalancer(threshold=1.2, migration_cost_per_agent=0.01)
        partitioning = StripPartitioning.uniform(BOUNDS, 0, 4)
        decision = balancer.decide(partitioning, self._concentrated_coordinates())
        assert decision.rebalance
        assert decision.imbalance_after < decision.imbalance_before
        assert decision.new_partitioning is not None

    def test_does_not_rebalance_uniform_load(self):
        balancer = OneDimensionalLoadBalancer(threshold=1.2)
        partitioning = StripPartitioning.uniform(BOUNDS, 0, 4)
        rng = np.random.default_rng(1)
        decision = balancer.decide(partitioning, list(rng.uniform(0.0, 100.0, size=400)))
        assert not decision.rebalance

    def test_migration_cost_can_veto(self):
        expensive = OneDimensionalLoadBalancer(
            threshold=1.2, migration_cost_per_agent=1e9, ticks_to_amortize=1
        )
        partitioning = StripPartitioning.uniform(BOUNDS, 0, 4)
        decision = expensive.decide(partitioning, self._concentrated_coordinates())
        assert not decision.rebalance
        assert decision.estimated_cost > decision.estimated_benefit

    def test_invalid_threshold(self):
        with pytest.raises(LoadBalanceError):
            OneDimensionalLoadBalancer(threshold=0.9)


class TestRuntimeIntegration:
    def test_load_balancing_evens_out_concentrated_worlds(self):
        # All agents start in a 10-unit-wide band of a 60-unit world.
        world = make_boid_world(num_agents=80, seed=2)
        for agent in world.agents():
            agent.set_state_dict({"x": 25.0 + (agent.agent_id % 10)})
        config = BraceConfig(
            num_workers=4,
            ticks_per_epoch=1,
            load_balance=True,
            load_balance_threshold=1.1,
        )
        runtime = BraceRuntime(world, config)
        before = max(runtime.owned_counts())
        runtime.run(2)  # one epoch triggers the rebalance
        after = max(runtime.owned_counts())
        assert runtime.master.rebalances_performed() >= 1
        assert after < before

    def test_disabled_load_balancer_never_rebalances(self):
        world = make_boid_world(num_agents=40, seed=2)
        config = BraceConfig(num_workers=4, ticks_per_epoch=1, load_balance=False)
        runtime = BraceRuntime(world, config)
        runtime.run(3)
        assert runtime.master.rebalances_performed() == 0
