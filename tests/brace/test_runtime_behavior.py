"""Behavioural tests of the BRACE runtime: config, replication, metrics, epochs."""

import pytest

from repro.brace.config import BraceConfig
from repro.brace.replication import distribute_agents, replication_targets
from repro.brace.runtime import BraceRuntime
from repro.brace.worker import Worker
from repro.core.errors import BraceError
from repro.core.world import World
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import StripPartitioning

from tests.conftest import Boid, make_boid_world


class TestConfigValidation:
    def test_defaults_are_valid(self):
        BraceConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_workers": 0},
            {"ticks_per_epoch": 0},
            {"partitioning": "hilbert"},
            {"partitioning": "grid"},  # grid without grid_cells
            {"partitioning": "grid", "grid_cells": (2, 3), "num_workers": 4},
            {"index": "rtree"},
            {"load_balance_threshold": 0.5},
            {"checkpoint_interval_epochs": 0},
        ],
    )
    def test_invalid_configurations_rejected(self, overrides):
        config = BraceConfig(**overrides)
        with pytest.raises(BraceError):
            config.validate()

    def test_world_without_bounds_rejected(self):
        world = World(bounds=None)
        with pytest.raises(BraceError):
            BraceRuntime(world, BraceConfig(num_workers=2))


class TestReplication:
    def test_targets_include_owner_and_neighbours_within_visibility(self):
        world = make_boid_world(num_agents=1, seed=0)
        agent = world.agents()[0]
        agent.set_state_dict({"x": 30.5, "y": 30.0})  # just right of the 30.0 boundary
        partitioning = StripPartitioning.uniform(world.bounds, 0, 2)
        targets = replication_targets(agent, partitioning)
        assert set(targets) == {0, 1}

    def test_unbounded_visibility_replicates_everywhere(self):
        class Blind(Boid):
            pass

        Blind._state_fields = dict(Boid._state_fields)
        # Simulate a model without visibility bounds by overriding the radii.
        world = make_boid_world(num_agents=1, seed=0)
        agent = world.agents()[0]
        partitioning = StripPartitioning.uniform(world.bounds, 0, 4)
        original = type(agent).visibility_radii
        try:
            type(agent).visibility_radii = classmethod(lambda cls: (None, None))
            assert set(replication_targets(agent, partitioning)) == {0, 1, 2, 3}
        finally:
            type(agent).visibility_radii = original

    def test_distribute_agents_plan(self):
        world = make_boid_world(num_agents=30, seed=5)
        partitioning = StripPartitioning.uniform(world.bounds, 0, 3)
        plan = distribute_agents(world.agents(), partitioning)
        assert len(plan.owner_of) == 30
        for agent in world.agents():
            assert plan.owner_of[agent.agent_id] == partitioning.partition_of(agent.position())
        assert plan.replica_count == sum(len(v) for v in plan.replicas.values())


class TestWorkerMechanics:
    def test_ownership_and_replicas(self):
        partitioning = StripPartitioning.uniform(BBox(((0.0, 60.0), (0.0, 60.0))), 0, 2)
        worker = Worker(0, partitioning.partition(0))
        agent = Boid(agent_id=1, x=5.0, y=5.0)
        worker.add_owned(agent)
        assert worker.owned_count() == 1
        worker.receive_replica(Boid(agent_id=2, x=31.0, y=5.0))
        assert len(worker.replica_agents()) == 1
        removed = worker.remove_owned(1)
        assert removed is agent
        with pytest.raises(BraceError):
            worker.remove_owned(1)

    def test_merge_partials_requires_ownership(self):
        partitioning = StripPartitioning.uniform(BBox(((0.0, 60.0), (0.0, 60.0))), 0, 2)
        worker = Worker(0, partitioning.partition(0))
        with pytest.raises(BraceError):
            worker.merge_remote_partials(99, {"pull_x": 1.0})

    def test_checkpoint_size_grows_with_population(self):
        partitioning = StripPartitioning.uniform(BBox(((0.0, 60.0), (0.0, 60.0))), 0, 2)
        worker = Worker(0, partitioning.partition(0))
        assert worker.checkpoint_size_bytes() == 0
        worker.add_owned(Boid(agent_id=1))
        single = worker.checkpoint_size_bytes()
        worker.add_owned(Boid(agent_id=2))
        assert worker.checkpoint_size_bytes() == 2 * single


class TestRuntimeMetrics:
    def test_tick_statistics_populated(self):
        world = make_boid_world(num_agents=40, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=4, ticks_per_epoch=2))
        stats = runtime.run_tick()
        assert stats.num_agents == 40
        assert stats.virtual_seconds > 0
        assert stats.replicas_created > 0
        assert stats.max_worker_agents >= stats.min_worker_agents
        assert stats.num_passes == 2

    def test_ownership_tracking_after_ticks(self):
        world = make_boid_world(num_agents=40, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=4))
        runtime.run(3)
        assert sum(runtime.owned_counts()) == world.agent_count()
        for agent in world.agents():
            owner = runtime.worker_of(agent.agent_id)
            assert agent.agent_id in runtime.workers[owner].owned

    def test_worker_of_unknown_agent(self):
        world = make_boid_world(num_agents=5, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=2))
        with pytest.raises(BraceError):
            runtime.worker_of(12345)

    def test_epoch_statistics_recorded(self):
        world = make_boid_world(num_agents=40, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=4, ticks_per_epoch=2))
        runtime.run(6)
        assert len(runtime.metrics.epochs) == 3
        assert all(epoch.ticks == 2 for epoch in runtime.metrics.epochs)
        assert runtime.metrics.epoch_times() == [
            epoch.virtual_seconds for epoch in runtime.metrics.epochs
        ]

    def test_throughput_positive_and_warmup_skipping(self):
        world = make_boid_world(num_agents=40, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=4))
        runtime.run(4)
        assert runtime.throughput() > 0
        assert runtime.throughput(skip_ticks=2) > 0

    def test_single_worker_has_no_network_traffic(self):
        world = make_boid_world(num_agents=30, seed=3)
        runtime = BraceRuntime(world, BraceConfig(num_workers=1))
        runtime.run(2)
        assert runtime.metrics.total_bytes_over_network() == 0

    def test_more_workers_mean_more_replication(self):
        few = make_boid_world(num_agents=60, seed=3)
        many = make_boid_world(num_agents=60, seed=3)
        runtime_few = BraceRuntime(few, BraceConfig(num_workers=2))
        runtime_many = BraceRuntime(many, BraceConfig(num_workers=8))
        runtime_few.run(2)
        runtime_many.run(2)
        assert (
            runtime_many.metrics.total_bytes_over_network()
            > runtime_few.metrics.total_bytes_over_network()
        )
