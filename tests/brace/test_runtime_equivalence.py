"""The BRACE runtime must produce the same agent states as the sequential engine.

This is the repository's core correctness invariant (Theorem 1 made
executable): regardless of the number of workers, the partitioning, the
spatial index, load balancing or the presence of non-local effects, a BRACE
run is indistinguishable from a sequential run of the same world.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.brace.config import BraceConfig
from repro.brace.runtime import BraceRuntime
from repro.core.engine import SequentialEngine

from tests.conftest import Boid, NonLocalBoid, SpawningAgent, make_boid_world


def sequential_reference(agent_class, seed, ticks, num_agents=40):
    world = make_boid_world(num_agents=num_agents, seed=seed, agent_class=agent_class)
    SequentialEngine(world).run(ticks)
    return world


class TestLocalEffectEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 7])
    def test_matches_sequential(self, workers):
        reference = sequential_reference(Boid, seed=19, ticks=5)
        world = make_boid_world(num_agents=40, seed=19, agent_class=Boid)
        runtime = BraceRuntime(world, BraceConfig(num_workers=workers, ticks_per_epoch=2))
        runtime.run(5)
        assert world.same_state_as(reference, tolerance=1e-9)

    @pytest.mark.parametrize("index", [None, "kdtree", "grid", "quadtree"])
    def test_index_choice_does_not_change_results(self, index):
        reference = sequential_reference(Boid, seed=23, ticks=4)
        world = make_boid_world(num_agents=40, seed=23, agent_class=Boid)
        config = BraceConfig(num_workers=4, index=index, cell_size=10.0)
        BraceRuntime(world, config).run(4)
        assert world.same_state_as(reference, tolerance=1e-9)

    def test_grid_partitioning_matches_sequential(self):
        reference = sequential_reference(Boid, seed=29, ticks=4)
        world = make_boid_world(num_agents=40, seed=29, agent_class=Boid)
        config = BraceConfig(num_workers=4, partitioning="grid", grid_cells=(2, 2),
                             load_balance=False)
        BraceRuntime(world, config).run(4)
        assert world.same_state_as(reference, tolerance=1e-9)

    def test_load_balancing_does_not_change_results(self):
        reference = sequential_reference(Boid, seed=31, ticks=6)
        world = make_boid_world(num_agents=40, seed=31, agent_class=Boid)
        config = BraceConfig(
            num_workers=5, ticks_per_epoch=2, load_balance=True, load_balance_threshold=1.01
        )
        runtime = BraceRuntime(world, config)
        runtime.run(6)
        assert world.same_state_as(reference, tolerance=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
        ticks=st.integers(min_value=1, max_value=4),
    )
    def test_property_equivalence(self, workers, seed, ticks):
        reference = sequential_reference(Boid, seed=seed, ticks=ticks, num_agents=25)
        world = make_boid_world(num_agents=25, seed=seed, agent_class=Boid)
        BraceRuntime(world, BraceConfig(num_workers=workers, ticks_per_epoch=2)).run(ticks)
        assert world.same_state_as(reference, tolerance=1e-9)


class TestNonLocalEffectEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 6])
    def test_two_pass_matches_sequential(self, workers):
        reference = sequential_reference(NonLocalBoid, seed=37, ticks=5)
        world = make_boid_world(num_agents=40, seed=37, agent_class=NonLocalBoid)
        config = BraceConfig(num_workers=workers, non_local_effects=True, ticks_per_epoch=2)
        BraceRuntime(world, config).run(5)
        assert world.same_state_as(reference, tolerance=1e-9)

    def test_non_local_effects_without_flag_is_an_error(self):
        world = make_boid_world(num_agents=20, seed=37, agent_class=NonLocalBoid)
        runtime = BraceRuntime(world, BraceConfig(num_workers=3, non_local_effects=False))
        with pytest.raises(Exception):
            runtime.run(1)


class TestDynamicPopulationEquivalence:
    @pytest.mark.parametrize("workers", [1, 3, 5])
    def test_births_and_deaths_match_sequential(self, workers):
        reference = make_boid_world(num_agents=30, seed=8, agent_class=SpawningAgent, size=20.0)
        SequentialEngine(reference).run(8)
        world = make_boid_world(num_agents=30, seed=8, agent_class=SpawningAgent, size=20.0)
        BraceRuntime(world, BraceConfig(num_workers=workers, ticks_per_epoch=3)).run(8)
        assert world.agent_ids() == reference.agent_ids()
        assert world.same_state_as(reference, tolerance=1e-9)
