#!/usr/bin/env python
"""Docstring coverage checker for the CI docs job.

Walks a package directory, counts the public definitions (modules, classes,
functions and methods) that carry a docstring, and fails when coverage drops
below the threshold.  Private names (leading underscore) and trivial dunder
overrides are excluded — the goal is that everything a user can reach reads
as documentation, not that every helper repeats its own name.

Usage:
    python tools/check_docstrings.py [--fail-under PCT] [--verbose] [PATHS...]

Exit status is 0 when coverage >= --fail-under (default 90), 1 otherwise.
Only the standard library is used, so the check runs anywhere the tests do.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Dunder methods whose behaviour is fully conventional; a docstring would
#: only restate the protocol.
_EXEMPT_DUNDERS = {
    "__init__",
    "__repr__",
    "__str__",
    "__eq__",
    "__hash__",
    "__len__",
    "__iter__",
    "__next__",
    "__enter__",
    "__exit__",
    "__post_init__",
    "__getitem__",
    "__setitem__",
    "__contains__",
    "__call__",
    "__reduce__",
    "__add__",
    "__sub__",
    "__mul__",
    "__truediv__",
    "__neg__",
    "__getstate__",
    "__setstate__",
    "__new__",
    "__get__",
    "__set__",
    "__set_name__",
}


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return name not in _EXEMPT_DUNDERS
    return not name.startswith("_")


def _walk_definitions(node, prefix):
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(child.name):
                continue  # nested definitions inside private scopes stay private
            name = f"{prefix}{child.name}"
            yield name, child
            if isinstance(child, ast.ClassDef):
                yield from _walk_definitions(child, f"{name}.")


def _definitions(tree: ast.Module):
    """Yield ``(qualified name, node)`` for every public definition."""
    yield "<module>", tree
    yield from _walk_definitions(tree, "")


def check_file(path: Path, verbose: bool) -> tuple[int, int, list[str]]:
    """Return ``(documented, total, missing)`` for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    documented = 0
    total = 0
    missing: list[str] = []
    for name, node in _definitions(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(f"{path}:{getattr(node, 'lineno', 1)} {name}")
    if verbose and missing:
        for entry in missing:
            print(f"  missing: {entry}")
    return documented, total, missing


def main(argv: list[str] | None = None) -> int:
    """Run the coverage check over the given paths (default: src/repro)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files or package dirs")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=90.0,
        help="minimum docstring coverage percentage (default: 90)",
    )
    parser.add_argument("--verbose", action="store_true", help="list undocumented definitions")
    arguments = parser.parse_args(argv)

    files: list[Path] = []
    for raw in arguments.paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    if not files:
        print("no Python files found", file=sys.stderr)
        return 1

    documented = 0
    total = 0
    all_missing: list[str] = []
    for source in files:
        file_documented, file_total, missing = check_file(source, arguments.verbose)
        documented += file_documented
        total += file_total
        all_missing.extend(missing)

    coverage = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public definitions "
        f"({coverage:.1f}%), threshold {arguments.fail_under:.1f}%"
    )
    if coverage < arguments.fail_under:
        print("FAILED — undocumented definitions:", file=sys.stderr)
        for entry in all_missing:
            print(f"  {entry}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
