"""Package metadata for the BRACE/BRASIL reproduction.

A plain ``setup.py`` (src layout, setuptools) so ``pip install -e .`` works
everywhere, including environments without PEP 517 build isolation.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="brace-repro",
    version="1.2.0",
    description=(
        "From-scratch Python reproduction of 'Behavioral Simulations in "
        "MapReduce' (Wang et al., PVLDB 2010): the BRACE runtime, the BRASIL "
        "language, and the paper's experiments"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="brace-repro contributors",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
