"""Shared-memory transport for columnar delta frames.

The process backend's pool pipes copy every payload twice (driver pickle →
pipe → host unpickle, and back for results).  For the columnar frames of
:mod:`repro.ipc.frames` the bulk bytes are already contiguous buffers, so
this module moves them through ``multiprocessing.shared_memory`` instead:
the sender parks an encoded frame in a named segment and ships only a tiny
:class:`FrameToken` (name + length) through the pipe; the receiver maps
the segment and decodes straight out of the shared buffer.

Lifecycle is double-buffered pooling rather than per-frame churn:

* a :class:`SegmentPool` owns the segments one *sender* creates.  Each
  frame acquires a free segment with enough capacity (or creates one with
  power-of-two capacity), and the segment returns to the free list once
  the receiver is done — command segments when their round completes,
  result segments via the release list piggybacked on the *next* round's
  submission.  Steady state is a handful of segments per host, reused
  every tick, zero allocation churn.
* a :class:`SegmentCache` keeps the *receiver's* attachments open by name
  across rounds, so a reused segment maps exactly once per process.
* the creating process unlinks everything at pool close; shard hosts run
  an explicit transport-close task during executor teardown, before the
  driver's own pool closes.

On this interpreter (CPython < 3.13) the ``resource_tracker`` — one
process shared by the driver and its forked shard hosts — would hear
about every create, attach and unlink and mismatch them (its cache is a
set of names, so cross-process pairs collapse); pooled segments instead
run every lifecycle step under :func:`_tracker_silenced`, leaving cleanup
entirely to the explicit owner-managed teardown.

Everything degrades gracefully: :func:`shm_available` probes once per
process, and any ``OSError`` while parking a frame falls back to sending
the blob bytes through the pipe — the frame codec does not care how its
bytes traveled.
"""

from __future__ import annotations

import itertools
import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass

try:  # pragma: no cover - exercised only where shm is missing entirely
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None


@dataclass(frozen=True)
class FrameToken:
    """Reference to an encoded frame parked in a shared-memory segment."""

    name: str
    length: int


@contextmanager
def _tracker_silenced():
    """Keep the ``resource_tracker`` out of our segments' lifecycle.

    CPython before 3.13 registers every segment with the resource tracker on
    create *and* attach, and unregisters on unlink.  The tracker process is
    shared by the driver and its forked shard hosts and keeps a *set* of
    names, so cross-process register/unregister pairs collapse and mismatch
    — producing KeyError noise in the tracker and spurious unlink attempts
    at exit.  Pool segments have an explicit owner-managed lifecycle
    (:meth:`SegmentPool.close`, the hosts' transport-close task), so the
    cleanest contract is that the tracker never hears about them at all:
    every create/attach/unlink runs with the tracker hooks stubbed out.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - track=False exists
        yield
        return
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - no tracker, nothing to silence
        yield
        return
    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister

    def quiet_register(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not our resource
            original_register(name, rtype)

    def quiet_unregister(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not our resource
            original_unregister(name, rtype)

    resource_tracker.register = quiet_register
    resource_tracker.unregister = quiet_unregister
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


_SEGMENT_COUNTER = itertools.count()

#: Smallest segment capacity; tiny frames share the same pooled segments.
_MIN_SEGMENT_BYTES = 1 << 12


class SegmentPool:
    """Reusable named shared-memory segments owned by one sender process.

    ``write`` parks a byte blob and returns its :class:`FrameToken`;
    ``release`` returns a segment to the free list once the receiver has
    consumed it.  ``close`` unlinks every segment this pool created —
    only the creating process may call it.
    """

    def __init__(self):
        self._segments: dict = {}
        self._free: list = []

    def write(self, blob) -> FrameToken:
        """Copy ``blob`` into a pooled segment and return its token."""
        nbytes = len(blob)
        segment = self._acquire(nbytes)
        segment.buf[:nbytes] = blob
        return FrameToken(segment.name, nbytes)

    def _acquire(self, nbytes: int):
        for index, segment in enumerate(self._free):
            if segment.size >= nbytes:
                return self._free.pop(index)
        capacity = max(_MIN_SEGMENT_BYTES, 1 << max(nbytes - 1, 1).bit_length())
        name = f"repro_{os.getpid()}_{next(_SEGMENT_COUNTER)}"
        with _tracker_silenced():
            segment = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        self._segments[segment.name] = segment
        return segment

    def release(self, name: str) -> None:
        """Return the named segment to the free list for reuse."""
        segment = self._segments.get(name)
        if segment is not None and segment not in self._free:
            self._free.append(segment)

    def close(self) -> None:
        """Close and unlink every segment this pool created."""
        with _tracker_silenced():
            for segment in self._segments.values():
                try:
                    segment.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                try:
                    segment.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
        self._segments.clear()
        self._free.clear()


class SegmentCache:
    """A receiver's open attachments, keyed by segment name.

    Pooled segments are reused across rounds under the same name, so each
    maps exactly once per receiving process; ``view`` returns a zero-copy
    ``memoryview`` of the token's live bytes.
    """

    def __init__(self):
        self._segments: dict = {}
        #: Attachments whose close hit a live exported view; kept referenced
        #: so their finalizer runs after the view is released, not mid-close.
        self._pinned: list = []

    def view(self, token: FrameToken):
        """A zero-copy view of the token's bytes (attaching on first use)."""
        segment = self._segments.get(token.name)
        if segment is None:
            with _tracker_silenced():
                segment = shared_memory.SharedMemory(name=token.name)
            self._segments[token.name] = segment
        return segment.buf[: token.length]

    def close(self) -> None:
        """Drop every attachment (the owner unlinks; we only close)."""
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:
                # A zero-copy view is still exported; pin the segment so it
                # outlives the view instead of finalizing under it.
                self._pinned.append(segment)
            except OSError:  # pragma: no cover - best effort
                pass
        self._segments.clear()


_SHM_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Probe (once per process) whether shared-memory segments work here."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(
                    name=f"repro_probe_{os.getpid()}", create=True, size=16
                )
                probe.close()
                probe.unlink()
                _SHM_AVAILABLE = True
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


# --------------------------------------------------------------------------
# Per-process transport endpoints (the shard-host side)
# --------------------------------------------------------------------------

_PROCESS_POOL: SegmentPool | None = None
_PROCESS_CACHE: SegmentCache | None = None


def process_pool() -> SegmentPool:
    """This process's segment pool for *sending* frames (lazily created)."""
    global _PROCESS_POOL
    if _PROCESS_POOL is None:
        _PROCESS_POOL = SegmentPool()
    return _PROCESS_POOL


def process_cache() -> SegmentCache:
    """This process's attachment cache for *receiving* frames."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = SegmentCache()
    return _PROCESS_CACHE


def release_process_segments(names) -> None:
    """Return previously sent segments to this process's pool."""
    if _PROCESS_POOL is not None:
        for name in names:
            _PROCESS_POOL.release(name)


def close_process_transport() -> None:
    """Tear down this process's pool and cache (executor shutdown hook)."""
    global _PROCESS_POOL, _PROCESS_CACHE
    if _PROCESS_CACHE is not None:
        _PROCESS_CACHE.close()
        _PROCESS_CACHE = None
    if _PROCESS_POOL is not None:
        _PROCESS_POOL.close()
        _PROCESS_POOL = None
