"""The one measured-frame-size helper behind every byte account.

Before the columnar wire format, two different numbers described "how big
an agent is on the wire": the shadow-worker cost model used
``Agent.approximate_size_bytes()`` estimates while the executor reported
measured pickled blob sizes, and the two disagreed by whatever pickle's
framing overhead happened to be.  The columnar delta frames make the true
marginal cost knowable in closed form — every packable state or effect
cell is exactly one 8-byte array element, the id column adds one more, and
the per-group headers amortize to a small per-row constant — so the cost
model and the measured traffic can finally be charged from the same
formula.

Every modeled byte count in :mod:`repro.brace.runtime` and
:mod:`repro.brace.worker` routes through these helpers **unconditionally**
(whatever ``ipc_backend`` actually ran), so the modeled statistics —
``bytes_migrated``/``bytes_replicated``/``bytes_effects`` and the virtual
seconds derived from them — stay part of the cross-backend determinism
contract.  ``tests/ipc/test_sizing.py`` pins the formula to the measured
marginal row size of a real encoded frame.
"""

from __future__ import annotations

#: Per-row frame overhead: the 8-byte id cell plus the row's share of the
#: group headers (class handle, field names, row index).  Chosen to equal
#: the historical per-agent header so modeled statistics are unchanged.
ROW_HEADER_BYTES = 16

#: Every packable cell is one element of a ``float64``/``int64`` column.
CELL_BYTES = 8


def agent_frame_bytes(agent) -> int:
    """Modeled wire footprint of one agent row in a columnar delta frame.

    One :data:`CELL_BYTES` cell per declared state and effect field plus
    the :data:`ROW_HEADER_BYTES` row share.  Computed from the *class*
    structure, never from instance values, so the number is identical on
    every backend and in every process — a determinism requirement, since
    the cost model's virtual seconds are derived from it.

    This is the canonical formula; :meth:`repro.core.agent.Agent.
    approximate_size_bytes` now *delegates* here (lazily, so ``core``
    stays import-time independent of ``ipc``), which closes the last
    PR 3-era drift between the cost model's estimates and the measured
    ``ipc_bytes_*`` — one formula, every accounting site.
    """
    cls = type(agent)
    return ROW_HEADER_BYTES + CELL_BYTES * (
        len(cls._state_fields) + len(cls._effect_fields)
    )


def partial_frame_bytes(partials: dict) -> int:
    """Modeled wire footprint of one routed effect-partial row.

    The id cell and header share plus one cell per touched accumulator —
    the same shape :func:`agent_frame_bytes` charges, applied to the
    ``(agent_id, {field: partial})`` rows of the second reduce pass.
    """
    return ROW_HEADER_BYTES + CELL_BYTES * len(partials)
