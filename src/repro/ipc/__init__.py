"""Columnar IPC: SoA delta frames and shared-memory transport.

The resident-shard protocol's wire layer.  :mod:`repro.ipc.frames` packs
each tick's replica/migration/partial traffic into columnar frames with a
pickle escape column (bit-identity is never at risk);
:mod:`repro.ipc.transport` moves encoded frames through pooled
``multiprocessing.shared_memory`` segments on the process backend; and
:mod:`repro.ipc.sizing` is the one modeled frame-size formula every byte
account (shadow-worker cost model and tick statistics alike) charges from.

Submodules import lazily — ``frames`` sits above :mod:`repro.core` while
:mod:`repro.brace` modules import this package, so the package root stays
dependency-free.
"""

from __future__ import annotations

from repro.ipc.sizing import CELL_BYTES, ROW_HEADER_BYTES, agent_frame_bytes, partial_frame_bytes


def resolve_ipc_backend(
    ipc_backend: str | None, shares_memory: bool, resident: bool
) -> str:
    """Resolve the ``BraceConfig.ipc_backend`` knob to a concrete backend.

    Forced values (``"pickle"`` / ``"columnar"``) win.  ``None`` (auto)
    picks ``"columnar"`` exactly when the resident protocol actually
    crosses a process boundary — resident shards on an executor that does
    not share memory; everywhere else payloads never serialize, so auto
    stays on ``"pickle"`` and the knob changes nothing.
    """
    if ipc_backend in ("pickle", "columnar"):
        return ipc_backend
    return "columnar" if (resident and not shares_memory) else "pickle"


__all__ = [
    "CELL_BYTES",
    "ROW_HEADER_BYTES",
    "agent_frame_bytes",
    "partial_frame_bytes",
    "resolve_ipc_backend",
]
