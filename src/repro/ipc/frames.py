"""Columnar delta frames: the SoA wire format for resident-shard traffic.

The resident-shard protocol (:mod:`repro.brace.shards`) moves four kinds of
bulk payload across the driver/shard boundary every tick: replica clones and
migrations (lists of :class:`~repro.core.agent.Agent`), non-local effect
partials (``{agent_id: {field: partial}}`` maps), and routed partials
(``[(agent_id, {field: partial}), ...]`` rows).  The legacy transport
pickles these object by object — every agent walks its ``_state`` dict,
every partial map pickles its keys as strings — which PR 7's compiled plan
kernels left as the dominant per-tick cost on the process backend.

This module packs that traffic into **columnar frames** instead:

* agent rows group by concrete class; each group stores one
  :class:`~repro.core.soa.PackedColumn` per declared state field (floats,
  bools and exact ints as NumPy arrays, anything else through the pickle
  escape column), an id column, the field-name tuple once, and a
  :class:`ClassHandle` naming the class once per group;
* effects are not shipped at all in the common case — on the wire agents
  almost always carry freshly reset accumulators, so each group records
  only the rare rows whose effects differ bit-for-bit from the class's
  combinator identities, and decode manufactures fresh identities for the
  rest;
* partial rows group by their exact field-key tuple, giving one
  ``PackedColumn`` per accumulator field instead of one dict per agent;
* any agent whose ``_state`` keys do not match its class declaration
  escapes as a whole object — bit-identity is never at risk.

The frame objects themselves are plain dataclasses whose bulk data are
NumPy arrays, so :class:`ColumnarCodec` can serialize a frame with one
``pickle.dumps`` call that writes the array buffers at C speed — the codec
collapses per-object costs without inventing a hand-rolled binary format.

Protocol dataclasses register their own wire transforms via
:func:`register_wire_type` (see the bottom of :mod:`repro.brace.shards`),
keeping this module free of upward imports; generic payloads — agent
lists, coordinate lists, state maps — are recognized structurally.
"""

from __future__ import annotations

import pickle
import weakref
from dataclasses import dataclass, field
from itertools import chain
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.agent import Agent
from repro.core.soa import PackedColumn, _cells_equal, pack_cells, unpack_cells


def _float_matrix(value_rows: list) -> np.ndarray | None:
    """Pack rows of cells as one 2-D ``float64`` matrix, if exactly floats.

    The all-float group is the dominant wire shape, and a single
    ``np.asarray`` over the row tuples plus one C-speed type scan replaces
    a per-column Python packing loop.  Any non-float cell (ints and bools
    need their type preserved; everything else needs the escape column)
    returns ``None`` so the caller takes the exact per-column path.
    """
    if not value_rows or not value_rows[0]:
        return None
    if set(map(type, chain.from_iterable(value_rows))) != {float}:
        return None
    return np.asarray(value_rows, dtype=np.float64)


@dataclass(frozen=True)
class ClassHandle:
    """The class of one agent group, shipped once per group.

    Plain agent classes travel by reference (``cls``) — pickle resolves
    them by module path, exactly as the legacy per-object path did.
    BRASIL-compiled classes are *generated* types that cannot be imported,
    so they travel as their pure-data
    :class:`~repro.brasil.compiler.AgentClassSpec` (``spec``) and resolve
    through the same weakref registry pickle's ``__reduce__`` path uses —
    every process rebuilds (or reuses) the identical compiled class.
    """

    cls: type | None = None
    spec: Any = None

    def resolve(self) -> type:
        """Return the concrete agent class this handle names."""
        if self.spec is not None:
            from repro.brasil.compiler import compiled_class_for_spec

            return compiled_class_for_spec(self.spec)
        return self.cls


def class_handle(cls: type) -> ClassHandle:
    """Build the :class:`ClassHandle` for an agent class."""
    spec = getattr(cls, "_compile_spec", None)
    if spec is not None:
        return ClassHandle(spec=spec)
    return ClassHandle(cls=cls)


#: Cache of per-class effect identity templates: ``cls -> (template dict,
#: all-immutable flag)``.  Weak keys so generated BRASIL classes can die.
_EFFECT_TEMPLATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_SCALAR_IMMUTABLE = (float, int, bool, str, bytes, type(None))


def _is_immutable(value) -> bool:
    if isinstance(value, _SCALAR_IMMUTABLE):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable(item) for item in value)
    return False


def _effect_template(cls: type) -> tuple[dict, bool]:
    entry = _EFFECT_TEMPLATES.get(cls)
    if entry is None:
        template = {
            name: spec.combinator.identity()
            for name, spec in cls._effect_fields.items()
        }
        fast = all(_is_immutable(value) for value in template.values())
        entry = (template, fast)
        _EFFECT_TEMPLATES[cls] = entry
    return entry


def _fresh_effects(cls: type) -> dict:
    """A brand-new identity accumulator dict for ``cls``.

    When every identity value is immutable the cached template is shallow
    copied; otherwise (``COLLECT``'s list identity, say) each accumulator
    is manufactured fresh so decoded agents never share mutable state.
    """
    template, fast = _effect_template(cls)
    if fast:
        return dict(template)
    return {
        name: spec.combinator.identity()
        for name, spec in cls._effect_fields.items()
    }


def _effects_are_default(effects: dict, template: dict) -> bool:
    """True when ``effects`` equals the identity template bit-for-bit.

    Uses exact-cell comparison for floats (NaN counts as equal to itself,
    ``-0.0`` does **not** equal ``0.0``) so a checkpoint-restored
    accumulator that merely *compares* equal to the identity still ships
    as an override — decode must never flip a bit.
    """
    if len(effects) != len(template):
        return False
    for name, ref in template.items():
        if name not in effects:
            return False
        value = effects[name]
        if type(value) is not type(ref):
            return False
        if isinstance(ref, float):
            if not _cells_equal(value, ref):
                return False
        elif value != ref:
            return False
    return True


@dataclass
class _AgentGroup:
    """One concrete class's rows of an :class:`AgentFrame`.

    ``matrix`` is the all-float fast path: one ``(rows, fields)`` float64
    matrix replacing the per-field ``columns`` list (which is then empty).
    """

    handle: ClassHandle
    rows: np.ndarray
    fields: tuple
    ids: PackedColumn
    columns: list
    effect_overrides: list = field(default_factory=list)
    matrix: np.ndarray | None = None


@dataclass
class AgentFrame:
    """A columnar frame of agent rows, order-preserving.

    ``groups`` partition the rows by concrete class (first-seen order);
    ``escapes`` holds ``(row, agent)`` pairs for agents the columnar
    layout cannot represent (``_state`` keys that diverge from the class
    declaration), shipped as whole pickled objects.
    """

    length: int
    groups: list
    escapes: list = field(default_factory=list)


def pack_agents(agents: Sequence) -> AgentFrame:
    """Pack a sequence of agents into one columnar :class:`AgentFrame`."""
    by_class: dict[type, list] = {}
    escapes: list = []
    field_tuples: dict[type, tuple] = {}
    for row, agent in enumerate(agents):
        cls = type(agent)
        fields = field_tuples.get(cls)
        if fields is None:
            fields = field_tuples[cls] = tuple(cls._state_fields)
        # Order-sensitive on purpose: a matching key *sequence* lets the
        # column transpose below read ``_state.values()`` directly, one
        # pass instead of one dict lookup per cell.  Reordered dicts (rare)
        # ship as whole pickled escapes, which is equally exact.
        if tuple(agent._state) != fields:
            escapes.append((row, agent))
        else:
            by_class.setdefault(cls, []).append((row, agent))
    groups: list = []
    for cls, members in by_class.items():
        rows = np.fromiter(
            (row for row, _ in members), dtype=np.int64, count=len(members)
        )
        group_agents = [agent for _, agent in members]
        fields = field_tuples[cls]
        ids = pack_cells([agent.agent_id for agent in group_agents])
        value_rows = [tuple(agent._state.values()) for agent in group_agents]
        matrix = _float_matrix(value_rows)
        if matrix is None:
            columns = [pack_cells(column) for column in zip(*value_rows)]
        else:
            columns = []
        template, _ = _effect_template(cls)
        if template:
            overrides = [
                (offset, dict(agent._effects), tuple(agent._effects_touched))
                for offset, agent in enumerate(group_agents)
                if agent._effects_touched
                or not _effects_are_default(agent._effects, template)
            ]
        else:
            # No declared effect fields: an override only exists when some
            # out-of-band accumulator was grafted onto the instance.
            overrides = [
                (offset, dict(agent._effects), tuple(agent._effects_touched))
                for offset, agent in enumerate(group_agents)
                if agent._effects_touched or agent._effects
            ]
        groups.append(
            _AgentGroup(class_handle(cls), rows, fields, ids, columns, overrides, matrix)
        )
    return AgentFrame(len(agents), groups, escapes)


def unpack_agents(frame: AgentFrame) -> list:
    """Rebuild the exact agent list a frame was packed from.

    Decoded agents are *new objects* with bit-identical ``agent_id``,
    ``_state`` and ``_effects`` — the same contract pickle gives.
    """
    out: list = [None] * frame.length
    for group in frame.groups:
        cls = group.handle.resolve()
        rows = group.rows.tolist()
        ids = unpack_cells(group.ids)
        matrix = getattr(group, "matrix", None)
        if matrix is not None:
            # One C call rebuilds every row's Python floats exactly.
            value_rows = iter(matrix.tolist())
        else:
            columns = [unpack_cells(column) for column in group.columns]
            if columns:
                value_rows = zip(*columns)
            else:
                value_rows = iter([()] * len(rows))
        fields = group.fields
        new = cls.__new__
        template, fast = _effect_template(cls)
        # Assigning ``__dict__`` wholesale sidesteps one setattr per
        # attribute; agent instances carry exactly these five (clone() and
        # pickle restore the same set).
        for row, agent_id, values in zip(rows, ids, value_rows):
            agent = new(cls)
            agent.__dict__ = {
                "agent_id": agent_id,
                "_updating": False,
                "_state": dict(zip(fields, values)),
                "_effects": dict(template) if fast else _fresh_effects(cls),
                "_effects_touched": set(),
            }
            out[row] = agent
        for offset, effects, touched in group.effect_overrides:
            agent = out[rows[offset]]
            agent._effects = dict(effects)
            agent._effects_touched = set(touched)
    for row, agent in frame.escapes:
        out[row] = agent
    return out


class LazyAgentFrame:
    """A packed :class:`AgentFrame` kept opaque while the driver routes it.

    The driver never inspects replica lists — it only concatenates them per
    destination — so a frame decoded from one shard can be re-emitted into
    the next command verbatim, skipping a full unpack/repack cycle per
    replica.  ``unpack`` materializes the agents on demand (the shard side,
    or any in-process consumer that actually needs objects).
    """

    __slots__ = ("frame",)

    def __init__(self, frame: AgentFrame):
        self.frame = frame

    def __len__(self) -> int:
        return self.frame.length

    def unpack(self) -> list:
        """Materialize the agents this frame carries."""
        return unpack_agents(self.frame)


class ReplicaDelta:
    """One destination's replica delta for a tick.

    Instead of reshipping every replica every tick, a shard in delta mode
    sends each destination only the rows that changed: ``additions`` holds
    replicas that are new or whose state values differ (by object identity
    — exact by construction, see ``Worker.distribute``) from what was last
    sent, and ``removed_ids`` names replicas the destination must drop.
    Unchanged replicas are simply retained by the destination, so
    steady-state replica traffic scales with the *change rate*, not the
    replica count.
    """

    __slots__ = ("additions", "removed_ids")

    def __init__(self, additions, removed_ids):
        #: ``list[Agent]`` at the source, a :class:`LazyAgentFrame` in
        #: transit (the driver routes deltas without unpacking them).
        self.additions = additions
        self.removed_ids = removed_ids

    def __len__(self) -> int:
        return len(self.additions)


class AgentChunks:
    """An ordered concatenation of agent groups, some still packed.

    Produced by :func:`concat_agent_chunks` when at least one routed chunk
    is a :class:`LazyAgentFrame`; the query-command wire transform ships
    each chunk as its own frame (re-using packed ones untouched) and the
    receiving shard flattens them back into one agent list.
    """

    __slots__ = ("chunks",)

    def __init__(self, chunks: list):
        self.chunks = chunks

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def unpack(self) -> list:
        """Materialize the concatenated agent list, in routing order."""
        flat: list = []
        for chunk in self.chunks:
            flat.extend(chunk.unpack() if isinstance(chunk, LazyAgentFrame) else chunk)
        return flat


def concat_agent_chunks(chunks: list):
    """Concatenate routed agent groups, preserving packed frames.

    Plain lists collapse into one flat list (the memory-sharing backends'
    path, unchanged); as soon as any chunk is a :class:`LazyAgentFrame`
    the concatenation stays symbolic so the frames cross the driver
    without being unpacked.
    """
    if any(isinstance(chunk, LazyAgentFrame) for chunk in chunks):
        return AgentChunks(list(chunks))
    flat: list = []
    for chunk in chunks:
        flat.extend(chunk)
    return flat


@dataclass
class _MappingGroup:
    """One field-signature's rows of a :class:`MappingFrame`.

    ``matrix`` is the all-float fast path (see :class:`_AgentGroup`).
    """

    rows: np.ndarray
    fields: tuple
    keys: PackedColumn
    columns: list
    matrix: np.ndarray | None = None


@dataclass
class MappingFrame:
    """Columnar frame over ``(key, {field: value})`` rows.

    Rows group by their exact field-key tuple (insertion order preserved),
    so each group stores one :class:`~repro.core.soa.PackedColumn` per
    field — the layout for effect-partial routing and state maps, where a
    handful of signatures cover thousands of rows.
    """

    length: int
    groups: list


def pack_mapping_rows(items: Sequence) -> MappingFrame:
    """Pack ``(key, mapping)`` rows into a :class:`MappingFrame`."""
    by_signature: dict[tuple, list] = {}
    for row, (key, mapping) in enumerate(items):
        by_signature.setdefault(tuple(mapping), []).append((row, key, mapping))
    groups: list = []
    for fields, members in by_signature.items():
        rows = np.fromiter(
            (row for row, _, _ in members), dtype=np.int64, count=len(members)
        )
        keys = pack_cells([key for _, key, _ in members])
        # Every member shares the exact key order (the group signature is
        # ``tuple(mapping)``), so ``values()`` aligns with ``fields`` and
        # one transpose replaces a per-field lookup pass.
        value_rows = [tuple(mapping.values()) for _, _, mapping in members]
        matrix = _float_matrix(value_rows)
        if matrix is None:
            columns = [pack_cells(column) for column in zip(*value_rows)]
        else:
            columns = []
        groups.append(_MappingGroup(rows, fields, keys, columns, matrix))
    return MappingFrame(len(items), groups)


def unpack_mapping_rows(frame: MappingFrame) -> list:
    """Rebuild the exact ``(key, mapping)`` row list of a frame."""
    out: list = [None] * frame.length
    for group in frame.groups:
        rows = group.rows.tolist()
        keys = unpack_cells(group.keys)
        matrix = getattr(group, "matrix", None)
        if matrix is not None:
            value_rows = matrix.tolist()
        else:
            columns = [unpack_cells(column) for column in group.columns]
            if columns:
                value_rows = list(zip(*columns))
            else:
                value_rows = [()] * len(rows)
        fields = group.fields
        for offset, row in enumerate(rows):
            out[row] = (keys[offset], dict(zip(fields, value_rows[offset])))
    return out


# --------------------------------------------------------------------------
# Wire transforms
# --------------------------------------------------------------------------

#: Explicitly registered protocol types: ``type -> (tag, encode)``.
_WIRE_ENCODERS: dict[type, tuple] = {}
#: Inverse: ``tag -> decode``.
_WIRE_DECODERS: dict[str, Callable] = {}

_RAW = "raw"


def register_wire_type(
    cls: type, tag: str, encode: Callable, decode: Callable
) -> None:
    """Register a columnar wire transform for a protocol dataclass.

    ``encode(obj)`` returns a picklable wire payload built from frames
    and :class:`~repro.core.soa.PackedColumn` columns; ``decode(payload)``
    rebuilds the exact object.  The module that *owns* a protocol type
    registers it (see :mod:`repro.brace.shards`), so this codec never
    imports upward.
    """
    _WIRE_ENCODERS[cls] = (tag, encode)
    _WIRE_DECODERS[tag] = decode


def _to_wire(obj) -> tuple:
    entry = _WIRE_ENCODERS.get(type(obj))
    if entry is not None:
        tag, encode = entry
        return (tag, encode(obj))
    if type(obj) is list and obj:
        if all(isinstance(item, Agent) for item in obj):
            return ("agents", pack_agents(obj))
        if all(type(item) is float for item in obj):
            return ("floats", pack_cells(obj))
    if type(obj) is dict and obj:
        values = list(obj.values())
        if all(type(value) is dict for value in values):
            return ("state-map", pack_mapping_rows(list(obj.items())))
        if all(
            type(value) is list and value and all(isinstance(a, Agent) for a in value)
            for value in values
        ):
            return (
                "agent-map",
                [(key, pack_agents(value)) for key, value in obj.items()],
            )
    return (_RAW, obj)


def _from_wire(wire: tuple):
    tag, payload = wire
    if tag == _RAW:
        return payload
    if tag == "agents":
        return unpack_agents(payload)
    if tag == "floats":
        return unpack_cells(payload)
    if tag == "state-map":
        return dict(unpack_mapping_rows(payload))
    if tag == "agent-map":
        return {key: unpack_agents(frame) for key, frame in payload}
    decode = _WIRE_DECODERS.get(tag)
    if decode is None:
        raise ValueError(f"unknown columnar wire tag {tag!r}")
    return decode(payload)


class ColumnarCodec:
    """Encode/decode protocol payloads as columnar delta frames.

    ``encode`` transforms the payload into its wire form (frames and
    packed columns in a small shell) and pickles that shell — the NumPy
    buffers serialize at C speed, the shell costs a handful of objects.
    ``decode`` inverts both steps, restoring bit-identical payloads.

    The codec is stateless; instances pickle by reference-free default
    reconstruction, so shipping one to a shard host is essentially free.
    """

    protocol = pickle.HIGHEST_PROTOCOL

    def encode(self, obj) -> bytes:
        """Serialize ``obj`` to a columnar frame blob."""
        return pickle.dumps(_to_wire(obj), self.protocol)

    def decode(self, blob):
        """Restore the exact payload of an :meth:`encode` blob."""
        return _from_wire(pickle.loads(blob))

    def roundtrip(self, obj) -> tuple:
        """In-process encode→decode; returns ``(decoded copy, frame bytes)``.

        The memory-sharing conformance path uses this instead of
        :meth:`encode`/:meth:`decode` so dynamically built agent classes —
        which residency supports in process precisely because nothing is
        pickled — still exercise the frame transforms.  When the wire shell
        pickles (the common case, and always true wherever a real process
        boundary could run) the round trip goes through actual bytes and the
        measured size is real; when it cannot (a dynamic class in the shell),
        the frames are decoded directly and the byte count reports 0.
        """
        wire = _to_wire(obj)
        try:
            blob = pickle.dumps(wire, self.protocol)
        except (pickle.PicklingError, AttributeError, TypeError):
            return _from_wire(wire), 0
        return _from_wire(pickle.loads(blob)), len(blob)
