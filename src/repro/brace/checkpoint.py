"""Coordinated epoch checkpoints and recovery by re-execution.

BRACE's master node interacts with workers every *epoch*; at a pre-defined
tick boundary, every worker writes a checkpoint of its in-memory state
independently (no global synchronisation beyond agreeing on the boundary).
Failures are handled by restoring the last checkpoint and re-executing the
ticks since then — the standard technique for short-iteration scientific
computations (Section 3.3).

This module keeps checkpoints in memory (the "stable storage" of the
simulated cluster) and also provides a deterministic failure injector used by
the fault-tolerance tests and the checkpointing ablation benchmark.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.errors import CheckpointError
from repro.core.world import World


def serialize_snapshot(payload: Any) -> bytes:
    """Encode a checkpoint payload for stable storage.

    The one codec shared by everything that persists simulation state: the
    history store's on-disk checkpoints and delta frames both go through it,
    so a payload written by one layer is always readable by the other.
    Pickle at the highest protocol round-trips Python floats and ints
    exactly, which is what the bit-identical replay guarantee rests on.
    """
    return pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)


def deserialize_snapshot(data: bytes) -> Any:
    """Decode a payload written by :func:`serialize_snapshot`."""
    return pickle.loads(data)


@dataclass
class Checkpoint:
    """A snapshot of the whole simulation at an epoch boundary."""

    tick: int
    epoch: int
    world_snapshot: dict[str, Any]
    size_bytes: int


class CheckpointManager:
    """Stores epoch checkpoints and restores the most recent one on failure."""

    def __init__(self, keep_last: int = 2):
        if keep_last < 1:
            raise CheckpointError("keep_last must be at least 1")
        self.keep_last = keep_last
        self._checkpoints: list[Checkpoint] = []
        self.total_checkpoints = 0
        self.total_bytes = 0

    def take(self, world: World, epoch: int, size_bytes: int) -> Checkpoint:
        """Snapshot ``world`` at the current tick."""
        checkpoint = Checkpoint(
            tick=world.tick,
            epoch=epoch,
            world_snapshot=world.snapshot(),
            size_bytes=size_bytes,
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.keep_last:
            self._checkpoints.pop(0)
        self.total_checkpoints += 1
        self.total_bytes += size_bytes
        return checkpoint

    def latest(self) -> Checkpoint:
        """The most recent checkpoint."""
        if not self._checkpoints:
            raise CheckpointError("no checkpoint has been taken")
        return self._checkpoints[-1]

    def has_checkpoint(self) -> bool:
        """True when at least one checkpoint exists."""
        return bool(self._checkpoints)

    def restore_latest(self, world: World) -> Checkpoint:
        """Restore ``world`` from the most recent checkpoint and return it."""
        checkpoint = self.latest()
        world.restore(checkpoint.world_snapshot)
        return checkpoint


class FailureInjector:
    """Deterministically injects worker failures for fault-tolerance experiments.

    A failure probability is evaluated once per tick from a seeded stream, so
    a run with the same seed fails at the same ticks every time.
    """

    def __init__(self, failure_probability_per_tick: float = 0.0, seed: int = 0):
        if not 0.0 <= failure_probability_per_tick <= 1.0:
            raise CheckpointError("failure probability must be within [0, 1]")
        self.failure_probability_per_tick = failure_probability_per_tick
        self._rng = np.random.default_rng(seed)
        self.failures_injected = 0

    def should_fail(self) -> bool:
        """Draw whether a failure happens during the current tick."""
        if self.failure_probability_per_tick <= 0.0:
            return False
        failed = bool(self._rng.random() < self.failure_probability_per_tick)
        if failed:
            self.failures_injected += 1
        return failed
