"""BRACE — the Big Red Agent Computation Engine, reproduced in Python.

BRACE is the paper's shared-nothing, main-memory MapReduce runtime
specialised for iterated spatial joins.  This package implements it on top of
the simulated cluster:

* :mod:`repro.brace.config` — runtime configuration;
* :mod:`repro.brace.replication` — spatial distribution and replication of
  agents to partitions (the map task);
* :mod:`repro.brace.worker` — per-worker state: owned agents, replicas, the
  query/update execution (the reduce tasks);
* :mod:`repro.brace.shards` — the resident-shard delta protocol: workers
  hosted durably inside executor processes, exchanging only migrations,
  boundary replicas and effect partials per tick;
* :mod:`repro.brace.master` — epoch coordination: statistics, load
  balancing and checkpoint scheduling;
* :mod:`repro.brace.loadbalance` — the one-dimensional load balancer;
* :mod:`repro.brace.checkpoint` — coordinated epoch checkpoints and recovery
  by re-execution;
* :mod:`repro.brace.metrics` — throughput and epoch statistics;
* :mod:`repro.brace.runtime` — :class:`BraceRuntime`, the user-facing entry
  point that ties everything together.
"""

from repro.brace.config import BraceConfig
from repro.brace.metrics import BraceTickStatistics, EpochStatistics, BraceRunMetrics
from repro.brace.runtime import BraceRuntime
from repro.brace.worker import Worker
from repro.brace.loadbalance import OneDimensionalLoadBalancer, LoadBalanceDecision
from repro.brace.checkpoint import CheckpointManager, FailureInjector

__all__ = [
    "BraceConfig",
    "BraceRuntime",
    "BraceTickStatistics",
    "EpochStatistics",
    "BraceRunMetrics",
    "Worker",
    "OneDimensionalLoadBalancer",
    "LoadBalanceDecision",
    "CheckpointManager",
    "FailureInjector",
]
