"""The BRACE runtime: iterated map–reduce–reduce over a simulated cluster.

:class:`BraceRuntime` executes a :class:`~repro.core.world.World` tick by
tick the way the paper's runtime does:

1. **Map / distribution** — each worker migrates agents that left its
   partition and replicates its owned agents to every partition whose
   visible region contains them.  Thanks to collocation, agents that stay
   put never touch the network; only migrations and replicas do.
2. **Reduce 1 / query phase** — each worker joins its owned agents with the
   agents in its partition's visible region (owned + replicas) and runs the
   query phase, accumulating effects locally.
3. **Reduce 2 / effect aggregation** — only when the model performs
   non-local effect assignments: effect partials accumulated on replicas are
   routed to the owning workers and merged with the owners' accumulators.
4. **Update phase** — each worker updates its owned agents; births and
   deaths are collected and applied globally in a deterministic order.

Per-worker compute and communication are measured and converted into virtual
time by the cluster cost model; throughput is reported in agent-ticks per
(virtual) second, the unit used by the paper's scale-up figures.  The agent
*states* produced are identical to a sequential run — this is checked by the
equivalence tests.

Worker phases execute through the configured executor backend in one of two
modes:

* **in place** (serial/thread backends, or ``resident_shards=False``): the
  driver holds every :class:`~repro.brace.worker.Worker`; the legacy process
  path pickles each worker's full owned+replica sets out per tick;
* **resident shards** (the default whenever the executor does not share the
  driver's memory): each worker lives durably inside an executor host
  process, and ticks exchange only *deltas* — migrations, boundary replicas
  and effect partials — so measured per-tick IPC scales with the partition
  boundary, not the world (see :mod:`repro.brace.shards`).

At epoch boundaries the master may rebalance the partitioning (Figures 7/8)
— physically moving agents between shards in resident mode — and trigger
coordinated checkpoints (which pull state from the shards), from which
:meth:`BraceRuntime.recover` restores after an injected failure by re-seeding
the shards from the restored world.
"""

from __future__ import annotations

import functools
import os
import time
from collections import Counter
from typing import Any

from repro.brace.checkpoint import FailureInjector
from repro.brace.config import BraceConfig
from repro.brace.master import Master, WorkerReport
from repro.brace.metrics import BraceRunMetrics, BraceTickStatistics, EpochStatistics
from repro.brace.replication import replication_targets
from repro.brace.shards import (
    BoundaryDelta,
    MapCommand,
    QueryCommand,
    RepartitionCommand,
    ShardSeed,
    UpdateCommand,
    make_resident_worker,
    shard_adopt_partitioning,
    shard_apply_boundary,
    shard_collect_coordinates,
    shard_collect_states,
    shard_install_owned,
    shard_map_phase,
    shard_query_phase,
    shard_restore_checkpoint,
    shard_retain_checkpoint,
    shard_update_phase,
)
from repro.brace.worker import Worker, run_query_phase_remote, run_update_phase_remote
from repro.cluster.costmodel import ClusterCostModel, WorkerTickCost
from repro.cluster.network import NetworkModel
from repro.cluster._simnode import SimulatedNode
from repro.core.context import UpdateContext
from repro.core.engine import apply_births_and_deaths
from repro.core.errors import BraceError, ExecutorError, NodeLossError
from repro.core.ordering import agent_sort_key
from repro.core.world import World
from repro.ipc import agent_frame_bytes, partial_frame_bytes, resolve_ipc_backend
from repro.ipc.frames import ColumnarCodec, concat_agent_chunks
from repro.mapreduce.executor import available_parallelism, make_executor
from repro.spatial.partitioning import StripPartitioning


class BraceRuntime:
    """Distributed (simulated) execution of a behavioral simulation."""

    def __init__(self, world: World, config: BraceConfig | None = None):
        self.world = world
        self.config = config or BraceConfig()
        self.config.validate()
        if world.bounds is None:
            raise BraceError("BRACE requires World.bounds to build its spatial partitioning")
        self.seed = self.config.seed if self.config.seed is not None else world.seed

        self.master = Master(self.config, world.bounds)
        self.workers: list[Worker] = [
            Worker(partition.partition_id, partition)
            for partition in self.master.partitioning.partitions()
        ]
        network = NetworkModel(
            latency_seconds=self.config.latency_seconds,
            bandwidth_bytes_per_second=self.config.bandwidth_bytes_per_second,
            nodes_per_switch=self.config.nodes_per_switch,
            inter_switch_penalty=self.config.inter_switch_penalty,
        )
        nodes = [
            SimulatedNode(worker.worker_id, self.config.work_units_per_second)
            for worker in self.workers
        ]
        self.cost_model = ClusterCostModel(
            network=network, nodes=nodes, barrier_seconds=self.config.barrier_seconds
        )
        self.metrics = BraceRunMetrics()

        max_workers = self.config.max_workers
        if max_workers is None:
            max_workers = max(1, min(self.config.num_workers, os.cpu_count() or 1))
        #: Execution backend running the per-worker query and update phases.
        #: The cluster backend is built directly so the config's topology
        #: knobs and the *same* network model that prices virtual time also
        #: drive the physical shard placement.
        if self.config.executor == "cluster":
            from repro.cluster.client import ClusterExecutor

            self.executor = ClusterExecutor(
                max_workers,
                num_nodes=self.config.cluster_nodes,
                listen=self.config.cluster_listen,
                spawn=self.config.cluster_spawn,
                heartbeat_interval=self.config.heartbeat_interval_seconds,
                heartbeat_timeout=self.config.heartbeat_timeout_seconds,
                secret=self.config.cluster_secret,
                readmission_timeout=self.config.readmission_timeout_seconds,
                network=network,
                sim_nodes=[
                    SimulatedNode(index, self.config.work_units_per_second)
                    for index in range(self.config.cluster_nodes)
                ],
            )
        else:
            self.executor = make_executor(self.config.executor, max_workers)

        #: Callbacks invoked with each epoch's :class:`EpochStatistics` right
        #: after the epoch boundary completes (load balancing, checkpointing
        #: and IPC accounting included).  The streaming session layer
        #: (:mod:`repro.api`) registers here to surface epoch and checkpoint
        #: events; anything driving :meth:`run_tick` directly may too.
        self.epoch_listeners: list = []
        #: Callbacks invoked as ``listener(world, restored_tick, failed_tick)``
        #: at the end of every successful :meth:`recover`, after the world has
        #: been rewound onto the checkpoint.  The persistent tick history
        #: registers here to truncate its recorded trajectory back to the
        #: restored tick before the re-executed ticks are recorded again.
        self.recovery_listeners: list = []

        #: Whether ticks run the resident-shard delta protocol.  ``None`` in
        #: the config resolves to "on exactly when the executor does not
        #: share the driver's memory" — i.e. the process backend.
        if self.config.resident_shards is None:
            self._resident = not self.executor.shares_memory
        else:
            self._resident = bool(self.config.resident_shards)
        #: Resolved wire format for the resident-shard delta protocol.
        #: ``None`` (auto) picks columnar frames exactly when deltas really
        #: cross a process boundary; a forced value wins either way.  The
        #: knob only matters to resident runs — non-resident ticks never
        #: serialize protocol payloads — so the codec stays unset for them.
        self._ipc_backend = resolve_ipc_backend(
            self.config.ipc_backend, self.executor.shares_memory, self._resident
        )
        self._codec = (
            ColumnarCodec()
            if (self._ipc_backend == "columnar" and self._resident)
            else None
        )
        #: Ship each frame as soon as it is encoded so hosts decode and
        #: compute while later frames still serialize.  Overlap only helps
        #: when driver and hosts can actually run simultaneously; on a
        #: single-CPU machine the eager submissions just add context
        #: switches, so it stays off there.
        self._overlap = self._codec is not None and available_parallelism() > 1
        #: Replica delta shipping: destinations retain last tick's replicas
        #: and receive only changed/removed rows.  Part of the columnar
        #: delta protocol, so it switches with the codec.
        self._replica_deltas = self._codec is not None
        self._shards_ready = False
        #: Births/deaths applied driver-side but not yet shipped to shards.
        self._pending_boundary: dict[int, BoundaryDelta] = {}
        #: True when shard-resident states are newer than the driver's world.
        self._world_dirty = False
        #: Bumped whenever the partitioning (or the physical shard layout)
        #: changes; part of the checkpoint stash tag so :meth:`recover`
        #: never restores a stashed epoch across a layout it predates.
        self._partitioning_version = 0
        #: ``(tick, partitioning_version)`` of the latest shard-local
        #: checkpoint stash, and the driver's ownership map at that instant
        #: (used to re-seed lost shards with their natural owned sets).
        self._stash_tag: tuple[int, int] | None = None
        self._checkpoint_ownership: dict[Any, int] | None = None
        #: Supervision events (node deaths, recoveries) drained from the
        #: executor; the session layer surfaces them on the run result.
        self.fault_events: list[dict] = []

        self._owner_of: dict[Any, int] = {}
        self._assign_initial_ownership()

        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = world.tick
        self._epoch_ipc_phase = self._zero_ipc_phase()

    @staticmethod
    def _zero_ipc_phase() -> dict[str, float]:
        return {"serialize": 0.0, "transport": 0.0, "compute": 0.0, "wait": 0.0}

    # ------------------------------------------------------------------
    # Ownership bookkeeping
    # ------------------------------------------------------------------
    def _assign_initial_ownership(self) -> None:
        for agent in self.world.agents():
            owner = self.master.partitioning.partition_of(agent.position())
            self.workers[owner].add_owned(agent)
            self._owner_of[agent.agent_id] = owner

    @property
    def resident(self) -> bool:
        """Whether ticks run the resident-shard delta protocol.

        This is the *resolved* value of :attr:`BraceConfig.resident_shards`:
        ``None`` (automatic) has already been turned into the actual choice —
        on exactly when the executor does not share the driver's memory.
        """
        return self._resident

    @property
    def ipc_backend(self) -> str:
        """The *resolved* wire format of the resident-shard protocol.

        ``BraceConfig.ipc_backend``'s ``None`` (automatic) has already been
        turned into the actual choice: ``"columnar"`` exactly when resident
        deltas cross a process boundary, ``"pickle"`` otherwise.  Forced
        values pass through — forcing ``"columnar"`` on a memory-sharing
        backend round-trips every delta through the frame codec in process,
        which is how the wire format is conformance-tested without pools.
        """
        return self._ipc_backend

    def worker_of(self, agent_id: Any) -> int:
        """Return the id of the worker currently owning ``agent_id``."""
        try:
            return self._owner_of[agent_id]
        except KeyError:
            raise BraceError(f"agent {agent_id} is not owned by any worker") from None

    def owned_counts(self) -> list[int]:
        """Number of owned agents per worker."""
        return [worker.owned_count() for worker in self.workers]

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    def run_tick(self) -> BraceTickStatistics:
        """Execute one distributed tick and return its statistics.

        Dispatches to the resident-shard delta protocol
        (:meth:`_run_tick_resident`) or the legacy in-place/ship-everything
        path (:meth:`_run_tick_inplace`); both produce bit-identical agent
        states and deterministic statistics.
        """
        if self._resident:
            return self._run_tick_resident()
        return self._run_tick_inplace()

    def _run_tick_inplace(self) -> BraceTickStatistics:
        """One tick with driver-held workers (serial/thread/legacy process)."""
        config = self.config
        world = self.world
        tick = world.tick
        network = self.cost_model.network
        wall_start = time.perf_counter()

        worker_costs = [WorkerTickCost(worker.worker_id) for worker in self.workers]
        num_agents = world.agent_count()

        # ------------------------------------------------------------------
        # Map phase: reset effects, migrate agents that changed partitions,
        # replicate agents into neighbouring partitions' visible regions.
        # ------------------------------------------------------------------
        for worker in self.workers:
            worker.clear_replicas()
            for agent in worker.owned_agents():
                agent.reset_effects()

        # Transfers are batched per (source, destination) pair per tick: a
        # worker sends one message containing every migrated agent, replica
        # or effect partial addressed to a given peer, as a real runtime would.
        migration_bytes: Counter = Counter()
        replication_bytes: Counter = Counter()

        agents_migrated = 0
        for worker in self.workers:
            # Harvest positions into the worker's tick cache (reused by the
            # query phase's columnar snapshot) and batch the ownership
            # lookups when the vectorized backend is in play.
            owned = worker.owned_agents()
            owners = worker._harvest_positions(
                owned, self.master.partitioning, config.spatial_backend, config.index
            )
            for agent, owner in zip(owned, owners):
                if owner != worker.worker_id:
                    worker.remove_owned(agent.agent_id)
                    self.workers[owner].add_owned(agent)
                    self._owner_of[agent.agent_id] = owner
                    migration_bytes[(worker.worker_id, owner)] += agent_frame_bytes(agent)
                    agents_migrated += 1

        replicas_created = 0
        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.map_work_units_per_agent * worker.owned_count()
            for agent in worker.owned_agents():
                size = agent_frame_bytes(agent)
                for target in replication_targets(agent, self.master.partitioning):
                    if target == worker.worker_id:
                        continue
                    self.workers[target].receive_replica(agent)
                    replication_bytes[(worker.worker_id, target)] += size
                    replicas_created += 1

        bytes_migrated = self._charge_transfers(migration_bytes, worker_costs, network)
        bytes_replicated = self._charge_transfers(replication_bytes, worker_costs, network)

        # ------------------------------------------------------------------
        # Reduce 1: query phase over owned agents (with replicas visible).
        # One task per worker, dispatched through the configured executor.
        # ------------------------------------------------------------------
        query_seconds = self._run_query_phases(tick)
        for worker in self.workers:
            worker_costs[worker.worker_id].work_units += worker.last_query_work_units

        # ------------------------------------------------------------------
        # Reduce 2: route non-local effect partials to their owners.
        # ------------------------------------------------------------------
        bytes_effects = 0
        if config.non_local_effects:
            effect_bytes: Counter = Counter()
            for worker in self.workers:
                for agent_id, partials in sorted(
                    worker.touched_replica_partials().items(),
                    key=lambda item: agent_sort_key(item[0]),
                ):
                    owner = self.worker_of(agent_id)
                    size = partial_frame_bytes(partials)
                    if owner != worker.worker_id:
                        effect_bytes[(worker.worker_id, owner)] += size
                    self.workers[owner].merge_remote_partials(agent_id, partials)
                    worker_costs[owner].work_units += len(partials)
            bytes_effects = self._charge_transfers(effect_bytes, worker_costs, network)
        else:
            for worker in self.workers:
                if worker.touched_replica_partials():
                    raise BraceError(
                        "the model assigned non-local effects but "
                        "BraceConfig.non_local_effects is False; enable the second "
                        "reduce pass or use an effect-inverted script"
                    )

        # ------------------------------------------------------------------
        # Update phase (the next tick's map task, executed at the boundary).
        # ------------------------------------------------------------------
        merged_updates = UpdateContext(tick=tick, seed=self.seed, world_bounds=world.bounds)
        update_seconds = self._run_update_phases(tick, merged_updates)
        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.update_work_units_per_agent * worker.owned_count()
            cost.agents_owned = worker.owned_count()

        spawned_agents, killed_ids = apply_births_and_deaths(world, merged_updates)
        for agent_id in killed_ids:
            owner = self._owner_of.pop(agent_id, None)
            if owner is not None and agent_id in self.workers[owner].owned:
                self.workers[owner].remove_owned(agent_id)
        for agent in spawned_agents:
            owner = self.master.partitioning.partition_of(agent.position())
            self.workers[owner].add_owned(agent)
            self._owner_of[agent.agent_id] = owner

        return self._finalize_tick(
            tick=tick,
            num_agents=num_agents,
            worker_costs=worker_costs,
            wall_start=wall_start,
            bytes_replicated=bytes_replicated,
            bytes_effects=bytes_effects,
            bytes_migrated=bytes_migrated,
            replicas_created=replicas_created,
            agents_migrated=agents_migrated,
            spawned=len(spawned_agents),
            killed=len(killed_ids),
            query_seconds=query_seconds,
            update_seconds=update_seconds,
        )

    def _run_tick_resident(self) -> BraceTickStatistics:
        """One tick of the resident-shard delta protocol.

        Three shard rounds — map/distribute, query, update — exchange only
        boundary deltas with the executor-hosted workers; the driver keeps
        shadow workers (membership and stale agent objects, no per-tick
        state) so ownership, load statistics and the cost model work exactly
        as in the in-place path.
        """
        config = self.config
        world = self.world
        tick = world.tick
        network = self.cost_model.network
        wall_start = time.perf_counter()

        self._ensure_shards()
        worker_costs = [WorkerTickCost(worker.worker_id) for worker in self.workers]
        num_agents = world.agent_count()
        ipc_sent = 0
        ipc_received = 0
        ipc_phase = self._zero_ipc_phase()

        # ------------------------------------------------------------------
        # Round 1 — map/distribute: each shard applies the previous tick's
        # births/deaths and computes its outgoing migrations and replicas.
        # ------------------------------------------------------------------
        pending, self._pending_boundary = self._pending_boundary, {}
        map_results = self._shard_round(
            [
                (
                    worker.worker_id,
                    shard_map_phase,
                    MapCommand(
                        boundary=pending.get(worker.worker_id),
                        spatial_backend=config.spatial_backend,
                        index=config.index,
                        # Crossing the process wire copies every outgoing
                        # agent anyway, so the shard can skip the clones.
                        clone_replicas=self.executor.shares_memory,
                        replica_deltas=self._replica_deltas,
                    ),
                )
                for worker in self.workers
            ],
            phase=ipc_phase,
        )
        ipc_sent += sum(result.payload_bytes for result in map_results)
        ipc_received += sum(result.result_bytes for result in map_results)

        migration_bytes: Counter = Counter()
        replication_bytes: Counter = Counter()
        agents_migrated = 0
        replicas_created = 0
        migrated_in: dict[int, list] = {worker.worker_id: [] for worker in self.workers}
        replicas_in: dict[int, list] = {worker.worker_id: [] for worker in self.workers}
        for result in map_results:
            source = result.shard_id
            plan = result.value
            for destination, agents in sorted(plan.migrations_out.items()):
                for agent in agents:
                    # Move the driver's (possibly stale) twin between shadow
                    # workers; forward the shard's fresh copy to its new home.
                    stale = self.workers[source].remove_owned(agent.agent_id)
                    self.workers[destination].add_owned(stale)
                    self._owner_of[agent.agent_id] = destination
                    migrated_in[destination].append(agent)
            for destination, replicas in sorted(plan.replicas_out.items()):
                # Each entry is a routed chunk: a plain agent list, or a
                # still-packed frame under the columnar codec (the driver
                # never looks inside replicas, so they stay packed).
                replicas_in[destination].append(replicas)
            migration_bytes.update(plan.migration_pair_bytes)
            replication_bytes.update(plan.replication_pair_bytes)
            agents_migrated += plan.agents_migrated
            replicas_created += plan.replicas_created

        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.map_work_units_per_agent * worker.owned_count()

        bytes_migrated = self._charge_transfers(migration_bytes, worker_costs, network)
        bytes_replicated = self._charge_transfers(replication_bytes, worker_costs, network)

        # ------------------------------------------------------------------
        # Round 2 — query phase: ship only the incoming deltas; get back only
        # the non-local partials (owned effects stay resident in the shard).
        # ------------------------------------------------------------------
        query_results = self._shard_round(
            [
                (
                    worker.worker_id,
                    shard_query_phase,
                    QueryCommand(
                        migrated_in=migrated_in[worker.worker_id],
                        # Delta chunks route as-is (one ReplicaDelta per
                        # source); full chunks concatenate per destination.
                        replicas_in=(
                            replicas_in[worker.worker_id]
                            if self._replica_deltas
                            else concat_agent_chunks(replicas_in[worker.worker_id])
                        ),
                        tick=tick,
                        seed=self.seed,
                        index=config.index,
                        cell_size=config.cell_size,
                        check_visibility=config.check_visibility,
                        spatial_backend=config.spatial_backend,
                        plan_backend=config.plan_backend,
                    ),
                )
                for worker in self.workers
            ],
            phase=ipc_phase,
        )
        ipc_sent += sum(result.payload_bytes for result in query_results)
        ipc_received += sum(result.result_bytes for result in query_results)
        query_seconds = [result.wall_seconds for result in query_results]
        for worker, result in zip(self.workers, query_results):
            worker.last_query_work_units = result.value.work_units
            worker.last_index_probes = result.value.index_probes
            worker_costs[worker.worker_id].work_units += result.value.work_units

        # ------------------------------------------------------------------
        # Reduce 2 — route partials driver-side in the same global order the
        # in-place path uses (source worker id, then agent sort key).
        # ------------------------------------------------------------------
        bytes_effects = 0
        routed: dict[int, list] = {worker.worker_id: [] for worker in self.workers}
        if config.non_local_effects:
            effect_bytes: Counter = Counter()
            for result in query_results:
                source = result.shard_id
                for agent_id, partials in sorted(
                    result.value.replica_partials.items(),
                    key=lambda item: agent_sort_key(item[0]),
                ):
                    owner = self.worker_of(agent_id)
                    size = partial_frame_bytes(partials)
                    if owner != source:
                        effect_bytes[(source, owner)] += size
                    routed[owner].append((agent_id, partials))
                    worker_costs[owner].work_units += len(partials)
            bytes_effects = self._charge_transfers(effect_bytes, worker_costs, network)
        else:
            for result in query_results:
                if result.value.replica_partials:
                    raise BraceError(
                        "the model assigned non-local effects but "
                        "BraceConfig.non_local_effects is False; enable the second "
                        "reduce pass or use an effect-inverted script"
                    )

        # ------------------------------------------------------------------
        # Round 3 — update phase: ship routed partials; get back only the
        # birth/death requests.  New agent states stay resident.
        # ------------------------------------------------------------------
        update_results = self._shard_round(
            [
                (
                    worker.worker_id,
                    shard_update_phase,
                    UpdateCommand(
                        partials=routed[worker.worker_id],
                        tick=tick,
                        seed=self.seed,
                        world_bounds=world.bounds,
                        plan_backend=config.plan_backend,
                    ),
                )
                for worker in self.workers
            ],
            phase=ipc_phase,
        )
        ipc_sent += sum(result.payload_bytes for result in update_results)
        ipc_received += sum(result.result_bytes for result in update_results)
        update_seconds = [result.wall_seconds for result in update_results]

        merged_updates = UpdateContext(tick=tick, seed=self.seed, world_bounds=world.bounds)
        for result in update_results:
            context = UpdateContext(tick=tick, seed=self.seed, world_bounds=world.bounds)
            context._spawn_requests = list(result.value.spawn_requests)
            context._kill_requests = set(result.value.kill_requests)
            merged_updates.merge(context)

        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.update_work_units_per_agent * worker.owned_count()
            cost.agents_owned = worker.owned_count()

        # Births and deaths are decided globally by the driver (deterministic
        # id allocation) and shipped to the shards with the next tick's map
        # command — or flushed eagerly if an epoch boundary needs them.
        spawned_agents, killed_ids = apply_births_and_deaths(world, merged_updates)
        for agent_id in killed_ids:
            owner = self._owner_of.pop(agent_id, None)
            if owner is not None:
                if agent_id in self.workers[owner].owned:
                    self.workers[owner].remove_owned(agent_id)
                self._boundary_for(owner).kill_ids.append(agent_id)
        for agent in spawned_agents:
            owner = self.master.partitioning.partition_of(agent.position())
            self.workers[owner].add_owned(agent)
            self._owner_of[agent.agent_id] = owner
            self._boundary_for(owner).spawn_agents.append(agent)

        self._world_dirty = True
        return self._finalize_tick(
            tick=tick,
            num_agents=num_agents,
            worker_costs=worker_costs,
            wall_start=wall_start,
            bytes_replicated=bytes_replicated,
            bytes_effects=bytes_effects,
            bytes_migrated=bytes_migrated,
            replicas_created=replicas_created,
            agents_migrated=agents_migrated,
            spawned=len(spawned_agents),
            killed=len(killed_ids),
            query_seconds=query_seconds,
            update_seconds=update_seconds,
            resident=True,
            ipc_bytes_sent=ipc_sent,
            ipc_bytes_received=ipc_received,
            ipc_phase=ipc_phase,
        )

    def _finalize_tick(
        self,
        *,
        tick: int,
        num_agents: int,
        worker_costs: list[WorkerTickCost],
        wall_start: float,
        bytes_replicated: int,
        bytes_effects: int,
        bytes_migrated: int,
        replicas_created: int,
        agents_migrated: int,
        spawned: int,
        killed: int,
        query_seconds: list[float],
        update_seconds: list[float],
        resident: bool = False,
        ipc_bytes_sent: int = 0,
        ipc_bytes_received: int = 0,
        ipc_phase: dict[str, float] | None = None,
    ) -> BraceTickStatistics:
        """Convert a tick's measurements into virtual time and statistics.

        Shared epilogue of both tick paths: charges the cost model, records
        the tick, advances the world clock and handles the epoch boundary.
        """
        config = self.config
        num_passes = 3 if config.non_local_effects else 2
        breakdown = self.cost_model.tick_cost(tick, worker_costs, num_passes=num_passes)
        owned_counts = self.owned_counts()
        wall_seconds = time.perf_counter() - wall_start
        self.world.tick += 1
        if ipc_phase is None:
            ipc_phase = self._zero_ipc_phase()

        stats = BraceTickStatistics(
            tick=tick,
            num_agents=num_agents,
            virtual_seconds=breakdown.total_seconds,
            wall_seconds=wall_seconds,
            compute_seconds=breakdown.compute_seconds,
            communication_seconds=breakdown.communication_seconds,
            synchronization_seconds=breakdown.synchronization_seconds,
            bytes_replicated=bytes_replicated,
            bytes_effects=bytes_effects,
            bytes_migrated=bytes_migrated,
            replicas_created=replicas_created,
            agents_migrated=agents_migrated,
            max_worker_agents=max(owned_counts) if owned_counts else 0,
            min_worker_agents=min(owned_counts) if owned_counts else 0,
            num_passes=num_passes,
            spawned=spawned,
            killed=killed,
            executor=self.executor.name,
            resident=resident,
            ipc_bytes_sent=ipc_bytes_sent,
            ipc_bytes_received=ipc_bytes_received,
            ipc_serialize_seconds=ipc_phase["serialize"],
            ipc_transport_seconds=ipc_phase["transport"],
            ipc_compute_seconds=ipc_phase["compute"],
            ipc_wait_seconds=ipc_phase["wait"],
            query_seconds_per_worker=query_seconds,
            update_seconds_per_worker=update_seconds,
        )
        self.metrics.add_tick(stats)

        self._epoch_ticks += 1
        self._epoch_virtual_seconds += stats.virtual_seconds
        self._epoch_wall_seconds += stats.wall_seconds
        self._epoch_agent_ticks += stats.agent_ticks
        for key in self._epoch_ipc_phase:
            self._epoch_ipc_phase[key] += ipc_phase[key]
        if self._epoch_ticks >= config.ticks_per_epoch:
            self._end_of_epoch()
        return stats

    def run(self, ticks: int) -> BraceRunMetrics:
        """Execute ``ticks`` distributed ticks.

        With resident shards the driver's world holds stale agent state
        while ticks run; the final states are pulled back once at the end
        (:meth:`sync_world`), so callers observe exactly what an in-place
        run would have produced.

        When checkpointing is on and a checkpoint exists, a supervised node
        loss (:class:`~repro.core.errors.NodeLossError`) is absorbed here:
        the run recovers from the last checkpoint and re-executes the lost
        ticks, raising only when no node survived, no checkpoint exists
        yet, or repeated losses stop the run from making progress.
        (:meth:`run_tick` itself always raises — callers driving ticks
        directly own their recovery policy.)
        """
        target_tick = self.world.tick + ticks
        best_tick = self.world.tick
        stalled_recoveries = 0
        while self.world.tick < target_tick:
            try:
                self.run_tick()
            except NodeLossError as error:
                if error.action == "lost":
                    raise  # no node survived; nothing to resume on
                if not (
                    self.config.checkpointing
                    and self.master.checkpoint_manager.has_checkpoint()
                ):
                    raise
                if self.world.tick > best_tick:
                    best_tick = self.world.tick
                    stalled_recoveries = 0
                stalled_recoveries += 1
                if stalled_recoveries > 3:
                    raise  # losing nodes faster than ticks re-execute
                self.recover()
        self.metrics.add_sync_ipc(self.sync_world())
        return self.metrics

    # ------------------------------------------------------------------
    # Phase dispatch through the executor
    # ------------------------------------------------------------------
    def _run_query_phases(self, tick: int) -> list[float]:
        """Run every worker's query phase; return per-worker wall seconds.

        With a memory-sharing backend (serial, thread) each task runs the
        phase in place on the worker's own agents.  With the process backend
        the worker's owned agents and replicas are shipped to a pool process
        and only the computed effects come back — the driver merges them into
        its copies, so the observable state is identical either way.
        """
        config = self.config
        if self.executor.shares_memory:
            tasks = [
                functools.partial(
                    worker.run_query_phase,
                    tick=tick,
                    seed=self.seed,
                    index=config.index,
                    cell_size=config.cell_size,
                    check_visibility=config.check_visibility,
                    spatial_backend=config.spatial_backend,
                    plan_backend=config.plan_backend,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
        else:
            tasks = [
                functools.partial(
                    run_query_phase_remote,
                    worker.worker_id,
                    worker.owned_agents(),
                    worker.replica_agents(),
                    tick,
                    self.seed,
                    config.index,
                    config.cell_size,
                    config.check_visibility,
                    config.spatial_backend,
                    config.plan_backend,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                self.workers[result.value.worker_id].apply_query_result(result.value)
        return [result.wall_seconds for result in results]

    def _run_update_phases(self, tick: int, merged_updates: UpdateContext) -> list[float]:
        """Run every worker's update phase; return per-worker wall seconds.

        Births and deaths are merged into ``merged_updates`` in worker-id
        order (results come back in submission order), so the global
        application at the tick boundary stays deterministic on every
        backend.
        """
        if self.executor.shares_memory:
            tasks = [
                functools.partial(
                    worker.run_update_phase,
                    tick=tick,
                    seed=self.seed,
                    world_bounds=self.world.bounds,
                    plan_backend=self.config.plan_backend,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                merged_updates.merge(result.value)
        else:
            tasks = [
                functools.partial(
                    run_update_phase_remote,
                    worker.worker_id,
                    worker.owned_agents(),
                    tick,
                    self.seed,
                    self.world.bounds,
                    self.config.plan_backend,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                context = self.workers[result.value.worker_id].apply_update_result(result.value)
                merged_updates.merge(context)
        return [result.wall_seconds for result in results]

    # ------------------------------------------------------------------
    # Resident-shard management
    # ------------------------------------------------------------------
    def _ensure_shards(self) -> None:
        """Seed the executor-hosted shards from the driver's workers (lazy).

        Ships each worker's partition, the current partitioning and its
        owned agents **once**; afterwards ticks exchange only deltas.  Called
        again after :meth:`recover` (shards are re-seeded from the restored
        world) or after an executor failure invalidated the shard state.
        """
        if self._shards_ready:
            return
        if self.executor.has_shards():
            self.executor.teardown_shards()
        payloads = {
            worker.worker_id: ShardSeed(
                partition=worker.partition,
                partitioning=self.master.partitioning,
                agents=worker.owned_agents(),
            )
            for worker in self.workers
        }
        self.executor.init_shards(make_resident_worker, payloads, codec=self._codec)
        self._shards_ready = True
        self._pending_boundary = {}
        self._world_dirty = False

    def _shard_round(self, tasks, phase: dict[str, float] | None = None):
        """One synchronized round of shard tasks, invalidating state on failure.

        When ``phase`` is given, the round's IPC phase breakdown accumulates
        into it: per-task serialize/transport seconds as measured at both
        ends, total task compute, and the *wait* residual — round wall clock
        not accounted for by serialization, transport, or the slowest task —
        which is the synchronization + pipe overhead the comm/compute
        overlap is meant to shrink.
        """
        start = time.perf_counter()
        results = self._shard_round_raw(tasks)
        if phase is not None:
            round_wall = time.perf_counter() - start
            serialize = sum(result.serialize_seconds for result in results)
            transport = sum(result.transport_seconds for result in results)
            slowest = max((result.wall_seconds for result in results), default=0.0)
            phase["serialize"] += serialize
            phase["transport"] += transport
            phase["compute"] += sum(result.wall_seconds for result in results)
            phase["wait"] += max(0.0, round_wall - serialize - transport - slowest)
        return results

    def _shard_round_raw(self, tasks):
        try:
            return self.executor.run_sharded_tasks(
                tasks, codec=self._codec, overlap=self._overlap
            )
        except NodeLossError:
            # A node died but the executor degraded instead of collapsing:
            # survivors keep their resident state (and their checkpoint
            # stash), only the dead node's shards await re-seeding.  Leave
            # the shards marked ready so :meth:`recover` can take the
            # partial path — the executor itself refuses to run another
            # round until the lost shards are re-seeded.
            self._drain_fault_events()
            raise
        except ExecutorError:
            # Whatever happened (a dead host, an unpicklable payload), the
            # resident state can no longer be trusted; force a re-seed before
            # the next tick runs.
            self._drain_fault_events()
            self._invalidate_shards()
            raise

    def _drain_fault_events(self) -> None:
        """Move supervision events from the executor onto the runtime."""
        drain = getattr(self.executor, "drain_fault_events", None)
        if drain is not None:
            self.fault_events.extend(drain())

    def _invalidate_shards(self) -> None:
        """Drop the executor-hosted shard state; the next tick re-seeds it."""
        try:
            self.executor.teardown_shards()
        finally:
            self._shards_ready = False
            self._pending_boundary = {}

    def _boundary_for(self, worker_id: int) -> BoundaryDelta:
        """The pending boundary delta for one shard, created on demand."""
        delta = self._pending_boundary.get(worker_id)
        if delta is None:
            delta = self._pending_boundary[worker_id] = BoundaryDelta()
        return delta

    def _flush_pending_boundary(self) -> int:
        """Ship pending births/deaths to their shards; returns IPC bytes.

        Normally the boundary rides along with the next tick's map command;
        epoch-boundary operations (coordinate pulls, repartitioning,
        checkpoints, final sync) need the shards' membership current *now*.
        """
        if not self._pending_boundary or not self._shards_ready:
            self._pending_boundary = {}
            return 0
        pending, self._pending_boundary = self._pending_boundary, {}
        results = self._shard_round(
            [
                (worker_id, shard_apply_boundary, delta)
                for worker_id, delta in sorted(pending.items())
            ]
        )
        return sum(result.payload_bytes + result.result_bytes for result in results)

    def sync_world(self) -> int:
        """Pull resident agent states back into the driver's world.

        Returns the measured IPC bytes the sync cost (0 when nothing had to
        be pulled — non-resident runs, or an already-clean world).  This is
        the one deliberately world-sized transfer of the resident protocol;
        it happens at the end of :meth:`run`, before checkpoints, and on
        demand — never per tick.
        """
        if not (self._resident and self._shards_ready and self._world_dirty):
            return 0
        ipc_bytes = self._flush_pending_boundary()
        results = self._shard_round(
            [(worker.worker_id, shard_collect_states, None) for worker in self.workers]
        )
        for result in results:
            for agent_id, state in result.value.items():
                if self.world.has_agent(agent_id):
                    self.world.get_agent(agent_id).set_state_dict(state)
        self._world_dirty = False
        return ipc_bytes + sum(
            result.payload_bytes + result.result_bytes for result in results
        )

    def _collect_axis_coordinates(self, axis: int) -> tuple[list[float], int]:
        """Balancing-axis coordinates of every agent, plus the IPC bytes paid.

        In-place runs read the driver's world; resident runs pull one float
        per agent from the shards — the per-epoch "statistics message" the
        paper's master receives from its slaves.
        """
        if not (self._resident and self._shards_ready):
            return [agent.position()[axis] for agent in self.world.agents()], 0
        results = self._shard_round(
            [(worker.worker_id, shard_collect_coordinates, axis) for worker in self.workers]
        )
        coordinates: list[float] = []
        for result in results:
            coordinates.extend(result.value)
        return coordinates, sum(
            result.payload_bytes + result.result_bytes for result in results
        )

    def suspend(self) -> None:
        """Pull resident state back and release the executor-hosted shards.

        After suspending, the driver's world holds the authoritative agent
        states and no simulation state lives inside the executor; the runtime
        stays fully usable — the next tick lazily re-seeds the shards.  This
        is the teardown half of the session layer's ``pause()``: a paused
        simulation occupies no pool-process memory.
        """
        self.metrics.add_sync_ipc(self.sync_world())
        if self._resident and self._shards_ready:
            self._invalidate_shards()

    def restore_world(self, snapshot: dict[str, Any]) -> None:
        """Reset the runtime onto a world snapshot taken at a tick boundary.

        The counterpart of :meth:`suspend` used by the session layer's
        ``resume()``: the world is restored exactly as checkpoint recovery
        does (same machinery), ownership is rebuilt from agent positions
        under the current partitioning, and any resident shard state is
        dropped so the next tick re-seeds from the restored agents.  Unlike
        :meth:`recover`, accumulated metrics and the current epoch's
        progress are kept — suspending is not a failure.
        """
        self.world.restore(snapshot)
        self._rebuild_ownership()
        if self._resident:
            self._invalidate_shards()
        self._world_dirty = False

    def close(self) -> None:
        """Sync any resident state back and release the executor's workers."""
        try:
            self.metrics.add_sync_ipc(self.sync_world())
        except ExecutorError:
            # Closing must succeed even when the pool already died; the
            # world then keeps its last synced states.
            pass
        finally:
            self.executor.shutdown()

    def __enter__(self) -> "BraceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _charge_transfers(
        pair_bytes: dict[tuple[int, int], int],
        worker_costs: list[WorkerTickCost],
        network: NetworkModel,
    ) -> int:
        """Charge one batched message per (source, destination) pair.

        Returns the total number of bytes that actually crossed node
        boundaries (same-node pairs are collocated and free).
        """
        remote_bytes = 0
        for (source, destination), num_bytes in sorted(pair_bytes.items()):
            seconds = network.transfer_seconds(source, destination, num_bytes)
            remote = source != destination
            worker_costs[source].add_send(num_bytes, remote=remote, seconds=seconds)
            worker_costs[destination].add_receive(num_bytes, remote=remote, seconds=seconds)
            if remote:
                remote_bytes += num_bytes
        return remote_bytes

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def _end_of_epoch(self) -> None:
        config = self.config
        epoch_ipc_bytes = 0
        if self._resident:
            # Shards must reflect this tick's births/deaths before the master
            # gathers statistics or moves agents around.
            epoch_ipc_bytes += self._flush_pending_boundary()
        reports = [
            WorkerReport(
                worker_id=worker.worker_id,
                owned_agents=worker.owned_count(),
                work_units=worker.last_query_work_units,
                bytes_sent=0,
            )
            for worker in self.workers
        ]
        coordinates, coordinate_ipc = self._collect_axis_coordinates(config.load_balance_axis)
        epoch_ipc_bytes += coordinate_ipc
        decision = self.master.end_of_epoch(reports, coordinates)

        rebalanced = False
        migrated_by_balancer = 0
        lb_seconds = 0.0
        if decision.load_balance is not None and decision.load_balance.rebalance:
            rebalanced = True
            if self._resident and self._shards_ready:
                migrated_by_balancer, lb_seconds, repartition_ipc = (
                    self._apply_new_partitioning_resident()
                )
                epoch_ipc_bytes += repartition_ipc
            else:
                migrated_by_balancer, lb_seconds = self._apply_new_partitioning()

        checkpointed = False
        checkpoint_bytes = 0
        checkpoint_seconds = 0.0
        if decision.checkpoint:
            checkpointed = True
            # Checkpoints pull state from the shards: the driver's world is
            # synced once, then snapshot exactly as an in-place run would.
            epoch_ipc_bytes += self.sync_world()
            checkpoint_bytes = sum(worker.checkpoint_size_bytes() for worker in self.workers)
            self.master.checkpoint_manager.take(self.world, self.master.epoch, checkpoint_bytes)
            epoch_ipc_bytes += self._stash_shard_checkpoints()
            checkpoint_seconds = max(
                (
                    self.cost_model.node(worker.worker_id).checkpoint_seconds(
                        worker.checkpoint_size_bytes()
                    )
                    for worker in self.workers
                ),
                default=0.0,
            )

        epoch_stats = EpochStatistics(
            epoch=self.master.epoch,
            first_tick=self._epoch_first_tick,
            ticks=self._epoch_ticks,
            virtual_seconds=self._epoch_virtual_seconds + lb_seconds + checkpoint_seconds,
            wall_seconds=self._epoch_wall_seconds,
            agent_ticks=self._epoch_agent_ticks,
            rebalanced=rebalanced,
            checkpointed=checkpointed,
            checkpoint_bytes=checkpoint_bytes,
            agents_migrated_by_balancer=migrated_by_balancer,
            ipc_bytes=epoch_ipc_bytes,
            ipc_serialize_seconds=self._epoch_ipc_phase["serialize"],
            ipc_transport_seconds=self._epoch_ipc_phase["transport"],
            ipc_compute_seconds=self._epoch_ipc_phase["compute"],
            ipc_wait_seconds=self._epoch_ipc_phase["wait"],
        )
        self.metrics.add_epoch(epoch_stats)
        for listener in self.epoch_listeners:
            listener(epoch_stats)

        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = self.world.tick
        self._epoch_ipc_phase = self._zero_ipc_phase()

    def _stash_shard_checkpoints(self) -> int:
        """Have every resident shard stash its own seed for this checkpoint.

        Only runs on executors that can lose a *subset* of their shards
        (``supports_partial_recovery``): after a node death the surviving
        shards rewind themselves from this stash in place, so recovery
        re-ships only the lost shards instead of tearing the cluster down.
        Returns the measured IPC bytes of the stash round.
        """
        if not (
            self._resident
            and self._shards_ready
            and getattr(self.executor, "supports_partial_recovery", False)
        ):
            return 0
        tag = (self.world.tick, self._partitioning_version)
        results = self._shard_round(
            [
                (worker.worker_id, shard_retain_checkpoint, {"tag": tag})
                for worker in self.workers
            ]
        )
        self._stash_tag = tag
        self._checkpoint_ownership = dict(self._owner_of)
        return sum(result.payload_bytes + result.result_bytes for result in results)

    def _apply_new_partitioning(self) -> tuple[int, float]:
        """Reassign ownership after the master adopted a new partitioning.

        Returns the number of migrated agents and the virtual time the
        migration cost (max over per-worker send/receive time).
        """
        network = self.cost_model.network
        partitioning = self.master.partitioning
        per_worker_seconds = [0.0] * len(self.workers)
        migrated = 0
        self._partitioning_version += 1

        for worker in self.workers:
            worker.partition = partitioning.partition(worker.worker_id)

        for worker in self.workers:
            for agent in worker.owned_agents():
                owner = partitioning.partition_of(agent.position())
                if owner != worker.worker_id:
                    worker.remove_owned(agent.agent_id)
                    self.workers[owner].add_owned(agent)
                    self._owner_of[agent.agent_id] = owner
                    size = agent_frame_bytes(agent)
                    seconds = network.transfer_seconds(worker.worker_id, owner, size)
                    per_worker_seconds[worker.worker_id] += seconds
                    per_worker_seconds[owner] += seconds
                    migrated += 1
        return migrated, max(per_worker_seconds, default=0.0)

    def _apply_new_partitioning_resident(
        self, rebalance_nodes: bool = True
    ) -> tuple[int, float, int]:
        """Physically move agents between shards after a rebalance.

        Two shard rounds: every shard adopts the new partitioning and hands
        back the agents that no longer belong to it; the driver routes them
        to their new shards (updating its shadow ownership and charging the
        cost model exactly like the in-place path) and installs them.
        Returns ``(agents migrated, virtual seconds, measured IPC bytes)``.
        """
        network = self.cost_model.network
        partitioning = self.master.partitioning
        per_worker_seconds = [0.0] * len(self.workers)
        migrated = 0
        ipc_bytes = 0
        # Ownership and shard placement are about to shuffle; any stashed
        # checkpoint epoch predates the new layout.
        self._partitioning_version += 1

        # Executors that place shards on physical nodes (the cluster
        # backend) get a chance to re-home shards for the new load before
        # the adopt round; the round then clears every shard's replica
        # cache and delta send history, which is exactly what makes the
        # re-homed shard (rebuilt without either) protocol-correct.
        if rebalance_nodes and hasattr(self.executor, "rebalance_shards"):
            weights = {
                worker.worker_id: float(max(1, worker.owned_count()))
                for worker in self.workers
            }
            _moves, moved_bytes = self.executor.rebalance_shards(weights)
            ipc_bytes += moved_bytes

        adopt_results = self._shard_round(
            [
                (
                    worker.worker_id,
                    shard_adopt_partitioning,
                    RepartitionCommand(
                        partitioning=partitioning,
                        partition=partitioning.partition(worker.worker_id),
                    ),
                )
                for worker in self.workers
            ]
        )
        ipc_bytes += sum(result.payload_bytes + result.result_bytes for result in adopt_results)
        for worker in self.workers:
            worker.partition = partitioning.partition(worker.worker_id)

        incoming: dict[int, list] = {worker.worker_id: [] for worker in self.workers}
        for result in adopt_results:
            source = result.shard_id
            for destination, agents in sorted(result.value.items()):
                for agent in agents:
                    stale = self.workers[source].remove_owned(agent.agent_id)
                    self.workers[destination].add_owned(stale)
                    self._owner_of[agent.agent_id] = destination
                    size = agent_frame_bytes(agent)
                    seconds = network.transfer_seconds(source, destination, size)
                    per_worker_seconds[source] += seconds
                    per_worker_seconds[destination] += seconds
                    migrated += 1
                    incoming[destination].append(agent)

        install_tasks = [
            (worker_id, shard_install_owned, agents)
            for worker_id, agents in sorted(incoming.items())
            if agents
        ]
        if install_tasks:
            install_results = self._shard_round(install_tasks)
            ipc_bytes += sum(
                result.payload_bytes + result.result_bytes for result in install_results
            )
        return migrated, max(per_worker_seconds, default=0.0), ipc_bytes

    def migrate_shard(self, shard_id: int, node: int) -> int:
        """Force one resident shard onto another physical node mid-run.

        Only meaningful on executors that place shards on nodes (the
        cluster backend).  The shard's owned agents are serialized through
        the codec, re-homed, and a full adopt round under the *current*
        partitioning follows so every shard reships its replicas from
        scratch — the same sequence an automatic rebalance uses.  States
        stay bit-identical; returns the measured IPC bytes the move cost.
        """
        if not hasattr(self.executor, "migrate_shard"):
            raise BraceError(
                f"the {self.executor.name!r} executor does not place shards on "
                "nodes; shard migration requires executor='cluster'"
            )
        if not self._resident:
            raise BraceError("shard migration requires resident shards")
        self._ensure_shards()
        ipc_bytes = self._flush_pending_boundary()
        ipc_bytes += self.executor.migrate_shard(shard_id, node)
        # Adopt under the current partitioning with the automatic node
        # rebalance suppressed, or the cost model could undo the forced
        # move before the replica caches are even reset.
        _migrated, _seconds, adopt_ipc = self._apply_new_partitioning_resident(
            rebalance_nodes=False
        )
        return ipc_bytes + adopt_ipc

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Restore the last coordinated checkpoint after a failure.

        Returns the number of ticks lost (to be re-executed).  Raises
        :class:`repro.core.errors.CheckpointError` when no checkpoint exists.
        """
        tick_before_failure = self.world.tick
        checkpoint = self.master.checkpoint_manager.restore_latest(self.world)
        ticks_lost = max(0, tick_before_failure - checkpoint.tick)
        restored_in_place = (
            self._resident
            and self._shards_ready
            and getattr(self.executor, "supports_partial_recovery", False)
            and self._recover_shards_in_place(checkpoint)
        )
        if not restored_in_place:
            self._rebuild_ownership()
            if self._resident:
                # Resident state died with the "failed" workers: drop the
                # shards and lazily re-seed them from the restored world
                # next tick.
                self._invalidate_shards()
                self._world_dirty = False
        # Any partially accumulated epoch is discarded along with the lost ticks.
        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = self.world.tick
        self._epoch_ipc_phase = self._zero_ipc_phase()
        self.fault_events.append(
            {
                "event": "recovered",
                "restored_tick": checkpoint.tick,
                "failed_tick": tick_before_failure,
                "ticks_lost": ticks_lost,
                "partial": bool(restored_in_place),
            }
        )
        for listener in self.recovery_listeners:
            listener(self.world, checkpoint.tick, tick_before_failure)
        return ticks_lost

    def _recover_shards_in_place(self, checkpoint) -> bool:
        """Partial recovery: rewind survivors shard-locally, re-ship only
        the lost shards.

        Valid only when the latest shard-local stash matches the restored
        checkpoint *and* the partitioning has not changed since it was
        taken.  The driver's shadow ownership is rebuilt from the map
        snapshotted at checkpoint time (the stashed shards hold exactly
        those owned sets — position-based reassignment would disagree with
        them for agents whose migration was still pending).  Returns False
        on any mismatch or mid-recovery failure; the caller then falls back
        to the full teardown-and-reseed path, which is always correct.
        """
        lost = set(getattr(self.executor, "lost_shards", lambda: ())())
        survivors = sorted(
            worker.worker_id for worker in self.workers if worker.worker_id not in lost
        )
        if not survivors:
            return False
        tag = (checkpoint.tick, self._partitioning_version)
        ownership = self._checkpoint_ownership
        if self._stash_tag != tag or ownership is None:
            return False
        for worker in self.workers:
            worker.owned.clear()
            worker._owned_sorted = None
            worker.clear_replicas()
        self._owner_of = dict(ownership)
        for agent_id, owner in ownership.items():
            if not self.world.has_agent(agent_id):
                return False  # snapshot disagrees with the restored world
            self.workers[owner].add_owned(self.world.get_agent(agent_id))
        try:
            # Lost shards first: the executor refuses ordinary rounds while
            # shards await re-seeding, and the survivors' restore *is* an
            # ordinary round.
            if lost:
                self.executor.reseed_shards(
                    {
                        shard_id: ShardSeed(
                            partition=self.workers[shard_id].partition,
                            partitioning=self.master.partitioning,
                            agents=self.workers[shard_id].owned_agents(),
                        )
                        for shard_id in sorted(lost)
                    }
                )
            restore_results = self._shard_round(
                [
                    (shard_id, shard_restore_checkpoint, {"tag": tag})
                    for shard_id in survivors
                ]
            )
        except ExecutorError:
            return False
        if not all(result.value.get("restored") for result in restore_results):
            return False
        self._pending_boundary = {}
        self._world_dirty = False
        return True

    def _rebuild_ownership(self) -> None:
        for worker in self.workers:
            worker.owned.clear()
            worker._owned_sorted = None
            worker.clear_replicas()
        self._owner_of.clear()
        self._assign_initial_ownership()

    def run_with_failures(self, ticks: int, injector: FailureInjector) -> BraceRunMetrics:
        """Run ``ticks`` ticks while the injector may fail any of them.

        A failed tick is thrown away: the world is restored from the last
        checkpoint and every tick since then (including the failed one) is
        re-executed — the paper's recovery-by-re-execution strategy.
        Failures that occur before the first checkpoint are ignored (there is
        nothing to rewind to yet).
        """
        if not self.config.checkpointing:
            raise BraceError("run_with_failures requires checkpointing to be enabled")
        target_tick = self.world.tick + ticks
        while self.world.tick < target_tick:
            if injector.should_fail() and self.master.checkpoint_manager.has_checkpoint():
                self.recover()
                continue
            self.run_tick()
        self.metrics.add_sync_ipc(self.sync_world())
        return self.metrics

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second, discarding ``skip_ticks`` warm-up ticks."""
        return self.metrics.throughput(skip_ticks)

    def __repr__(self) -> str:
        return (
            f"<BraceRuntime workers={len(self.workers)} tick={self.world.tick} "
            f"agents={self.world.agent_count()}>"
        )
