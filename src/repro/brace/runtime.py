"""The BRACE runtime: iterated map–reduce–reduce over a simulated cluster.

:class:`BraceRuntime` executes a :class:`~repro.core.world.World` tick by
tick the way the paper's runtime does:

1. **Map / distribution** — each worker migrates agents that left its
   partition and replicates its owned agents to every partition whose
   visible region contains them.  Thanks to collocation, agents that stay
   put never touch the network; only migrations and replicas do.
2. **Reduce 1 / query phase** — each worker joins its owned agents with the
   agents in its partition's visible region (owned + replicas) and runs the
   query phase, accumulating effects locally.
3. **Reduce 2 / effect aggregation** — only when the model performs
   non-local effect assignments: effect partials accumulated on replicas are
   routed to the owning workers and merged with the owners' accumulators.
4. **Update phase** — each worker updates its owned agents; births and
   deaths are collected and applied globally in a deterministic order.

Per-worker compute and communication are measured and converted into virtual
time by the cluster cost model; throughput is reported in agent-ticks per
(virtual) second, the unit used by the paper's scale-up figures.  The agent
*states* produced are identical to a sequential run — this is checked by the
equivalence tests.

At epoch boundaries the master may rebalance the partitioning (Figures 7/8)
and trigger coordinated checkpoints, from which :meth:`BraceRuntime.recover`
restores after an injected failure.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any

from repro.brace.checkpoint import FailureInjector
from repro.brace.config import BraceConfig
from repro.brace.master import Master, WorkerReport
from repro.brace.metrics import BraceRunMetrics, BraceTickStatistics, EpochStatistics
from repro.brace.replication import replication_targets
from repro.brace.worker import Worker, run_query_phase_remote, run_update_phase_remote
from repro.cluster.costmodel import ClusterCostModel, WorkerTickCost
from repro.cluster.network import NetworkModel
from repro.cluster.node import SimulatedNode
from repro.core.context import UpdateContext
from repro.core.engine import apply_births_and_deaths
from repro.core.errors import BraceError
from repro.core.world import World
from repro.mapreduce.executor import make_executor
from repro.spatial.partitioning import StripPartitioning


class BraceRuntime:
    """Distributed (simulated) execution of a behavioral simulation."""

    def __init__(self, world: World, config: BraceConfig | None = None):
        self.world = world
        self.config = config or BraceConfig()
        self.config.validate()
        if world.bounds is None:
            raise BraceError("BRACE requires World.bounds to build its spatial partitioning")
        self.seed = self.config.seed if self.config.seed is not None else world.seed

        self.master = Master(self.config, world.bounds)
        self.workers: list[Worker] = [
            Worker(partition.partition_id, partition)
            for partition in self.master.partitioning.partitions()
        ]
        network = NetworkModel(
            latency_seconds=self.config.latency_seconds,
            bandwidth_bytes_per_second=self.config.bandwidth_bytes_per_second,
            nodes_per_switch=self.config.nodes_per_switch,
            inter_switch_penalty=self.config.inter_switch_penalty,
        )
        nodes = [
            SimulatedNode(worker.worker_id, self.config.work_units_per_second)
            for worker in self.workers
        ]
        self.cost_model = ClusterCostModel(
            network=network, nodes=nodes, barrier_seconds=self.config.barrier_seconds
        )
        self.metrics = BraceRunMetrics()

        max_workers = self.config.max_workers
        if max_workers is None:
            max_workers = max(1, min(self.config.num_workers, os.cpu_count() or 1))
        #: Execution backend running the per-worker query and update phases.
        self.executor = make_executor(self.config.executor, max_workers)

        self._owner_of: dict[Any, int] = {}
        self._assign_initial_ownership()

        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = world.tick

    # ------------------------------------------------------------------
    # Ownership bookkeeping
    # ------------------------------------------------------------------
    def _assign_initial_ownership(self) -> None:
        for agent in self.world.agents():
            owner = self.master.partitioning.partition_of(agent.position())
            self.workers[owner].add_owned(agent)
            self._owner_of[agent.agent_id] = owner

    def worker_of(self, agent_id: Any) -> int:
        """Return the id of the worker currently owning ``agent_id``."""
        try:
            return self._owner_of[agent_id]
        except KeyError:
            raise BraceError(f"agent {agent_id} is not owned by any worker") from None

    def owned_counts(self) -> list[int]:
        """Number of owned agents per worker."""
        return [worker.owned_count() for worker in self.workers]

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    def run_tick(self) -> BraceTickStatistics:
        """Execute one distributed tick and return its statistics."""
        config = self.config
        world = self.world
        tick = world.tick
        network = self.cost_model.network
        wall_start = time.perf_counter()

        worker_costs = [WorkerTickCost(worker.worker_id) for worker in self.workers]
        num_agents = world.agent_count()

        # ------------------------------------------------------------------
        # Map phase: reset effects, migrate agents that changed partitions,
        # replicate agents into neighbouring partitions' visible regions.
        # ------------------------------------------------------------------
        for worker in self.workers:
            worker.clear_replicas()
            for agent in worker.owned_agents():
                agent.reset_effects()

        # Transfers are batched per (source, destination) pair per tick: a
        # worker sends one message containing every migrated agent, replica
        # or effect partial addressed to a given peer, as a real runtime would.
        migration_bytes: dict[tuple[int, int], int] = {}
        replication_bytes: dict[tuple[int, int], int] = {}

        agents_migrated = 0
        for worker in self.workers:
            for agent in worker.owned_agents():
                owner = self.master.partitioning.partition_of(agent.position())
                if owner != worker.worker_id:
                    worker.remove_owned(agent.agent_id)
                    self.workers[owner].add_owned(agent)
                    self._owner_of[agent.agent_id] = owner
                    size = agent.approximate_size_bytes()
                    pair = (worker.worker_id, owner)
                    migration_bytes[pair] = migration_bytes.get(pair, 0) + size
                    agents_migrated += 1

        replicas_created = 0
        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.map_work_units_per_agent * worker.owned_count()
            for agent in worker.owned_agents():
                for target in replication_targets(agent, self.master.partitioning):
                    if target == worker.worker_id:
                        continue
                    self.workers[target].receive_replica(agent)
                    size = agent.approximate_size_bytes()
                    pair = (worker.worker_id, target)
                    replication_bytes[pair] = replication_bytes.get(pair, 0) + size
                    replicas_created += 1

        bytes_migrated = self._charge_transfers(migration_bytes, worker_costs, network)
        bytes_replicated = self._charge_transfers(replication_bytes, worker_costs, network)

        # ------------------------------------------------------------------
        # Reduce 1: query phase over owned agents (with replicas visible).
        # One task per worker, dispatched through the configured executor.
        # ------------------------------------------------------------------
        query_seconds = self._run_query_phases(tick)
        for worker in self.workers:
            worker_costs[worker.worker_id].work_units += worker.last_query_work_units

        # ------------------------------------------------------------------
        # Reduce 2: route non-local effect partials to their owners.
        # ------------------------------------------------------------------
        bytes_effects = 0
        if config.non_local_effects:
            effect_bytes: dict[tuple[int, int], int] = {}
            for worker in self.workers:
                for agent_id, partials in sorted(
                    worker.touched_replica_partials().items(), key=lambda item: repr(item[0])
                ):
                    owner = self.worker_of(agent_id)
                    size = 16 + 8 * len(partials)
                    if owner != worker.worker_id:
                        pair = (worker.worker_id, owner)
                        effect_bytes[pair] = effect_bytes.get(pair, 0) + size
                    self.workers[owner].merge_remote_partials(agent_id, partials)
                    worker_costs[owner].work_units += len(partials)
            bytes_effects = self._charge_transfers(effect_bytes, worker_costs, network)
        else:
            for worker in self.workers:
                if worker.touched_replica_partials():
                    raise BraceError(
                        "the model assigned non-local effects but "
                        "BraceConfig.non_local_effects is False; enable the second "
                        "reduce pass or use an effect-inverted script"
                    )

        # ------------------------------------------------------------------
        # Update phase (the next tick's map task, executed at the boundary).
        # ------------------------------------------------------------------
        merged_updates = UpdateContext(tick=tick, seed=self.seed, world_bounds=world.bounds)
        update_seconds = self._run_update_phases(tick, merged_updates)
        for worker in self.workers:
            cost = worker_costs[worker.worker_id]
            cost.work_units += config.update_work_units_per_agent * worker.owned_count()
            cost.agents_owned = worker.owned_count()

        spawned_agents, killed_ids = apply_births_and_deaths(world, merged_updates)
        for agent_id in killed_ids:
            owner = self._owner_of.pop(agent_id, None)
            if owner is not None and agent_id in self.workers[owner].owned:
                self.workers[owner].remove_owned(agent_id)
        for agent in spawned_agents:
            owner = self.master.partitioning.partition_of(agent.position())
            self.workers[owner].add_owned(agent)
            self._owner_of[agent.agent_id] = owner

        # ------------------------------------------------------------------
        # Virtual time and statistics.
        # ------------------------------------------------------------------
        num_passes = 3 if config.non_local_effects else 2
        breakdown = self.cost_model.tick_cost(tick, worker_costs, num_passes=num_passes)
        owned_counts = self.owned_counts()
        wall_seconds = time.perf_counter() - wall_start
        world.tick += 1

        stats = BraceTickStatistics(
            tick=tick,
            num_agents=num_agents,
            virtual_seconds=breakdown.total_seconds,
            wall_seconds=wall_seconds,
            compute_seconds=breakdown.compute_seconds,
            communication_seconds=breakdown.communication_seconds,
            synchronization_seconds=breakdown.synchronization_seconds,
            bytes_replicated=bytes_replicated,
            bytes_effects=bytes_effects,
            bytes_migrated=bytes_migrated,
            replicas_created=replicas_created,
            agents_migrated=agents_migrated,
            max_worker_agents=max(owned_counts) if owned_counts else 0,
            min_worker_agents=min(owned_counts) if owned_counts else 0,
            num_passes=num_passes,
            spawned=len(spawned_agents),
            killed=len(killed_ids),
            executor=self.executor.name,
            query_seconds_per_worker=query_seconds,
            update_seconds_per_worker=update_seconds,
        )
        self.metrics.add_tick(stats)

        self._epoch_ticks += 1
        self._epoch_virtual_seconds += stats.virtual_seconds
        self._epoch_wall_seconds += stats.wall_seconds
        self._epoch_agent_ticks += stats.agent_ticks
        if self._epoch_ticks >= config.ticks_per_epoch:
            self._end_of_epoch()
        return stats

    def run(self, ticks: int) -> BraceRunMetrics:
        """Execute ``ticks`` distributed ticks."""
        for _ in range(ticks):
            self.run_tick()
        return self.metrics

    # ------------------------------------------------------------------
    # Phase dispatch through the executor
    # ------------------------------------------------------------------
    def _run_query_phases(self, tick: int) -> list[float]:
        """Run every worker's query phase; return per-worker wall seconds.

        With a memory-sharing backend (serial, thread) each task runs the
        phase in place on the worker's own agents.  With the process backend
        the worker's owned agents and replicas are shipped to a pool process
        and only the computed effects come back — the driver merges them into
        its copies, so the observable state is identical either way.
        """
        config = self.config
        if self.executor.shares_memory:
            tasks = [
                functools.partial(
                    worker.run_query_phase,
                    tick=tick,
                    seed=self.seed,
                    index=config.index,
                    cell_size=config.cell_size,
                    check_visibility=config.check_visibility,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
        else:
            tasks = [
                functools.partial(
                    run_query_phase_remote,
                    worker.worker_id,
                    worker.owned_agents(),
                    worker.replica_agents(),
                    tick,
                    self.seed,
                    config.index,
                    config.cell_size,
                    config.check_visibility,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                self.workers[result.value.worker_id].apply_query_result(result.value)
        return [result.wall_seconds for result in results]

    def _run_update_phases(self, tick: int, merged_updates: UpdateContext) -> list[float]:
        """Run every worker's update phase; return per-worker wall seconds.

        Births and deaths are merged into ``merged_updates`` in worker-id
        order (results come back in submission order), so the global
        application at the tick boundary stays deterministic on every
        backend.
        """
        if self.executor.shares_memory:
            tasks = [
                functools.partial(
                    worker.run_update_phase,
                    tick=tick,
                    seed=self.seed,
                    world_bounds=self.world.bounds,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                merged_updates.merge(result.value)
        else:
            tasks = [
                functools.partial(
                    run_update_phase_remote,
                    worker.worker_id,
                    worker.owned_agents(),
                    tick,
                    self.seed,
                    self.world.bounds,
                )
                for worker in self.workers
            ]
            results = self.executor.run_tasks(tasks)
            for result in results:
                context = self.workers[result.value.worker_id].apply_update_result(result.value)
                merged_updates.merge(context)
        return [result.wall_seconds for result in results]

    def close(self) -> None:
        """Release pooled executor workers (no-op for the serial backend)."""
        self.executor.shutdown()

    def __enter__(self) -> "BraceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _charge_transfers(
        pair_bytes: dict[tuple[int, int], int],
        worker_costs: list[WorkerTickCost],
        network: NetworkModel,
    ) -> int:
        """Charge one batched message per (source, destination) pair.

        Returns the total number of bytes that actually crossed node
        boundaries (same-node pairs are collocated and free).
        """
        remote_bytes = 0
        for (source, destination), num_bytes in sorted(pair_bytes.items()):
            seconds = network.transfer_seconds(source, destination, num_bytes)
            remote = source != destination
            worker_costs[source].add_send(num_bytes, remote=remote, seconds=seconds)
            worker_costs[destination].add_receive(num_bytes, remote=remote, seconds=seconds)
            if remote:
                remote_bytes += num_bytes
        return remote_bytes

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def _end_of_epoch(self) -> None:
        config = self.config
        reports = [
            WorkerReport(
                worker_id=worker.worker_id,
                owned_agents=worker.owned_count(),
                work_units=worker.last_query_work_units,
                bytes_sent=0,
            )
            for worker in self.workers
        ]
        axis = config.load_balance_axis
        coordinates = [agent.position()[axis] for agent in self.world.agents()]
        decision = self.master.end_of_epoch(reports, coordinates)

        rebalanced = False
        migrated_by_balancer = 0
        lb_seconds = 0.0
        if decision.load_balance is not None and decision.load_balance.rebalance:
            rebalanced = True
            migrated_by_balancer, lb_seconds = self._apply_new_partitioning()

        checkpointed = False
        checkpoint_bytes = 0
        checkpoint_seconds = 0.0
        if decision.checkpoint:
            checkpointed = True
            checkpoint_bytes = sum(worker.checkpoint_size_bytes() for worker in self.workers)
            self.master.checkpoint_manager.take(self.world, self.master.epoch, checkpoint_bytes)
            checkpoint_seconds = max(
                (
                    self.cost_model.node(worker.worker_id).checkpoint_seconds(
                        worker.checkpoint_size_bytes()
                    )
                    for worker in self.workers
                ),
                default=0.0,
            )

        epoch_stats = EpochStatistics(
            epoch=self.master.epoch,
            first_tick=self._epoch_first_tick,
            ticks=self._epoch_ticks,
            virtual_seconds=self._epoch_virtual_seconds + lb_seconds + checkpoint_seconds,
            wall_seconds=self._epoch_wall_seconds,
            agent_ticks=self._epoch_agent_ticks,
            rebalanced=rebalanced,
            checkpointed=checkpointed,
            checkpoint_bytes=checkpoint_bytes,
            agents_migrated_by_balancer=migrated_by_balancer,
        )
        self.metrics.add_epoch(epoch_stats)

        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = self.world.tick

    def _apply_new_partitioning(self) -> tuple[int, float]:
        """Reassign ownership after the master adopted a new partitioning.

        Returns the number of migrated agents and the virtual time the
        migration cost (max over per-worker send/receive time).
        """
        network = self.cost_model.network
        partitioning = self.master.partitioning
        per_worker_seconds = [0.0] * len(self.workers)
        migrated = 0

        for worker in self.workers:
            worker.partition = partitioning.partition(worker.worker_id)

        for worker in self.workers:
            for agent in worker.owned_agents():
                owner = partitioning.partition_of(agent.position())
                if owner != worker.worker_id:
                    worker.remove_owned(agent.agent_id)
                    self.workers[owner].add_owned(agent)
                    self._owner_of[agent.agent_id] = owner
                    size = agent.approximate_size_bytes()
                    seconds = network.transfer_seconds(worker.worker_id, owner, size)
                    per_worker_seconds[worker.worker_id] += seconds
                    per_worker_seconds[owner] += seconds
                    migrated += 1
        return migrated, max(per_worker_seconds, default=0.0)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Restore the last coordinated checkpoint after a failure.

        Returns the number of ticks lost (to be re-executed).  Raises
        :class:`repro.core.errors.CheckpointError` when no checkpoint exists.
        """
        tick_before_failure = self.world.tick
        checkpoint = self.master.checkpoint_manager.restore_latest(self.world)
        ticks_lost = max(0, tick_before_failure - checkpoint.tick)
        self._rebuild_ownership()
        # Any partially accumulated epoch is discarded along with the lost ticks.
        self._epoch_ticks = 0
        self._epoch_virtual_seconds = 0.0
        self._epoch_wall_seconds = 0.0
        self._epoch_agent_ticks = 0
        self._epoch_first_tick = self.world.tick
        return ticks_lost

    def _rebuild_ownership(self) -> None:
        for worker in self.workers:
            worker.owned.clear()
            worker.clear_replicas()
        self._owner_of.clear()
        self._assign_initial_ownership()

    def run_with_failures(self, ticks: int, injector: FailureInjector) -> BraceRunMetrics:
        """Run ``ticks`` ticks while the injector may fail any of them.

        A failed tick is thrown away: the world is restored from the last
        checkpoint and every tick since then (including the failed one) is
        re-executed — the paper's recovery-by-re-execution strategy.
        Failures that occur before the first checkpoint are ignored (there is
        nothing to rewind to yet).
        """
        if not self.config.checkpointing:
            raise BraceError("run_with_failures requires checkpointing to be enabled")
        target_tick = self.world.tick + ticks
        while self.world.tick < target_tick:
            if injector.should_fail() and self.master.checkpoint_manager.has_checkpoint():
                self.recover()
                continue
            self.run_tick()
        return self.metrics

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second, discarding ``skip_ticks`` warm-up ticks."""
        return self.metrics.throughput(skip_ticks)

    def __repr__(self) -> str:
        return (
            f"<BraceRuntime workers={len(self.workers)} tick={self.world.tick} "
            f"agents={self.world.agent_count()}>"
        )
