"""Spatial distribution and replication of agents (the BRACE map task).

The map task of every tick assigns each agent to the partition owning its
location and replicates it to every other partition whose *visible region*
contains it, so that each reducer can run the query phase of its owned agents
without any further communication (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.agent import Agent
from repro.spatial.partitioning import SpatialPartitioning


@dataclass
class DistributionPlan:
    """The outcome of distributing one worker's agents for a tick.

    ``owner_of`` maps agent id to owning partition; ``replicas`` maps a
    destination partition to the agents that must be replicated there (agents
    it does not own but whose position falls in its visible region).
    """

    owner_of: dict[Any, int] = field(default_factory=dict)
    replicas: dict[int, list[Agent]] = field(default_factory=dict)
    replica_count: int = 0

    def add_replica(self, partition_id: int, agent: Agent) -> None:
        """Record that ``partition_id`` needs a replica of ``agent``."""
        self.replicas.setdefault(partition_id, []).append(agent)
        self.replica_count += 1


def replication_targets(agent: Agent, partitioning: SpatialPartitioning) -> list[int]:
    """Every partition whose visible region contains ``agent`` (including its owner).

    Agents with unbounded visibility must be replicated everywhere — the
    degenerate case the neighborhood property exists to avoid.
    """
    radii = agent.visibility_radii()
    if not radii or any(radius is None for radius in radii):
        return [part.partition_id for part in partitioning.partitions()]
    return partitioning.replication_targets(agent.position(), list(radii))


def distribute_agents(
    agents: list[Agent], partitioning: SpatialPartitioning
) -> DistributionPlan:
    """Compute owners and replication targets for ``agents``.

    Replicas are *not* cloned here; the plan only names which agent goes
    where so the runtime can account for the communication before paying the
    copy cost.
    """
    plan = DistributionPlan()
    for agent in agents:
        owner = partitioning.partition_of(agent.position())
        plan.owner_of[agent.agent_id] = owner
        for partition_id in replication_targets(agent, partitioning):
            if partition_id != owner:
                plan.add_replica(partition_id, agent)
    return plan
