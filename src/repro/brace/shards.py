"""The resident-shard protocol: what crosses the driver/shard boundary.

With ``BraceConfig.resident_shards`` enabled (the default on the process
backend), each executor host process durably hosts one or more
:class:`~repro.brace.worker.Worker` objects across ticks — the paper's
collocation argument made literal.  The driver never ships a worker's owned
agents per tick; instead each tick exchanges three **deltas**, one shard
round per phase:

1. :func:`shard_map_phase` — the shard applies the previous boundary's
   births/deaths, resets effects, and computes its outgoing migrations and
   boundary replicas locally (:meth:`Worker.distribute`).  Only agents that
   actually crossed a partition boundary come back.
2. :func:`shard_query_phase` — the driver routes the migrated agents and
   replica clones in; the shard joins owned + replicas and runs the query
   phase.  Only the *non-local* effect partials accumulated on replicas come
   back; owned effects stay resident.
3. :func:`shard_update_phase` — the driver routes each shard the remote
   partials addressed to it (in the global deterministic order); the shard
   merges them and runs the update phase.  Only birth/death requests come
   back; the new states stay resident.

Epoch-boundary operations (:func:`shard_collect_coordinates` for the load
balancer, :func:`shard_collect_states` for checkpoints and driver sync,
:func:`shard_adopt_partitioning` / :func:`shard_install_owned` for physical
repartitioning) pull state on demand, exactly as the paper's master talks to
its slaves once per epoch.

Every function here is module-level and every command/result dataclass is
picklable, as the process executor requires; all of them also run unchanged
against in-process shards (``resident_shards=True`` on the serial or thread
backend), which is how the protocol is tested without pool overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.brace.worker import DistributionResult, Worker
from repro.core.agent import Agent
from repro.core.soa import pack_cells, unpack_cells
from repro.ipc import frames as ipc_frames
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import Partition, SpatialPartitioning


# ---------------------------------------------------------------------------
# Commands (driver -> shard) and results (shard -> driver)
# ---------------------------------------------------------------------------


@dataclass
class ShardSeed:
    """Initial payload hosting one worker inside a shard (shipped once)."""

    partition: Partition
    partitioning: SpatialPartitioning
    agents: list[Agent]


@dataclass
class BoundaryDelta:
    """Births and deaths a shard must apply at a tick boundary."""

    kill_ids: list[Any] = field(default_factory=list)
    spawn_agents: list[Agent] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when there is nothing to apply."""
        return not self.kill_ids and not self.spawn_agents


@dataclass
class MapCommand:
    """Round 1 input: the previous tick's boundary delta (if any).

    ``spatial_backend``/``index`` select how the shard routes ownership
    during its local distribution — when they resolve to the vectorized
    backend, the shard packs the owned positions into the tick's columnar
    cache and resolves owners in one batched lookup; the rows are then
    reused by the query round's snapshot.
    """

    boundary: BoundaryDelta | None = None
    spatial_backend: str | None = None
    index: str | None = "kdtree"
    #: False when every boundary crossing is a real copy anyway (the process
    #: backend's wire), letting the shard skip the per-replica clone.
    clone_replicas: bool = True
    #: True to ship replicas as per-destination deltas
    #: (:class:`repro.ipc.frames.ReplicaDelta`) against what each
    #: destination already holds, instead of the full set every tick.
    replica_deltas: bool = False


@dataclass
class QueryCommand:
    """Round 2 input: incoming deltas plus the query-phase parameters.

    ``replicas_in`` is a flat agent list on the memory-sharing path; under
    the columnar codec the driver routes replicas as still-packed frames,
    so it may arrive as an :class:`repro.ipc.frames.AgentChunks` that the
    shard (or the wire decode) flattens.
    """

    migrated_in: list[Agent]
    replicas_in: Any
    tick: int
    seed: int
    index: str | None
    cell_size: float | None
    check_visibility: bool
    spatial_backend: str | None = None
    plan_backend: str | None = None


@dataclass
class QueryResult:
    """Round 2 output: non-local partials and work accounting only."""

    #: ``agent_id -> touched effect accumulators`` for hosted replicas.
    replica_partials: dict[Any, dict[str, Any]]
    work_units: float
    index_probes: int


@dataclass
class UpdateCommand:
    """Round 3 input: routed remote partials plus update-phase parameters.

    ``partials`` preserves the driver's global routing order (worker id,
    then :func:`~repro.core.ordering.agent_sort_key`), so combinator merges
    happen in the same order on every backend.
    """

    partials: list[tuple[Any, dict[str, Any]]]
    tick: int
    seed: int
    world_bounds: BBox | None
    plan_backend: str | None = None


@dataclass
class UpdateResult:
    """Round 3 output: birth/death requests only; states stay resident."""

    spawn_requests: list[tuple[Any, int, Any]]
    kill_requests: set[Any]


@dataclass
class RepartitionCommand:
    """Epoch-boundary input adopting a rebalanced partitioning."""

    partitioning: SpatialPartitioning
    partition: Partition


# ---------------------------------------------------------------------------
# Shard-side entry points (module-level, picklable by reference)
# ---------------------------------------------------------------------------


def make_resident_worker(shard_id: int, seed: ShardSeed) -> Worker:
    """Shard factory: build the resident :class:`Worker` from its seed."""
    worker = Worker(shard_id, seed.partition, partitioning=seed.partitioning)
    for agent in seed.agents:
        worker.add_owned(agent)
    return worker


def shard_map_phase(worker: Worker, command: MapCommand) -> DistributionResult:
    """Round 1: apply the boundary delta, then distribute locally."""
    if command.boundary is not None:
        worker.apply_boundary(command.boundary.kill_ids, command.boundary.spawn_agents)
    return worker.distribute(
        spatial_backend=command.spatial_backend,
        index=command.index,
        clone_replicas=command.clone_replicas,
        replica_deltas=command.replica_deltas,
    )


def shard_query_phase(worker: Worker, command: QueryCommand) -> QueryResult:
    """Round 2: install incoming deltas and run the query phase."""
    for agent in command.migrated_in:
        worker.add_owned(agent)
    replicas_in = command.replicas_in
    if isinstance(replicas_in, ipc_frames.AgentChunks):
        replicas_in = replicas_in.unpack()
    if worker._replica_delta_mode:
        deltas = replicas_in or ()
        # Removals strictly before additions: after a rebalance the old
        # owner's removal and the new owner's addition for the same agent
        # can arrive in the same tick.
        for delta in deltas:
            for agent_id in delta.removed_ids:
                worker.discard_replica(agent_id)
        # Retained replicas carry last tick's effect assignments; reset
        # them to match what a freshly shipped clone would hold.
        for replica in worker.replicas.values():
            if replica._effects_touched:
                replica.reset_effects()
        for delta in deltas:
            additions = delta.additions
            if isinstance(additions, ipc_frames.LazyAgentFrame):
                additions = additions.unpack()
            for replica in additions:
                worker.install_replica(replica)
    else:
        for replica in replicas_in:
            worker.install_replica(replica)
    worker.run_query_phase(
        tick=command.tick,
        seed=command.seed,
        index=command.index,
        cell_size=command.cell_size,
        check_visibility=command.check_visibility,
        spatial_backend=command.spatial_backend,
        plan_backend=command.plan_backend,
    )
    return QueryResult(
        replica_partials=worker.touched_replica_partials(),
        work_units=worker.last_query_work_units,
        index_probes=worker.last_index_probes,
    )


def shard_update_phase(worker: Worker, command: UpdateCommand) -> UpdateResult:
    """Round 3: merge routed partials (in order) and run the update phase."""
    for agent_id, partials in command.partials:
        worker.merge_remote_partials(agent_id, partials)
    context = worker.run_update_phase(
        tick=command.tick,
        seed=command.seed,
        world_bounds=command.world_bounds,
        plan_backend=command.plan_backend,
    )
    return UpdateResult(
        spawn_requests=context.spawn_requests,
        kill_requests=context.kill_requests,
    )


def shard_apply_boundary(worker: Worker, delta: BoundaryDelta) -> int:
    """Flush a pending boundary delta outside the tick loop (epoch events)."""
    return worker.apply_boundary(delta.kill_ids, delta.spawn_agents)


def shard_collect_states(worker: Worker, _payload: Any = None) -> dict[Any, dict[str, Any]]:
    """Pull every owned agent's state (driver sync, checkpoints)."""
    return worker.collect_states()


def shard_collect_coordinates(worker: Worker, axis: int) -> list[float]:
    """Pull owned positions along the balancing axis (epoch statistics)."""
    return worker.collect_coordinates(axis)


def shard_adopt_partitioning(
    worker: Worker, command: RepartitionCommand
) -> dict[int, list[Agent]]:
    """Adopt a rebalanced partitioning; return agents leaving this shard."""
    return worker.adopt_partitioning(command.partitioning, command.partition)


def shard_install_owned(worker: Worker, agents: list[Agent]) -> int:
    """Install agents migrated in by a repartitioning; returns the owned count."""
    return worker.install_owned(agents)


#: How many stashed checkpoint epochs a resident shard keeps.  Two covers
#: the window where the runtime is taking a new checkpoint while the
#: previous one is still the latest restorable epoch.
STASH_KEEP = 2


def shard_retain_checkpoint(worker: Worker, payload: dict) -> int:
    """Stash this shard's seed under a checkpoint tag, shard-locally.

    Called by the runtime at every checkpoint boundary so that if a
    *different* node later dies, this surviving shard can rewind itself
    in place (:func:`shard_restore_checkpoint`) instead of being torn
    down and re-shipped from the driver.  The seed is pickled now —
    future ticks mutate the live agents, a stashed epoch must not move
    with them.  Returns the stashed byte count.
    """
    import pickle

    tag = payload["tag"]
    blob = pickle.dumps(worker.migration_seed(), pickle.HIGHEST_PROTOCOL)
    worker.checkpoint_stash[tag] = blob
    while len(worker.checkpoint_stash) > STASH_KEEP:
        worker.checkpoint_stash.pop(next(iter(worker.checkpoint_stash)))
    return len(blob)


def shard_restore_checkpoint(worker: Worker, payload: dict) -> dict:
    """Rewind this shard to a stashed checkpoint epoch, in place.

    Returns ``{"restored": False}`` when the tag is not stashed (the
    caller falls back to a full re-seed, which is always correct).  On a
    hit the worker is rebuilt exactly as :func:`make_resident_worker`
    would from a fresh seed — the stashed seed is unpickled and the
    worker's entire ``__dict__`` swapped for the fresh build's, so the
    rewind is equivalent to re-seeding over the wire and stays correct
    for any future :class:`Worker` field.  The stash itself survives the
    swap (the same checkpoint may be restored again after a second
    failure).
    """
    import pickle

    tag = payload["tag"]
    blob = worker.checkpoint_stash.get(tag)
    if blob is None:
        return {"restored": False}
    fresh = make_resident_worker(worker.worker_id, pickle.loads(blob))
    stash = worker.checkpoint_stash
    worker.__dict__.clear()
    worker.__dict__.update(fresh.__dict__)
    worker.checkpoint_stash = stash
    return {"restored": True}


# ---------------------------------------------------------------------------
# Columnar wire transforms
# ---------------------------------------------------------------------------
# The protocol types above register how their bulk payloads pack into the
# columnar delta frames of :mod:`repro.ipc.frames`.  The registrations live
# here — with the types they describe — so the codec never imports upward,
# and importing this module (which both driver and shard hosts do to name
# the shard entry points) is what arms the codec on each side.


def _pack_agent_map(agent_map: dict) -> list:
    """Pack ``destination -> agents`` into ``(destination, frame)`` pairs.

    Destination lists holding the *same object sequence* — what
    ``distribute(clone_replicas=False)`` produces when an agent replicates
    to every neighbour — are packed once and share one frame, so both the
    pack pass and the pickled bytes scale with distinct agents, not with
    ``agents × destinations`` (pickle's memo dedupes the shared frame's
    buffers on the wire).
    """
    memo: dict = {}

    def shared_frame(agents):
        if isinstance(agents, ipc_frames.LazyAgentFrame):
            return agents.frame
        identity = tuple(map(id, agents))
        frame = memo.get(identity)
        if frame is None:
            frame = memo[identity] = ipc_frames.pack_agents(agents)
        return frame

    payload = []
    for key, agents in agent_map.items():
        if isinstance(agents, ipc_frames.ReplicaDelta):
            entry = ("delta", shared_frame(agents.additions), pack_cells(agents.removed_ids))
        else:
            entry = shared_frame(agents)
        payload.append((key, entry))
    return payload


def _unpack_agent_map(payload: list) -> dict:
    return {key: ipc_frames.unpack_agents(frame) for key, frame in payload}


def _lazy_agent_map(payload: list) -> dict:
    """Decode an agent map without unpacking its frames.

    Used for the replica map: the driver only concatenates replica lists
    per destination, so the frames stay packed end-to-end and are re-emitted
    verbatim into the next query command (see
    :class:`repro.ipc.frames.LazyAgentFrame`).  Delta-mode entries decode
    to :class:`repro.ipc.frames.ReplicaDelta` with their additions frame
    kept packed the same way.
    """
    decoded = {}
    for key, entry in payload:
        if type(entry) is tuple and entry[0] == "delta":
            decoded[key] = ipc_frames.ReplicaDelta(
                ipc_frames.LazyAgentFrame(entry[1]), unpack_cells(entry[2])
            )
        else:
            decoded[key] = ipc_frames.LazyAgentFrame(entry)
    return decoded


def _pack_agent_chunks(replicas) -> tuple:
    """Pack routed replica chunks, re-emitting already-packed frames."""
    if isinstance(replicas, list) and any(
        isinstance(chunk, ipc_frames.ReplicaDelta) for chunk in replicas
    ):
        return (
            "deltas",
            [
                (
                    delta.additions.frame
                    if isinstance(delta.additions, ipc_frames.LazyAgentFrame)
                    else ipc_frames.pack_agents(delta.additions),
                    pack_cells(delta.removed_ids),
                )
                for delta in replicas
            ],
        )
    if isinstance(replicas, ipc_frames.AgentChunks):
        return (
            "frames",
            [
                chunk.frame
                if isinstance(chunk, ipc_frames.LazyAgentFrame)
                else ipc_frames.pack_agents(chunk)
                for chunk in replicas.chunks
            ],
        )
    return ("frames", [ipc_frames.pack_agents(replicas)])


def _unpack_agent_chunks(payload: tuple):
    kind, entries = payload
    if kind == "deltas":
        return [
            ipc_frames.ReplicaDelta(
                ipc_frames.LazyAgentFrame(frame), unpack_cells(removed)
            )
            for frame, removed in entries
        ]
    agents: list = []
    for frame in entries:
        agents.extend(ipc_frames.unpack_agents(frame))
    return agents


def _encode_seed(seed: ShardSeed) -> tuple:
    return (seed.partition, seed.partitioning, ipc_frames.pack_agents(seed.agents))


def _decode_seed(payload: tuple) -> ShardSeed:
    partition, partitioning, agents = payload
    return ShardSeed(partition, partitioning, ipc_frames.unpack_agents(agents))


def _encode_boundary(delta: BoundaryDelta) -> tuple:
    return (
        pack_cells(delta.kill_ids),
        ipc_frames.pack_agents(delta.spawn_agents),
    )


def _decode_boundary(payload: tuple) -> BoundaryDelta:
    kill_ids, spawn_agents = payload
    return BoundaryDelta(unpack_cells(kill_ids), ipc_frames.unpack_agents(spawn_agents))


def _encode_map_command(command: MapCommand) -> tuple:
    boundary = command.boundary
    return (
        None if boundary is None else _encode_boundary(boundary),
        command.spatial_backend,
        command.index,
        command.clone_replicas,
        command.replica_deltas,
    )


def _decode_map_command(payload: tuple) -> MapCommand:
    boundary, spatial_backend, index, clone_replicas, replica_deltas = payload
    return MapCommand(
        None if boundary is None else _decode_boundary(boundary),
        spatial_backend,
        index,
        clone_replicas,
        replica_deltas,
    )


def _encode_distribution(result: DistributionResult) -> tuple:
    return (
        _pack_agent_map(result.migrations_out),
        _pack_agent_map(result.replicas_out),
        result.migration_pair_bytes,
        result.replication_pair_bytes,
        result.agents_migrated,
        result.replicas_created,
    )


def _decode_distribution(payload: tuple) -> DistributionResult:
    migrations, replicas, migration_bytes, replication_bytes, migrated, created = payload
    return DistributionResult(
        _unpack_agent_map(migrations),
        _lazy_agent_map(replicas),
        migration_bytes,
        replication_bytes,
        migrated,
        created,
    )


def _encode_query_command(command: QueryCommand) -> tuple:
    return (
        ipc_frames.pack_agents(command.migrated_in),
        _pack_agent_chunks(command.replicas_in),
        command.tick,
        command.seed,
        command.index,
        command.cell_size,
        command.check_visibility,
        command.spatial_backend,
        command.plan_backend,
    )


def _decode_query_command(payload: tuple) -> QueryCommand:
    migrated_in, replica_frames = payload[0], payload[1]
    return QueryCommand(
        ipc_frames.unpack_agents(migrated_in),
        _unpack_agent_chunks(replica_frames),
        *payload[2:],
    )


def _encode_query_result(result: QueryResult) -> tuple:
    return (
        ipc_frames.pack_mapping_rows(list(result.replica_partials.items())),
        result.work_units,
        result.index_probes,
    )


def _decode_query_result(payload: tuple) -> QueryResult:
    partials, work_units, index_probes = payload
    return QueryResult(
        dict(ipc_frames.unpack_mapping_rows(partials)), work_units, index_probes
    )


def _encode_update_command(command: UpdateCommand) -> tuple:
    return (
        ipc_frames.pack_mapping_rows(command.partials),
        command.tick,
        command.seed,
        command.world_bounds,
        command.plan_backend,
    )


def _decode_update_command(payload: tuple) -> UpdateCommand:
    return UpdateCommand(ipc_frames.unpack_mapping_rows(payload[0]), *payload[1:])


def _encode_update_result(result: UpdateResult) -> tuple:
    parents = pack_cells([parent for parent, _, _ in result.spawn_requests])
    sequences = pack_cells([sequence for _, sequence, _ in result.spawn_requests])
    children = ipc_frames.pack_agents([child for _, _, child in result.spawn_requests])
    return (parents, sequences, children, list(result.kill_requests))


def _decode_update_result(payload: tuple) -> UpdateResult:
    parents, sequences, children, kill_requests = payload
    spawn_requests = list(
        zip(
            unpack_cells(parents),
            unpack_cells(sequences),
            ipc_frames.unpack_agents(children),
        )
    )
    return UpdateResult(spawn_requests, set(kill_requests))


ipc_frames.register_wire_type(ShardSeed, "shard-seed", _encode_seed, _decode_seed)
ipc_frames.register_wire_type(
    BoundaryDelta, "boundary-delta", _encode_boundary, _decode_boundary
)
ipc_frames.register_wire_type(
    MapCommand, "map-command", _encode_map_command, _decode_map_command
)
ipc_frames.register_wire_type(
    DistributionResult, "distribution", _encode_distribution, _decode_distribution
)
ipc_frames.register_wire_type(
    QueryCommand, "query-command", _encode_query_command, _decode_query_command
)
ipc_frames.register_wire_type(
    QueryResult, "query-result", _encode_query_result, _decode_query_result
)
ipc_frames.register_wire_type(
    UpdateCommand, "update-command", _encode_update_command, _decode_update_command
)
ipc_frames.register_wire_type(
    UpdateResult, "update-result", _encode_update_result, _decode_update_result
)
