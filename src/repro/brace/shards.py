"""The resident-shard protocol: what crosses the driver/shard boundary.

With ``BraceConfig.resident_shards`` enabled (the default on the process
backend), each executor host process durably hosts one or more
:class:`~repro.brace.worker.Worker` objects across ticks — the paper's
collocation argument made literal.  The driver never ships a worker's owned
agents per tick; instead each tick exchanges three **deltas**, one shard
round per phase:

1. :func:`shard_map_phase` — the shard applies the previous boundary's
   births/deaths, resets effects, and computes its outgoing migrations and
   boundary replicas locally (:meth:`Worker.distribute`).  Only agents that
   actually crossed a partition boundary come back.
2. :func:`shard_query_phase` — the driver routes the migrated agents and
   replica clones in; the shard joins owned + replicas and runs the query
   phase.  Only the *non-local* effect partials accumulated on replicas come
   back; owned effects stay resident.
3. :func:`shard_update_phase` — the driver routes each shard the remote
   partials addressed to it (in the global deterministic order); the shard
   merges them and runs the update phase.  Only birth/death requests come
   back; the new states stay resident.

Epoch-boundary operations (:func:`shard_collect_coordinates` for the load
balancer, :func:`shard_collect_states` for checkpoints and driver sync,
:func:`shard_adopt_partitioning` / :func:`shard_install_owned` for physical
repartitioning) pull state on demand, exactly as the paper's master talks to
its slaves once per epoch.

Every function here is module-level and every command/result dataclass is
picklable, as the process executor requires; all of them also run unchanged
against in-process shards (``resident_shards=True`` on the serial or thread
backend), which is how the protocol is tested without pool overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.brace.worker import DistributionResult, Worker
from repro.core.agent import Agent
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import Partition, SpatialPartitioning


# ---------------------------------------------------------------------------
# Commands (driver -> shard) and results (shard -> driver)
# ---------------------------------------------------------------------------


@dataclass
class ShardSeed:
    """Initial payload hosting one worker inside a shard (shipped once)."""

    partition: Partition
    partitioning: SpatialPartitioning
    agents: list[Agent]


@dataclass
class BoundaryDelta:
    """Births and deaths a shard must apply at a tick boundary."""

    kill_ids: list[Any] = field(default_factory=list)
    spawn_agents: list[Agent] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when there is nothing to apply."""
        return not self.kill_ids and not self.spawn_agents


@dataclass
class MapCommand:
    """Round 1 input: the previous tick's boundary delta (if any).

    ``spatial_backend``/``index`` select how the shard routes ownership
    during its local distribution — when they resolve to the vectorized
    backend, the shard packs the owned positions into the tick's columnar
    cache and resolves owners in one batched lookup; the rows are then
    reused by the query round's snapshot.
    """

    boundary: BoundaryDelta | None = None
    spatial_backend: str | None = None
    index: str | None = "kdtree"


@dataclass
class QueryCommand:
    """Round 2 input: incoming deltas plus the query-phase parameters."""

    migrated_in: list[Agent]
    replicas_in: list[Agent]
    tick: int
    seed: int
    index: str | None
    cell_size: float | None
    check_visibility: bool
    spatial_backend: str | None = None
    plan_backend: str | None = None


@dataclass
class QueryResult:
    """Round 2 output: non-local partials and work accounting only."""

    #: ``agent_id -> touched effect accumulators`` for hosted replicas.
    replica_partials: dict[Any, dict[str, Any]]
    work_units: float
    index_probes: int


@dataclass
class UpdateCommand:
    """Round 3 input: routed remote partials plus update-phase parameters.

    ``partials`` preserves the driver's global routing order (worker id,
    then :func:`~repro.core.ordering.agent_sort_key`), so combinator merges
    happen in the same order on every backend.
    """

    partials: list[tuple[Any, dict[str, Any]]]
    tick: int
    seed: int
    world_bounds: BBox | None
    plan_backend: str | None = None


@dataclass
class UpdateResult:
    """Round 3 output: birth/death requests only; states stay resident."""

    spawn_requests: list[tuple[Any, int, Any]]
    kill_requests: set[Any]


@dataclass
class RepartitionCommand:
    """Epoch-boundary input adopting a rebalanced partitioning."""

    partitioning: SpatialPartitioning
    partition: Partition


# ---------------------------------------------------------------------------
# Shard-side entry points (module-level, picklable by reference)
# ---------------------------------------------------------------------------


def make_resident_worker(shard_id: int, seed: ShardSeed) -> Worker:
    """Shard factory: build the resident :class:`Worker` from its seed."""
    worker = Worker(shard_id, seed.partition, partitioning=seed.partitioning)
    for agent in seed.agents:
        worker.add_owned(agent)
    return worker


def shard_map_phase(worker: Worker, command: MapCommand) -> DistributionResult:
    """Round 1: apply the boundary delta, then distribute locally."""
    if command.boundary is not None:
        worker.apply_boundary(command.boundary.kill_ids, command.boundary.spawn_agents)
    return worker.distribute(
        spatial_backend=command.spatial_backend, index=command.index
    )


def shard_query_phase(worker: Worker, command: QueryCommand) -> QueryResult:
    """Round 2: install incoming deltas and run the query phase."""
    for agent in command.migrated_in:
        worker.add_owned(agent)
    for replica in command.replicas_in:
        worker.install_replica(replica)
    worker.run_query_phase(
        tick=command.tick,
        seed=command.seed,
        index=command.index,
        cell_size=command.cell_size,
        check_visibility=command.check_visibility,
        spatial_backend=command.spatial_backend,
        plan_backend=command.plan_backend,
    )
    return QueryResult(
        replica_partials=worker.touched_replica_partials(),
        work_units=worker.last_query_work_units,
        index_probes=worker.last_index_probes,
    )


def shard_update_phase(worker: Worker, command: UpdateCommand) -> UpdateResult:
    """Round 3: merge routed partials (in order) and run the update phase."""
    for agent_id, partials in command.partials:
        worker.merge_remote_partials(agent_id, partials)
    context = worker.run_update_phase(
        tick=command.tick,
        seed=command.seed,
        world_bounds=command.world_bounds,
        plan_backend=command.plan_backend,
    )
    return UpdateResult(
        spawn_requests=context.spawn_requests,
        kill_requests=context.kill_requests,
    )


def shard_apply_boundary(worker: Worker, delta: BoundaryDelta) -> int:
    """Flush a pending boundary delta outside the tick loop (epoch events)."""
    return worker.apply_boundary(delta.kill_ids, delta.spawn_agents)


def shard_collect_states(worker: Worker, _payload: Any = None) -> dict[Any, dict[str, Any]]:
    """Pull every owned agent's state (driver sync, checkpoints)."""
    return worker.collect_states()


def shard_collect_coordinates(worker: Worker, axis: int) -> list[float]:
    """Pull owned positions along the balancing axis (epoch statistics)."""
    return worker.collect_coordinates(axis)


def shard_adopt_partitioning(
    worker: Worker, command: RepartitionCommand
) -> dict[int, list[Agent]]:
    """Adopt a rebalanced partitioning; return agents leaving this shard."""
    return worker.adopt_partitioning(command.partitioning, command.partition)


def shard_install_owned(worker: Worker, agents: list[Agent]) -> int:
    """Install agents migrated in by a repartitioning; returns the owned count."""
    return worker.install_owned(agents)
