"""Throughput and epoch statistics for BRACE runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapreduce.executor import wall_clock_imbalance


@dataclass
class BraceTickStatistics:
    """Measurements for one distributed tick."""

    tick: int
    num_agents: int
    virtual_seconds: float
    wall_seconds: float
    compute_seconds: float
    communication_seconds: float
    synchronization_seconds: float
    bytes_replicated: int
    bytes_effects: int
    bytes_migrated: int
    replicas_created: int
    agents_migrated: int
    max_worker_agents: int
    min_worker_agents: int
    num_passes: int
    spawned: int = 0
    killed: int = 0
    #: Executor backend that ran the worker phases ("serial", "thread", "process").
    executor: str = "serial"
    #: True when the tick ran the resident-shard delta protocol.
    resident: bool = False
    #: Measured bytes the driver actually shipped to shards this tick
    #: (pickled payload sizes; 0 on memory-sharing backends).  Unlike the
    #: modeled ``bytes_*`` fields these are real bytes on the wire, so they
    #: are *not* part of the cross-backend determinism contract.
    ipc_bytes_sent: int = 0
    #: Measured bytes shards shipped back to the driver this tick.
    ipc_bytes_received: int = 0
    #: Measured seconds spent encoding/decoding shard payloads and results
    #: this tick, both ends summed over the three rounds.  Like the
    #: ``ipc_bytes_*`` measurements (and unlike the modeled ``*_seconds``
    #: fields above), the phase breakdown is real wall clock, so it is *not*
    #: part of the cross-backend determinism contract.
    ipc_serialize_seconds: float = 0.0
    #: Measured seconds moving encoded frames through shared memory
    #: (parking/mapping at both ends; 0 on the pipe and in-process paths).
    ipc_transport_seconds: float = 0.0
    #: Measured seconds of shard task bodies, summed across workers.
    ipc_compute_seconds: float = 0.0
    #: Measured round residual: wall clock not covered by serialization,
    #: transport, or the slowest task — synchronization and pipe overhead,
    #: the share that comm/compute overlap shrinks.
    ipc_wait_seconds: float = 0.0
    #: Wall-clock seconds each worker's query phase took, indexed by worker id.
    query_seconds_per_worker: list[float] = field(default_factory=list)
    #: Wall-clock seconds each worker's update phase took, indexed by worker id.
    update_seconds_per_worker: list[float] = field(default_factory=list)

    @property
    def agent_ticks(self) -> int:
        """Agent-ticks processed during this tick."""
        return self.num_agents

    @property
    def imbalance(self) -> float:
        """Ratio of the largest to the smallest owned set (>= 1)."""
        if self.min_worker_agents <= 0:
            return float("inf") if self.max_worker_agents > 0 else 1.0
        return self.max_worker_agents / self.min_worker_agents

    @property
    def query_wall_imbalance(self) -> float:
        """Max-over-mean wall-clock ratio across the workers' query phases.

        The observable form of load imbalance: 1.0 means every partition's
        query phase took equally long; large values mean stragglers dominate
        the tick (the condition the Figure 7/8 load balancer reacts to).
        """
        return wall_clock_imbalance(self.query_seconds_per_worker)

    @property
    def update_wall_imbalance(self) -> float:
        """Max-over-mean wall-clock ratio across the workers' update phases."""
        return wall_clock_imbalance(self.update_seconds_per_worker)

    @property
    def ipc_bytes_total(self) -> int:
        """Measured driver<->shard bytes for this tick (both directions)."""
        return self.ipc_bytes_sent + self.ipc_bytes_received

    @property
    def ipc_overhead_seconds(self) -> float:
        """Non-compute IPC seconds this tick (serialize + transport + wait)."""
        return (
            self.ipc_serialize_seconds
            + self.ipc_transport_seconds
            + self.ipc_wait_seconds
        )


@dataclass
class EpochStatistics:
    """Measurements for one epoch (a fixed number of ticks)."""

    epoch: int
    first_tick: int
    ticks: int
    virtual_seconds: float
    wall_seconds: float
    agent_ticks: int
    rebalanced: bool
    checkpointed: bool
    checkpoint_bytes: int
    agents_migrated_by_balancer: int
    #: Measured driver<->shard bytes spent on epoch-boundary coordination
    #: (boundary flush, coordinate pull, repartition moves, checkpoint sync).
    ipc_bytes: int = 0
    #: Per-phase IPC seconds summed over the epoch's ticks (measured wall
    #: clock, not part of the determinism contract — see the tick fields).
    ipc_serialize_seconds: float = 0.0
    ipc_transport_seconds: float = 0.0
    ipc_compute_seconds: float = 0.0
    ipc_wait_seconds: float = 0.0

    @property
    def seconds_per_epoch(self) -> float:
        """Virtual time this epoch took (the y-axis of Figure 8)."""
        return self.virtual_seconds


@dataclass
class BraceRunMetrics:
    """Accumulated statistics for a whole BRACE run."""

    ticks: list[BraceTickStatistics] = field(default_factory=list)
    epochs: list[EpochStatistics] = field(default_factory=list)
    #: Measured driver<->shard bytes spent pulling full world state outside
    #: epoch boundaries (end-of-run sync, on-demand ``sync_world`` calls).
    sync_ipc_bytes: int = 0

    def add_tick(self, stats: BraceTickStatistics) -> None:
        """Record one tick."""
        self.ticks.append(stats)

    def add_sync_ipc(self, num_bytes: int) -> None:
        """Record measured bytes of an out-of-band world sync."""
        self.sync_ipc_bytes += num_bytes

    def add_epoch(self, stats: EpochStatistics) -> None:
        """Record one epoch."""
        self.epochs.append(stats)

    @property
    def total_virtual_seconds(self) -> float:
        """Virtual time across all recorded ticks."""
        return sum(t.virtual_seconds for t in self.ticks)

    @property
    def total_wall_seconds(self) -> float:
        """Wall-clock time across all recorded ticks."""
        return sum(t.wall_seconds for t in self.ticks)

    @property
    def total_agent_ticks(self) -> int:
        """Agent-ticks across all recorded ticks."""
        return sum(t.agent_ticks for t in self.ticks)

    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second (the paper's scale-up metric).

        ``skip_ticks`` discards start-up transients, as the paper does.
        """
        ticks = self.ticks[skip_ticks:]
        seconds = sum(t.virtual_seconds for t in ticks)
        agent_ticks = sum(t.agent_ticks for t in ticks)
        if seconds <= 0:
            return 0.0
        return agent_ticks / seconds

    def wall_throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per wall-clock second."""
        ticks = self.ticks[skip_ticks:]
        seconds = sum(t.wall_seconds for t in ticks)
        agent_ticks = sum(t.agent_ticks for t in ticks)
        if seconds <= 0:
            return 0.0
        return agent_ticks / seconds

    def epoch_times(self) -> list[float]:
        """Virtual seconds per epoch, in epoch order (Figure 8's series)."""
        return [epoch.virtual_seconds for epoch in self.epochs]

    def total_bytes_over_network(self) -> int:
        """Replication + effect + migration bytes that crossed node boundaries."""
        return sum(t.bytes_replicated + t.bytes_effects + t.bytes_migrated for t in self.ticks)

    def total_ipc_bytes(self) -> int:
        """Measured driver<->shard bytes across every tick and epoch boundary.

        Real pickled payload/result sizes (not the cost model's estimates);
        0 unless the run used a backend that crosses a process boundary.
        Includes per-tick rounds, epoch-boundary coordination and
        out-of-band world syncs.
        """
        tick_bytes = sum(t.ipc_bytes_total for t in self.ticks)
        return tick_bytes + sum(e.ipc_bytes for e in self.epochs) + self.sync_ipc_bytes

    def mean_ipc_bytes_per_tick(self, skip_ticks: int = 0) -> float:
        """Average measured driver<->shard bytes per tick (epoch traffic excluded)."""
        ticks = self.ticks[skip_ticks:]
        if not ticks:
            return 0.0
        return sum(t.ipc_bytes_total for t in ticks) / len(ticks)

    def ipc_phase_breakdown(self, skip_ticks: int = 0) -> dict[str, float]:
        """Summed per-tick IPC phase seconds: serialize/transport/compute/wait.

        The observable form of the wire format's cost structure: the pickle
        protocol spends its time in ``serialize``; the columnar shm path
        shifts it into (much smaller) ``transport`` and overlapped ``wait``.
        All measured wall clock — compare across runs, not across backends'
        determinism contract.
        """
        ticks = self.ticks[skip_ticks:]
        return {
            "serialize": sum(t.ipc_serialize_seconds for t in ticks),
            "transport": sum(t.ipc_transport_seconds for t in ticks),
            "compute": sum(t.ipc_compute_seconds for t in ticks),
            "wait": sum(t.ipc_wait_seconds for t in ticks),
        }

    def mean_query_wall_imbalance(self, skip_ticks: int = 0) -> float:
        """Average per-tick query-phase wall-clock imbalance (load-skew indicator)."""
        ticks = self.ticks[skip_ticks:]
        if not ticks:
            return 1.0
        return sum(t.query_wall_imbalance for t in ticks) / len(ticks)
