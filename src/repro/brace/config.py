"""Configuration of the BRACE runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import BraceError


@dataclass
class BraceConfig:
    """Every knob of the BRACE runtime.

    Parameters mirror the design choices described in Section 3.3 of the
    paper: number of workers, epoch length, spatial index used inside the
    query phase, whether the model needs the second reduce pass (non-local
    effects), load balancing and checkpointing.

    The cluster-model parameters at the bottom control the virtual-time cost
    model used for the scale-up experiments.
    """

    # Parallelism and partitioning --------------------------------------
    num_workers: int = 4
    partitioning: str = "strip"  # "strip" (1-D, load-balanceable) or "grid"
    grid_cells: Sequence[int] | None = None  # for "grid": cells per dimension
    load_balance_axis: int = 0

    # Execution backend ---------------------------------------------------
    #: How worker phases actually execute: "serial" (inline, the default),
    #: "thread" (a shared thread pool), "process" (a process pool; worker
    #: payloads are pickled, so agent classes must be importable by name) or
    #: "cluster" (resident shards hosted on socket-connected node processes,
    #: spawnable on other machines — see the cluster knobs below).
    executor: str = "serial"
    #: Parallel task slots for the thread/process executors.  ``None`` uses
    #: ``min(num_workers, cpu count)``.
    max_workers: int | None = None
    #: Resident worker shards: host each worker's agents durably inside the
    #: executor (pinned to one pool process on the process backend) and ship
    #: only per-tick deltas — migrations, boundary replicas and effect
    #: partials — instead of pickling the whole owned set every tick.
    #: ``None`` (the default) enables residency exactly for backends that do
    #: not share the driver's memory (i.e. the process backend); ``True``
    #: forces the delta protocol on any backend (useful for testing it
    #: without pool overhead); ``False`` keeps the legacy ship-everything
    #: path.  Results are bit-identical either way.
    resident_shards: bool | None = None

    # Cluster backend (executor="cluster") --------------------------------
    #: Number of node processes hosting the shards.
    cluster_nodes: int = 2
    #: Address the driver listens on for node connections.  Port 0 picks a
    #: free port; nodes on other machines connect with
    #: ``python -m repro.cluster.node --connect host:port``.
    cluster_listen: str = "127.0.0.1:0"
    #: Auto-spawn ``cluster_nodes`` localhost node subprocesses.  ``False``
    #: waits for externally started nodes to dial in instead.
    cluster_spawn: bool = True
    #: Seconds between a node's liveness frames.
    heartbeat_interval_seconds: float = 0.5
    #: Seconds of frame silence after which the driver declares a node dead
    #: and routes the run into checkpoint recovery.
    heartbeat_timeout_seconds: float = 10.0
    #: Shared cluster secret: arms HMAC-SHA256 frame authentication on every
    #: driver<->node link (challenge–response hello, per-frame MACs).
    #: **Mandatory** when ``cluster_listen`` names a non-loopback address —
    #: an open listener would otherwise admit any process that can reach the
    #: port.  Spawned nodes inherit it via the ``REPRO_CLUSTER_SECRET``
    #: environment variable; external nodes read the same variable or a
    #: ``--secret-file``.  Scrubbed from provenance records.
    cluster_secret: str | None = None
    #: How long a degraded driver holds its listener open for a replacement
    #: node after one dies (spawned clusters respawn immediately instead).
    #: ``0`` skips re-admission and rehomes the lost shards straight onto
    #: the surviving nodes.
    readmission_timeout_seconds: float = 10.0

    # Iteration structure ------------------------------------------------
    ticks_per_epoch: int = 10
    non_local_effects: bool = False  # run the second reduce pass

    # Query-phase execution ----------------------------------------------
    index: str | None = "kdtree"
    cell_size: float | None = None
    check_visibility: bool = True
    #: How the query phase's spatial joins execute: ``"python"`` (interpreted
    #: per-probe index queries), ``"vectorized"`` (columnar NumPy batch
    #: kernels — one position snapshot per worker per tick, every probe
    #: answered in a handful of array ops) or ``None`` for automatic
    #: selection (vectorized whenever an index is requested and the worker's
    #: extent is large enough to amortize the snapshot).  Agent states are
    #: bit-identical across backends; only the speed differs.  (Sole caveat:
    #: ``QueryContext.nearest`` breaks *exact* distance ties in canonical
    #: order on the vectorized backend vs k-d tree traversal order on the
    #: python backend — neighbour/visible queries are tie-free.)
    spatial_backend: str | None = None
    #: How BRASIL query/update plans execute: ``"interpreted"`` (the
    #: reference per-agent AST walk), ``"compiled"`` (whole-phase columnar
    #: kernels — effect aggregation as ``np.ufunc.at`` scatter-reductions
    #: over the spatial join's match lists, update rules as column math
    #: over a structure-of-arrays snapshot) or ``None`` for automatic
    #: selection (compiled wherever the plan compiler can *prove* the
    #: kernel bit-identical, interpreted otherwise).  Constructs outside
    #: the provable subset — ``rand()`` in a phase, nested ``foreach``,
    #: loop-carried locals, ``collect`` effects, hand-written agent
    #: classes — fall back to the interpreter per worker-phase, so states
    #: are bit-identical across backends; only the speed differs.
    plan_backend: str | None = None
    #: How resident-shard deltas cross the driver/shard boundary:
    #: ``"pickle"`` (the legacy per-object protocol), ``"columnar"``
    #: (structure-of-arrays delta frames moved through pooled
    #: shared-memory segments, with comm/compute overlap in every round)
    #: or ``None`` for automatic selection (columnar exactly when resident
    #: deltas really cross a process boundary — the process backend).
    #: Decoded payloads are bit-identical across backends; only the speed
    #: differs.  Forcing ``"columnar"`` on a memory-sharing backend
    #: round-trips every delta through the frame codec in process, which
    #: is how the wire format is conformance-tested without pools.
    ipc_backend: str | None = None

    # Load balancing -------------------------------------------------------
    load_balance: bool = True
    load_balance_threshold: float = 1.25  # imbalance ratio that triggers a repartition
    #: Cost of migrating one agent, expressed in "agent-ticks of work" — moving
    #: an agent is roughly an order of magnitude cheaper than simulating it
    #: for the epoch the new partitioning will last.
    migration_cost_per_agent: float = 0.1

    # Fault tolerance -------------------------------------------------------
    checkpointing: bool = False
    checkpoint_interval_epochs: int = 1

    # Randomness ------------------------------------------------------------
    seed: int | None = None  # defaults to the world's seed

    # Cluster cost model ------------------------------------------------------
    work_units_per_second: float = 2_000_000.0
    bandwidth_bytes_per_second: float = 125_000_000.0
    latency_seconds: float = 100e-6
    nodes_per_switch: int = 20
    inter_switch_penalty: float = 1.6
    barrier_seconds: float = 250e-6
    update_work_units_per_agent: float = 2.0
    map_work_units_per_agent: float = 1.0

    def validate(self) -> None:
        """Raise :class:`BraceError` when the configuration is inconsistent.

        Called from :class:`~repro.brace.runtime.BraceRuntime` and from every
        ``with_*`` step of the :class:`repro.api.Simulation` builder, so a
        bad knob fails at configuration time with an actionable message
        instead of surfacing as a deep ``KeyError`` mid-run.
        """
        if self.num_workers < 1:
            raise BraceError("num_workers must be at least 1")
        if self.ticks_per_epoch < 1:
            raise BraceError("ticks_per_epoch must be at least 1")
        if self.partitioning not in ("strip", "grid"):
            raise BraceError(
                f"unknown partitioning scheme {self.partitioning!r}; "
                "expected 'strip' (1-D, load-balanceable) or 'grid'"
            )
        if self.partitioning == "grid" and self.grid_cells is None:
            raise BraceError(
                "grid partitioning requires grid_cells (cells per dimension, "
                "e.g. grid_cells=(2, 2) for num_workers=4)"
            )
        if self.partitioning == "strip" and self.grid_cells is not None:
            raise BraceError(
                "grid_cells only applies to partitioning='grid' "
                "(strip partitionings split a single axis into num_workers strips)"
            )
        if self.partitioning == "grid":
            if not self.grid_cells or any(int(cells) < 1 for cells in self.grid_cells):
                raise BraceError(
                    "grid_cells must be a non-empty sequence of positive cell "
                    f"counts, got {tuple(self.grid_cells)!r}"
                )
            total = 1
            for cells in self.grid_cells:
                total *= int(cells)
            if total != self.num_workers:
                raise BraceError(
                    "the product of grid_cells must equal num_workers "
                    f"({total} != {self.num_workers})"
                )
        if self.executor not in ("serial", "thread", "process", "cluster"):
            raise BraceError(
                f"unknown executor {self.executor!r}; "
                "expected 'serial', 'thread', 'process' or 'cluster'"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise BraceError("max_workers must be at least 1 (or None for automatic)")
        if self.resident_shards not in (None, True, False):
            raise BraceError(
                "resident_shards must be True, False or None (automatic: on for "
                "backends that do not share the driver's memory)"
            )
        if self.executor == "cluster" and self.resident_shards is False:
            raise BraceError(
                "executor='cluster' requires resident shards: the socket backend "
                "only speaks the resident-shard delta protocol (the legacy "
                "ship-everything path never leaves the driver process). Drop "
                "resident_shards=False, or use executor='process' if you need "
                "the legacy path."
            )
        if self.executor == "cluster":
            if self.cluster_nodes < 1:
                raise BraceError("cluster_nodes must be at least 1")
            host, _, port = self.cluster_listen.rpartition(":")
            if not host or not port.isdigit():
                raise BraceError(
                    f"cluster_listen must be HOST:PORT, got {self.cluster_listen!r}"
                )
            if not self.heartbeat_interval_seconds > 0:
                raise BraceError("heartbeat_interval_seconds must be positive")
            if not self.heartbeat_timeout_seconds > self.heartbeat_interval_seconds:
                raise BraceError(
                    "heartbeat_timeout_seconds must exceed heartbeat_interval_seconds "
                    "(otherwise every slow phase reads as a dead node)"
                )
            if self.readmission_timeout_seconds < 0:
                raise BraceError(
                    "readmission_timeout_seconds must be >= 0 "
                    "(0 rehomes lost shards onto survivors immediately)"
                )
            from repro.cluster.auth import is_loopback

            if self.cluster_secret is None and not is_loopback(host):
                raise BraceError(
                    f"cluster_listen={self.cluster_listen!r} is reachable from "
                    "other machines; set cluster_secret so the driver only "
                    "admits nodes that prove knowledge of the shared secret "
                    "(loopback listeners may run without one)"
                )
        if self.index not in (None, "kdtree", "grid", "quadtree"):
            raise BraceError(
                f"unknown spatial index {self.index!r}; expected 'kdtree', "
                "'grid', 'quadtree' or None for a nested-loop scan"
            )
        if self.spatial_backend not in (None, "python", "vectorized"):
            raise BraceError(
                f"unknown spatial backend {self.spatial_backend!r}; expected "
                "'python', 'vectorized' or None for automatic selection"
            )
        if self.plan_backend not in (None, "interpreted", "compiled"):
            raise BraceError(
                f"unknown plan backend {self.plan_backend!r}; expected "
                "'interpreted', 'compiled' or None for automatic selection"
            )
        if self.ipc_backend not in (None, "pickle", "columnar"):
            raise BraceError(
                f"unknown ipc backend {self.ipc_backend!r}; expected "
                "'pickle', 'columnar' or None for automatic selection"
            )
        if self.cell_size is not None and not self.cell_size > 0:
            # cell_size is only *used* by the grid index but may legitimately
            # be set alongside any index choice (it is ignored otherwise).
            raise BraceError(
                f"cell_size must be positive, got {self.cell_size!r} "
                "(or None for the index's default)"
            )
        if self.load_balance_axis < 0:
            raise BraceError("load_balance_axis must be a non-negative dimension index")
        if self.load_balance_threshold < 1.0:
            raise BraceError(
                "load_balance_threshold is the max/min owned-agents ratio that "
                f"triggers a repartition and must be >= 1.0, got {self.load_balance_threshold}"
            )
        if self.migration_cost_per_agent < 0:
            raise BraceError("migration_cost_per_agent must be >= 0")
        if self.checkpoint_interval_epochs < 1:
            raise BraceError("checkpoint_interval_epochs must be at least 1")
        for name in (
            "work_units_per_second",
            "bandwidth_bytes_per_second",
            "inter_switch_penalty",
        ):
            if not getattr(self, name) > 0:
                raise BraceError(f"{name} must be positive, got {getattr(self, name)!r}")
        for name in ("latency_seconds", "barrier_seconds"):
            if getattr(self, name) < 0:
                raise BraceError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        if self.nodes_per_switch < 1:
            raise BraceError("nodes_per_switch must be at least 1")
