"""The BRACE master node.

The master only interacts with workers at *epoch* boundaries (Section 3.3):
it gathers per-worker statistics, decides whether to repartition through the
one-dimensional load balancer, triggers coordinated checkpoints, and
broadcasts any new partitioning for the workers to adopt at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.brace.checkpoint import CheckpointManager
from repro.brace.config import BraceConfig
from repro.brace.loadbalance import LoadBalanceDecision, OneDimensionalLoadBalancer
from repro.core.errors import BraceError
from repro.spatial.bbox import BBox
from repro.spatial.partitioning import (
    GridPartitioning,
    SpatialPartitioning,
    StripPartitioning,
)


@dataclass
class WorkerReport:
    """Statistics a worker sends to the master at an epoch boundary."""

    worker_id: int
    owned_agents: int
    work_units: float
    bytes_sent: int


@dataclass
class EpochDecision:
    """What the master decided at an epoch boundary."""

    epoch: int
    load_balance: LoadBalanceDecision | None
    checkpoint: bool
    reports: list[WorkerReport] = field(default_factory=list)


class Master:
    """Cluster coordinator: partitioning, load balancing, checkpoint scheduling."""

    def __init__(self, config: BraceConfig, bounds: BBox):
        if bounds is None:
            raise BraceError("BRACE requires a bounded world (World.bounds) to partition space")
        self.config = config
        self.bounds = bounds
        self.partitioning = self._initial_partitioning()
        self.load_balancer = OneDimensionalLoadBalancer(
            threshold=config.load_balance_threshold,
            migration_cost_per_agent=config.migration_cost_per_agent,
            ticks_to_amortize=config.ticks_per_epoch,
        )
        self.checkpoint_manager = CheckpointManager()
        self.epoch = 0
        self.decisions: list[EpochDecision] = []

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _initial_partitioning(self) -> SpatialPartitioning:
        config = self.config
        if config.partitioning == "grid":
            return GridPartitioning(self.bounds, list(config.grid_cells))
        return StripPartitioning.uniform(
            self.bounds, config.load_balance_axis, config.num_workers
        )

    def can_rebalance(self) -> bool:
        """Load balancing is only implemented for strip partitionings."""
        return isinstance(self.partitioning, StripPartitioning)

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def end_of_epoch(
        self,
        reports: list[WorkerReport],
        agent_coordinates: list[float],
    ) -> EpochDecision:
        """Process an epoch boundary: maybe rebalance, maybe checkpoint."""
        self.epoch += 1
        balance_decision: LoadBalanceDecision | None = None
        if self.config.load_balance and self.can_rebalance():
            balance_decision = self.load_balancer.decide(self.partitioning, agent_coordinates)
            if balance_decision.rebalance and balance_decision.new_partitioning is not None:
                self.partitioning = balance_decision.new_partitioning

        checkpoint_now = (
            self.config.checkpointing
            and self.epoch % self.config.checkpoint_interval_epochs == 0
        )
        decision = EpochDecision(
            epoch=self.epoch,
            load_balance=balance_decision,
            checkpoint=checkpoint_now,
            reports=list(reports),
        )
        self.decisions.append(decision)
        return decision

    def rebalances_performed(self) -> int:
        """How many epoch boundaries actually changed the partitioning."""
        return sum(
            1
            for decision in self.decisions
            if decision.load_balance is not None and decision.load_balance.rebalance
        )
