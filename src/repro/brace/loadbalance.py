"""The one-dimensional load balancer.

The BRACE prototype uses "a simple rectilinear grid partitioning scheme" and
"a one-dimensional load balancer [that] periodically receives statistics from
the slave nodes ... and heuristically computes a new partition trying to
balance improved performance against estimated migration cost" (Section 5.1).

This module reproduces that component for strip partitionings: it looks at
the distribution of agents along the balancing axis, proposes strip
boundaries that equalise the number of owned agents, estimates the benefit
(reduction of the per-tick makespan, which is proportional to the largest
owned set) and the migration cost (agents changing owner), and recommends a
repartitioning when the benefit outweighs the cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import LoadBalanceError
from repro.spatial.partitioning import StripPartitioning


@dataclass
class LoadBalanceDecision:
    """The balancer's recommendation for an epoch boundary."""

    rebalance: bool
    new_partitioning: StripPartitioning | None
    imbalance_before: float
    imbalance_after: float
    agents_to_migrate: int
    estimated_benefit: float
    estimated_cost: float


class OneDimensionalLoadBalancer:
    """Periodically recomputes strip boundaries from owned-agent statistics.

    Parameters
    ----------
    threshold:
        Minimum imbalance ratio (largest owned set / average owned set)
        before a repartitioning is even considered.
    migration_cost_per_agent:
        Cost, in the same unit as the benefit estimate (owned agents per
        tick), charged for every agent that changes owner.
    ticks_to_amortize:
        Over how many future ticks the benefit is assumed to persist; the
        paper amortizes rebalancing over an epoch.
    """

    def __init__(
        self,
        threshold: float = 1.25,
        migration_cost_per_agent: float = 0.1,
        ticks_to_amortize: int = 10,
    ):
        if threshold < 1.0:
            raise LoadBalanceError("threshold must be >= 1.0")
        self.threshold = threshold
        self.migration_cost_per_agent = migration_cost_per_agent
        self.ticks_to_amortize = max(1, ticks_to_amortize)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @staticmethod
    def imbalance(owned_counts: list[int]) -> float:
        """Largest owned set divided by the mean owned set (>= 1 when balanced)."""
        if not owned_counts or sum(owned_counts) == 0:
            return 1.0
        mean = sum(owned_counts) / len(owned_counts)
        if mean == 0:
            return float("inf")
        return max(owned_counts) / mean

    @staticmethod
    def balanced_boundaries(
        coordinates: list[float], num_strips: int, bounds_lo: float, bounds_hi: float
    ) -> list[float]:
        """Strip boundaries that split ``coordinates`` into equal-count groups."""
        if num_strips < 1:
            raise LoadBalanceError("need at least one strip")
        if num_strips == 1:
            return []
        ordered = sorted(coordinates)
        count = len(ordered)
        boundaries: list[float] = []
        previous = bounds_lo
        for strip in range(1, num_strips):
            rank = int(round(strip * count / num_strips))
            rank = min(max(rank, 1), count - 1) if count > 1 else 0
            if count == 0:
                # No agents: fall back to uniform boundaries.
                candidate = bounds_lo + (bounds_hi - bounds_lo) * strip / num_strips
            else:
                candidate = (ordered[rank - 1] + ordered[min(rank, count - 1)]) / 2.0
            # Boundaries must be strictly increasing and strictly inside the bounds.
            epsilon = (bounds_hi - bounds_lo) * 1e-9 + 1e-12
            candidate = max(candidate, previous + epsilon)
            candidate = min(candidate, bounds_hi - epsilon * (num_strips - strip))
            boundaries.append(candidate)
            previous = candidate
        return boundaries

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def decide(
        self,
        partitioning: StripPartitioning,
        agent_coordinates: list[float],
    ) -> LoadBalanceDecision:
        """Decide whether to repartition given the agents' balancing-axis coordinates."""
        num_strips = partitioning.num_partitions()
        owned_counts = self._counts(partitioning, agent_coordinates)
        imbalance_before = self.imbalance(owned_counts)

        lo, hi = partitioning.bounds.intervals[partitioning.axis]
        new_boundaries = self.balanced_boundaries(agent_coordinates, num_strips, lo, hi)
        new_partitioning = partitioning.with_boundaries(new_boundaries)
        new_counts = self._counts(new_partitioning, agent_coordinates)
        imbalance_after = self.imbalance(new_counts)

        migrations = self._migrations(partitioning, new_partitioning, agent_coordinates)
        # Benefit: reduction in the per-tick makespan (proportional to the
        # largest owned set), accumulated over the ticks the new partitioning
        # is expected to last.
        benefit = (max(owned_counts, default=0) - max(new_counts, default=0)) * float(
            self.ticks_to_amortize
        )
        cost = migrations * self.migration_cost_per_agent

        rebalance = (
            imbalance_before > self.threshold
            and imbalance_after < imbalance_before
            and benefit > cost
        )
        return LoadBalanceDecision(
            rebalance=rebalance,
            new_partitioning=new_partitioning if rebalance else None,
            imbalance_before=imbalance_before,
            imbalance_after=imbalance_after,
            agents_to_migrate=migrations,
            estimated_benefit=benefit,
            estimated_cost=cost,
        )

    @staticmethod
    def _counts(partitioning: StripPartitioning, coordinates: list[float]) -> list[int]:
        counts = [0] * partitioning.num_partitions()
        axis = partitioning.axis
        dim = partitioning.bounds.dim
        for coordinate in coordinates:
            point = [0.0] * dim
            point[axis] = coordinate
            counts[partitioning.partition_of(point)] += 1
        return counts

    @staticmethod
    def _migrations(
        old: StripPartitioning, new: StripPartitioning, coordinates: list[float]
    ) -> int:
        axis = old.axis
        dim = old.bounds.dim
        migrations = 0
        for coordinate in coordinates:
            point = [0.0] * dim
            point[axis] = coordinate
            if old.partition_of(point) != new.partition_of(point):
                migrations += 1
        return migrations
