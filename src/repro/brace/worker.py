"""A BRACE worker: one node's share of the simulation.

A worker owns the agents whose positions fall inside its partition, hosts
read-only replicas of agents from neighbouring partitions, and executes the
query phase (reduce 1), the non-local effect aggregation (reduce 2) and the
update phase (the next tick's map task) for its owned set.

Collocation is implicit in this design: the map and reduce tasks of a
partition live inside the same worker object, so agents that stay in their
partition never touch the (simulated) network — only replicas and effect
partials do.
"""

from __future__ import annotations

import operator
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.brace.replication import replication_targets
from repro.core.agent import Agent
from repro.core.context import QueryContext, UpdateContext, resolve_spatial_backend
from repro.core.errors import BraceError
from repro.core.ordering import agent_sort_key
from repro.core.phase import Phase, phase
from repro.ipc.frames import ReplicaDelta
from repro.ipc.sizing import agent_frame_bytes
from repro.spatial.bbox import BBox
from repro.spatial.columnar import PointSet
from repro.spatial.partitioning import Partition, SpatialPartitioning


@dataclass
class QueryPhaseResult:
    """What a remotely executed query phase sends back to the driver.

    Effects are plain dictionaries (not agent objects) so only the tick's
    actual output crosses the process boundary, mirroring what a real BRACE
    worker would put on the wire.
    """

    worker_id: int
    #: ``agent_id -> (effect accumulators, touched field names)`` for owned agents.
    owned_effects: dict[Any, tuple[dict[str, Any], set[str]]]
    #: ``agent_id -> touched accumulators`` for replicas (non-local partials).
    replica_partials: dict[Any, dict[str, Any]]
    work_units: float
    index_probes: int


@dataclass
class UpdatePhaseResult:
    """What a remotely executed update phase sends back to the driver."""

    worker_id: int
    #: ``agent_id -> new state values`` for owned agents.
    states: dict[Any, dict[str, Any]]
    #: ``(parent_id, sequence, child agent)`` spawn requests, in request order.
    spawn_requests: list[tuple[Any, int, Any]] = field(default_factory=list)
    #: Ids of agents whose removal was requested.
    kill_requests: set[Any] = field(default_factory=set)


def _query_loop(owned: list[Agent], context: QueryContext, plan_backend: str | None) -> None:
    """Run the query phase body: compiled plan kernels when allowed, else
    the interpreted per-agent loop.

    ``plan_backend`` semantics: ``"interpreted"`` never compiles; ``None``
    (automatic) and ``"compiled"`` both attempt the columnar kernels and
    fall back silently for anything the plan compiler cannot prove.  The
    import is lazy because :mod:`repro.brasil` imports this module's
    package back for its runner.
    """
    if plan_backend != "interpreted":
        from repro.brasil.kernels import try_compiled_query_phase

        if try_compiled_query_phase(owned, context):
            return
    for agent in owned:
        agent.query(context)


def _update_loop(owned: list[Agent], context: UpdateContext, plan_backend: str | None) -> None:
    """Run the update phase body: compiled per-class kernels, interpreted rest."""
    remaining = owned
    if plan_backend != "interpreted":
        from repro.brasil.kernels import try_compiled_update_phase

        remaining = try_compiled_update_phase(owned, context)
    for agent in remaining:
        agent._updating = True
        try:
            agent.update(context)
        finally:
            agent._updating = False


def run_query_phase_remote(
    worker_id: int,
    owned: list[Agent],
    replicas: list[Agent],
    tick: int,
    seed: int,
    index: str | None,
    cell_size: float | None,
    check_visibility: bool,
    spatial_backend: str | None = None,
    plan_backend: str | None = None,
) -> QueryPhaseResult:
    """Execute one worker's query phase on pickled agent copies.

    Module-level (picklable) so the process executor can ship it.  The agent
    lists must be sorted the way :meth:`Worker.run_query_phase` sorts them so
    the spatial index — and therefore every neighbor enumeration — is built
    identically, keeping the results bit-identical to in-place execution.
    """
    agents = owned + replicas
    context = QueryContext(
        agents,
        tick=tick,
        seed=seed,
        index=index,
        cell_size=cell_size,
        check_visibility=check_visibility,
        spatial_backend=spatial_backend,
    )
    with phase(Phase.QUERY):
        _query_loop(owned, context, plan_backend)
    replica_partials = {}
    for replica in replicas:
        touched = replica.touched_effect_partials()
        if touched:
            replica_partials[replica.agent_id] = touched
    return QueryPhaseResult(
        worker_id=worker_id,
        owned_effects={
            agent.agent_id: (agent.effect_partials(), set(agent._effects_touched))
            for agent in owned
        },
        replica_partials=replica_partials,
        work_units=context.work_units,
        index_probes=context.index_probes,
    )


def run_update_phase_remote(
    worker_id: int,
    owned: list[Agent],
    tick: int,
    seed: int,
    world_bounds: BBox | None,
    plan_backend: str | None = None,
) -> UpdatePhaseResult:
    """Execute one worker's update phase on pickled agent copies."""
    context = UpdateContext(tick=tick, seed=seed, world_bounds=world_bounds)
    with phase(Phase.UPDATE):
        _update_loop(owned, context, plan_backend)
    return UpdatePhaseResult(
        worker_id=worker_id,
        states={agent.agent_id: agent.state_dict() for agent in owned},
        spawn_requests=context.spawn_requests,
        kill_requests=context.kill_requests,
    )


@dataclass
class DistributionResult:
    """What one worker's map phase produced for the rest of the cluster.

    The per-tick *delta* a resident shard ships to the driver: agents that
    left the partition, replica snapshots headed for neighbouring
    partitions, and the per-(source, destination) byte accounting the cost
    model charges.  Everything scales with boundary activity, never with the
    worker's owned-set size.
    """

    #: ``destination worker -> agents that migrated there``.
    migrations_out: dict[int, list[Agent]] = field(default_factory=dict)
    #: ``destination worker -> replica clones to install there``.
    replicas_out: dict[int, list[Agent]] = field(default_factory=dict)
    #: Modeled bytes per ``(source, destination)`` pair for migrations.
    migration_pair_bytes: Counter = field(default_factory=Counter)
    #: Modeled bytes per ``(source, destination)`` pair for replication.
    replication_pair_bytes: Counter = field(default_factory=Counter)
    agents_migrated: int = 0
    replicas_created: int = 0


class Worker:
    """Per-node execution state.

    A worker can run *in place* (the driver holds it and its agents — the
    serial/thread backends) or as a **resident shard** living inside a pool
    process across ticks.  In resident mode it additionally remembers the
    whole :class:`~repro.spatial.partitioning.SpatialPartitioning` (set via
    :meth:`adopt_partitioning` or the shard seed) so it can compute
    migrations and replication targets locally, and its ``replicas`` dict
    acts as the per-tick replica cache the query phase joins against.
    """

    def __init__(
        self,
        worker_id: int,
        partition: Partition,
        partitioning: SpatialPartitioning | None = None,
    ):
        self.worker_id = worker_id
        self.partition = partition
        #: Full partitioning, needed by resident shards to route locally.
        self.partitioning = partitioning
        self.owned: dict[Any, Agent] = {}
        self.replicas: dict[Any, Agent] = {}
        self.last_query_work_units = 0.0
        self.last_index_probes = 0
        #: ``agent_id -> position`` harvested during this tick's map phase.
        #: Positions only change in the update phase, so the query phase can
        #: assemble its columnar snapshot from these rows instead of walking
        #: every agent's state again — the tick's one-snapshot contract.
        self._position_cache: dict[Any, tuple] | None = None
        #: The columnar snapshot served to the last vectorized query phase.
        self.last_snapshot: PointSet | None = None
        #: Memoized ``owned_agents()`` order; ownership changes clear it.
        self._owned_sorted: list[Agent] | None = None
        #: Memoized ``replica_agents()`` order; replica changes clear it.
        self._replicas_sorted: list[Agent] | None = None
        #: Delta-mode bookkeeping: ``destination -> {agent_id: state values
        #: tuple last sent}``.  Compared by object identity next tick to
        #: decide which replicas actually need reshipping.
        self._replica_sent: dict[int, dict] = {}
        #: Whether the last map phase ran in replica-delta mode (consulted
        #: by the query phase to apply incoming deltas incrementally).
        self._replica_delta_mode = False
        #: Shard-local checkpoint stash: ``tag -> pickled ShardSeed`` taken
        #: at checkpoint boundaries so a *surviving* resident shard can
        #: rewind itself in place after another node dies, without shipping
        #: its state back over the wire.  Pickled at stash time — later
        #: mutation of the live agents cannot corrupt a stashed epoch.
        self.checkpoint_stash: dict = {}

    # ------------------------------------------------------------------
    # Ownership management
    # ------------------------------------------------------------------
    def add_owned(self, agent: Agent) -> None:
        """Take ownership of ``agent``."""
        self.owned[agent.agent_id] = agent
        self._owned_sorted = None

    def remove_owned(self, agent_id: Any) -> Agent:
        """Release ownership of the agent with ``agent_id`` and return it."""
        self._owned_sorted = None
        try:
            return self.owned.pop(agent_id)
        except KeyError:
            raise BraceError(
                f"worker {self.worker_id} does not own agent {agent_id}"
            ) from None

    def owned_agents(self) -> list[Agent]:
        """Owned agents sorted by id (deterministic iteration order).

        Uses :func:`~repro.core.ordering.agent_sort_key`, the same total
        order the driver uses to route effect partials, so an in-place
        worker, a resident shard and the driver always enumerate agents
        identically.  The order is memoized between ownership changes —
        several phases per tick iterate it — and a fresh list is returned
        each call so callers can mutate ownership while iterating.
        """
        if self._owned_sorted is None:
            self._owned_sorted = [
                self.owned[agent_id] for agent_id in sorted(self.owned, key=agent_sort_key)
            ]
        return list(self._owned_sorted)

    def owned_count(self) -> int:
        """Number of owned agents."""
        return len(self.owned)

    # ------------------------------------------------------------------
    # Replicas
    # ------------------------------------------------------------------
    def clear_replicas(self) -> None:
        """Drop every replica and the delta-mode send history.

        Called at the start of each full-reship tick, and on any ownership
        upheaval (rebalance, recovery) where retained replicas or the send
        history could go stale — clearing both forces a full resend.
        """
        self.replicas.clear()
        self._replicas_sorted = None
        self._replica_sent = {}

    def discard_replica(self, agent_id: Any) -> None:
        """Drop one hosted replica, if present (delta-mode removals)."""
        if self.replicas.pop(agent_id, None) is not None:
            self._replicas_sorted = None

    def receive_replica(self, agent: Agent) -> None:
        """Host a read-only replica of an agent owned elsewhere."""
        replica = agent.clone()
        replica.reset_effects()
        self.replicas[replica.agent_id] = replica
        self._replicas_sorted = None

    def install_replica(self, replica: Agent) -> None:
        """Host an already-cloned replica (shipped from another shard)."""
        self.replicas[replica.agent_id] = replica
        self._replicas_sorted = None

    def replica_agents(self) -> list[Agent]:
        """Hosted replicas sorted by id (memoized between replica changes)."""
        if self._replicas_sorted is None:
            self._replicas_sorted = [
                self.replicas[agent_id] for agent_id in sorted(self.replicas, key=agent_sort_key)
            ]
        return list(self._replicas_sorted)

    # ------------------------------------------------------------------
    # Resident-shard operations (the map phase, computed shard-locally)
    # ------------------------------------------------------------------
    def distribute(
        self,
        partitioning: SpatialPartitioning | None = None,
        spatial_backend: str | None = None,
        index: str | None = "kdtree",
        clone_replicas: bool = True,
        replica_deltas: bool = False,
    ) -> DistributionResult:
        """Run the tick's map phase locally: reset, migrate out, replicate.

        Examines every owned agent once: agents whose position left this
        partition are removed and queued for their new owner; replica clones
        are produced for every partition whose visible region contains the
        agent (on behalf of the agent's *new* owner when it migrated, so the
        byte accounting matches a centralized map phase exactly).  Replicas
        destined for this very partition — an agent that migrated away but
        is still visible here — are installed directly.

        Positions are harvested into the tick's columnar cache here and
        reused by :meth:`run_query_phase`; with the vectorized backend the
        ownership routing itself runs as one batched
        :meth:`~repro.spatial.partitioning.SpatialPartitioning.partition_of_batch`
        call (bit-identical to the scalar path).

        ``clone_replicas=False`` skips the per-replica clone: effects were
        just reset, so the agent itself *is* the replica snapshot.  Only
        valid when every outgoing list is copied anyway before anyone
        mutates the originals — the process backend's wire does exactly
        that (encoding happens in the same shard task, before the query
        phase runs), which is where the driver requests it.

        ``replica_deltas=True`` switches replica shipping to *delta mode*:
        destinations retain last tick's replicas, and ``replicas_out``
        carries :class:`~repro.ipc.frames.ReplicaDelta` objects naming only
        the rows that are new, changed, or gone.  "Changed" is decided by
        object identity of the state values against what was last sent —
        exact by construction (an untouched field keeps the very same
        object; a rewritten one cannot), so a false "unchanged" is
        impossible.  Modeled byte/replica accounting still charges every
        logical replica, keeping the cost model identical across modes.
        """
        partitioning = partitioning if partitioning is not None else self.partitioning
        if partitioning is None:
            raise BraceError(f"worker {self.worker_id} has no partitioning to distribute with")
        result = DistributionResult()
        self._replica_delta_mode = replica_deltas
        if replica_deltas:
            previous_sent = self._replica_sent
            sent: dict[int, dict] = {}
            additions: dict[int, list] = {}
            is_ = operator.is_
        else:
            self.clear_replicas()
        for agent in self.owned_agents():
            agent.reset_effects()
        owned = self.owned_agents()
        owners = self._harvest_positions(owned, partitioning, spatial_backend, index)
        for agent, owner in zip(owned, owners):
            size = agent_frame_bytes(agent)
            if owner != self.worker_id:
                self.remove_owned(agent.agent_id)
                result.migrations_out.setdefault(owner, []).append(agent)
                result.migration_pair_bytes[(self.worker_id, owner)] += size
                result.agents_migrated += 1
            targets = replication_targets(agent, partitioning)
            if replica_deltas and targets:
                values = tuple(agent._state.values())
                agent_id = agent.agent_id
            for target in targets:
                if target == owner:
                    continue
                result.replication_pair_bytes[(owner, target)] += size
                result.replicas_created += 1
                if replica_deltas:
                    cache = sent.get(target)
                    if cache is None:
                        cache = sent[target] = {}
                    cache[agent_id] = values
                    prev_cache = previous_sent.get(target)
                    if prev_cache is not None:
                        prev = prev_cache.get(agent_id)
                        if (
                            prev is not None
                            and len(prev) == len(values)
                            and all(map(is_, prev, values))
                        ):
                            continue  # destination already holds this row
                if clone_replicas:
                    replica = agent.clone()
                    replica.reset_effects()
                else:
                    # Effects were reset above; the wire copies the rest.
                    replica = agent
                if target == self.worker_id:
                    self.install_replica(replica)
                elif replica_deltas:
                    additions.setdefault(target, []).append(replica)
                else:
                    result.replicas_out.setdefault(target, []).append(replica)
        if replica_deltas:
            for target in previous_sent.keys() | sent.keys() | additions.keys():
                new_cache = sent.get(target, ())
                removed = [
                    agent_id
                    for agent_id in previous_sent.get(target, ())
                    if agent_id not in new_cache
                ]
                if target == self.worker_id:
                    for agent_id in removed:
                        self.discard_replica(agent_id)
                    continue
                added = additions.get(target, [])
                if added or removed:
                    result.replicas_out[target] = ReplicaDelta(added, removed)
            self._replica_sent = sent
        return result

    def _harvest_positions(
        self,
        owned: list[Agent],
        partitioning: SpatialPartitioning,
        spatial_backend: str | None,
        index: str | None,
    ) -> list[int]:
        """Resolve ownership; pack positions into the tick cache when useful.

        One pass over the owned set.  When ``(spatial_backend, index)``
        resolves to the vectorized backend for this worker's size, the
        positions additionally land in ``_position_cache`` (the snapshot
        rows the query phase reuses) and ownership is resolved as a single
        batched lookup over the packed matrix; on the python backend this
        is exactly the old per-agent loop, with no extra allocations.
        """
        self._position_cache = None
        if not owned:
            return []
        vectorized = resolve_spatial_backend(
            spatial_backend, index, len(owned)
        ) == "vectorized"
        if not vectorized:
            return [partitioning.partition_of(agent.position()) for agent in owned]
        positions = [agent.position() for agent in owned]
        self._position_cache = {
            agent.agent_id: position for agent, position in zip(owned, positions)
        }
        matrix = np.asarray(positions, dtype=np.float64)
        return [int(owner) for owner in partitioning.partition_of_batch(matrix)]

    def apply_boundary(self, kill_ids: list[Any], spawn_agents: list[Agent]) -> int:
        """Apply a tick boundary's births and deaths; returns the owned count.

        Mirrors what :func:`~repro.core.engine.apply_births_and_deaths` did
        on the driver: killed agents leave the owned set, spawned agents
        (already carrying their driver-assigned ids) join it.
        """
        self._owned_sorted = None
        for agent_id in kill_ids:
            self.owned.pop(agent_id, None)
        for agent in spawn_agents:
            self.add_owned(agent)
        return self.owned_count()

    def install_owned(self, agents: list[Agent]) -> int:
        """Take ownership of agents shipped from another shard; returns the count."""
        for agent in agents:
            self.add_owned(agent)
        return self.owned_count()

    def adopt_partitioning(
        self, partitioning: SpatialPartitioning, partition: Partition
    ) -> dict[int, list[Agent]]:
        """Adopt a rebalanced partitioning; return agents that must move out.

        The physical half of load balancing: agents whose position now falls
        in another partition are removed here and handed back, keyed by
        their new owner, for the driver to route.
        """
        self.partitioning = partitioning
        self.partition = partition
        # Ownership is reshuffling under the delta protocol's feet: drop
        # retained replicas and the send history so the next map phase
        # reships everything from scratch.
        self.clear_replicas()
        outgoing: dict[int, list[Agent]] = {}
        for agent in self.owned_agents():
            owner = partitioning.partition_of(agent.position())
            if owner != self.worker_id:
                self.remove_owned(agent.agent_id)
                outgoing.setdefault(owner, []).append(agent)
        return outgoing

    def migration_seed(self):
        """The worker's travelling form for a physical shard migration.

        The cluster backend calls this (duck-typed) when re-homing a shard
        onto another node: only the partition, the partitioning and the
        owned agents travel — the exact :class:`~repro.brace.shards.
        ShardSeed` the resident factory rebuilds from.  Replica caches and
        the delta send history stay behind on purpose; the driver follows
        every migration with an :meth:`adopt_partitioning` round that
        clears them on *all* shards, so no shard's send history can claim
        the rebuilt worker still holds replica rows it lost in transit.
        """
        from repro.brace.shards import ShardSeed

        return ShardSeed(
            partition=self.partition,
            partitioning=self.partitioning,
            agents=self.owned_agents(),
        )

    def collect_states(self) -> dict[Any, dict[str, Any]]:
        """State of every owned agent, keyed by id (driver sync / checkpoint pull)."""
        return {agent.agent_id: agent.state_dict() for agent in self.owned_agents()}

    def collect_coordinates(self, axis: int) -> list[float]:
        """Owned agents' positions along ``axis`` (load-balancer statistics)."""
        return [agent.position()[axis] for agent in self.owned_agents()]

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def run_query_phase(
        self,
        tick: int,
        seed: int,
        index: str | None,
        cell_size: float | None,
        check_visibility: bool,
        spatial_backend: str | None = None,
        plan_backend: str | None = None,
    ) -> QueryContext:
        """Execute the query phase (reduce 1) for every owned agent.

        With the vectorized backend the columnar snapshot is assembled here
        — reusing the position rows harvested by :meth:`distribute` earlier
        this tick — and handed to the context, so positions are packed once
        per tick, not once per phase.
        """
        agents = self.owned_agents() + self.replica_agents()
        context = QueryContext(
            agents,
            tick=tick,
            seed=seed,
            index=index,
            cell_size=cell_size,
            check_visibility=check_visibility,
            spatial_backend=spatial_backend,
            snapshot=self._build_snapshot(agents, index, spatial_backend),
        )
        with phase(Phase.QUERY):
            _query_loop(self.owned_agents(), context, plan_backend)
        self.last_query_work_units = context.work_units
        self.last_index_probes = context.index_probes
        return context

    def _build_snapshot(
        self, agents: list[Agent], index: str | None, spatial_backend: str | None
    ) -> PointSet | None:
        """The query phase's columnar snapshot (None on the python backend).

        Rows come from the map phase's position cache when available;
        agents that arrived after the harvest (migrations in, replicas)
        contribute their positions directly.
        """
        if resolve_spatial_backend(spatial_backend, index, len(agents)) != "vectorized":
            self.last_snapshot = None
            return None
        ordered = sorted(agents, key=lambda agent: agent_sort_key(agent.agent_id))
        cache = self._position_cache
        if cache:
            def key(agent):
                position = cache.get(agent.agent_id)
                return position if position is not None else agent.position()
        else:
            def key(agent):
                return agent.position()
        self.last_snapshot = PointSet(ordered, key=key)
        return self.last_snapshot

    def touched_replica_partials(self) -> dict[Any, dict[str, Any]]:
        """Effect partials assigned to replicas during this tick's query phase.

        These are the non-local effect assignments that must be routed to the
        owning partitions by the second reduce pass.
        """
        partials: dict[Any, dict[str, Any]] = {}
        for agent_id, replica in self.replicas.items():
            touched = replica.touched_effect_partials()
            if touched:
                partials[agent_id] = touched
        return partials

    def merge_remote_partials(self, agent_id: Any, partials: dict[str, Any]) -> None:
        """Merge effect partials produced at another partition into an owned agent."""
        if agent_id not in self.owned:
            raise BraceError(
                f"worker {self.worker_id} received partials for agent {agent_id} it does not own"
            )
        self.owned[agent_id].merge_effect_partials(partials)

    def apply_query_result(self, result: QueryPhaseResult) -> None:
        """Install the effects computed by a remotely executed query phase.

        The counterpart of :func:`run_query_phase_remote`: owned agents get
        their full accumulator set, replicas get the partials touched on the
        remote copy, and the work accounting is carried over — leaving the
        worker in the same state as an in-place :meth:`run_query_phase`.
        """
        for agent_id, (effects, touched) in result.owned_effects.items():
            agent = self.owned[agent_id]
            agent._effects = dict(effects)
            agent._effects_touched = set(touched)
        for agent_id, partials in result.replica_partials.items():
            self.replicas[agent_id].set_effect_partials(partials)
        self.last_query_work_units = result.work_units
        self.last_index_probes = result.index_probes
        self._position_cache = None

    def apply_update_result(self, result: UpdatePhaseResult) -> UpdateContext:
        """Install remotely computed states; return the births/deaths context."""
        for agent_id, state in result.states.items():
            self.owned[agent_id].set_state_dict(state)
        context = UpdateContext(tick=0, seed=0)
        context._spawn_requests = list(result.spawn_requests)
        context._kill_requests = set(result.kill_requests)
        return context

    def run_update_phase(
        self,
        tick: int,
        seed: int,
        world_bounds,
        plan_backend: str | None = None,
    ) -> UpdateContext:
        """Execute the update phase for every owned agent, collecting births/deaths."""
        # Positions change now: the map-phase snapshot rows are stale.
        self._position_cache = None
        self.last_snapshot = None
        context = UpdateContext(tick=tick, seed=seed, world_bounds=world_bounds)
        with phase(Phase.UPDATE):
            _update_loop(self.owned_agents(), context, plan_backend)
        return context

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the worker's owned agents (replicas are recomputed on recovery)."""
        return {
            "worker_id": self.worker_id,
            "agents": [agent.snapshot() for agent in self.owned_agents()],
            "classes": {type(agent).__name__: type(agent) for agent in self.owned_agents()},
        }

    def checkpoint_size_bytes(self) -> int:
        """Modeled serialized size of a checkpoint of this worker.

        Charged from the same frame-size formula as the wire traffic
        (:func:`repro.ipc.sizing.agent_frame_bytes`), so checkpoint and IPC
        costs stay on one scale.
        """
        return sum(agent_frame_bytes(agent) for agent in self.owned.values())

    def __repr__(self) -> str:
        return (
            f"<Worker {self.worker_id} owned={len(self.owned)} replicas={len(self.replicas)}>"
        )
