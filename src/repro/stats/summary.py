"""Simple numeric series summaries used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class SeriesSummary:
    """Mean / standard deviation / extrema of a numeric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summarize a series; an empty series yields zeros."""
    values = list(values)
    if not values:
        return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0)
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return SeriesSummary(
        count=len(values),
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def scaling_efficiency(throughputs: Sequence[float], workers: Sequence[int]) -> list[float]:
    """Scale-up efficiency relative to the single-worker configuration.

    For a scale-up experiment (problem size grows with the worker count) the
    ideal curve is linear in the number of workers; the efficiency at point
    ``i`` is ``throughput_i / (throughput_0 * workers_i / workers_0)``.
    """
    if len(throughputs) != len(workers):
        raise ValueError("throughputs and workers must have the same length")
    if not throughputs:
        return []
    base_throughput = throughputs[0]
    base_workers = workers[0]
    efficiencies = []
    for throughput, worker_count in zip(throughputs, workers):
        ideal = base_throughput * worker_count / base_workers
        efficiencies.append(throughput / ideal if ideal > 0 else 0.0)
    return efficiencies
