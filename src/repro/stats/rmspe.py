"""Relative goodness-of-fit measures.

RMSPE (Relative Mean Square Percentage Error) is the measure the traffic
simulation literature uses to validate one simulator against another, and
the measure Table 2 of the paper reports.
"""

from __future__ import annotations

import math
from typing import Sequence


def rmspe(observed: Sequence[float], reference: Sequence[float]) -> float:
    """Root mean square percentage error of ``observed`` relative to ``reference``.

    ``sqrt(mean(((observed - reference) / reference)^2))``.  Reference values
    of zero are skipped (their relative error is undefined); if every
    reference value is zero the result is 0.0 when the observations are also
    all zero and ``inf`` otherwise.
    """
    if len(observed) != len(reference):
        raise ValueError("observed and reference must have the same length")
    total = 0.0
    count = 0
    any_nonzero_observed = False
    for observed_value, reference_value in zip(observed, reference):
        if reference_value == 0:
            if observed_value != 0:
                any_nonzero_observed = True
            continue
        total += ((observed_value - reference_value) / reference_value) ** 2
        count += 1
    if count == 0:
        return float("inf") if any_nonzero_observed else 0.0
    return math.sqrt(total / count)


def mape(observed: Sequence[float], reference: Sequence[float]) -> float:
    """Mean absolute percentage error of ``observed`` relative to ``reference``."""
    if len(observed) != len(reference):
        raise ValueError("observed and reference must have the same length")
    total = 0.0
    count = 0
    for observed_value, reference_value in zip(observed, reference):
        if reference_value == 0:
            continue
        total += abs((observed_value - reference_value) / reference_value)
        count += 1
    if count == 0:
        return 0.0
    return total / count
