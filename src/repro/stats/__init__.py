"""Statistics helpers: goodness-of-fit and run summaries."""

from repro.stats.rmspe import rmspe, mape
from repro.stats.summary import SeriesSummary, summarize, scaling_efficiency

__all__ = ["rmspe", "mape", "SeriesSummary", "summarize", "scaling_efficiency"]
