"""The cluster layer: a modeled cluster and a real socket-backed one.

The paper evaluates BRACE on a 60-node cluster connected by a pair of
gigabit switches.  This package carries both halves of that story:

* **The model** — :class:`SimulatedNode`, :class:`NetworkModel` and
  :class:`ClusterCostModel` convert the per-worker work and communication
  totals the BRACE runtime measures into deterministic virtual time (the
  scale-up figures' clock), including the inter-switch penalty that
  produces the paper's throughput dip around 20 nodes.

* **The real backend** — :mod:`repro.cluster.client` hosts resident
  shards on socket-connected node processes (``executor="cluster"``),
  started locally or on other machines via ``python -m repro.cluster.node
  --connect host:port``.  Commands and results travel as length-prefixed
  columnar frames (:mod:`repro.cluster.protocol`), shard-to-node
  placement is scored with the *same* :class:`NetworkModel`
  (:mod:`repro.cluster.placement`), and heartbeat loss feeds the
  checkpoint-recovery path.

The two share one id space and one byte-accounting formula
(:mod:`repro.ipc.sizing`), so modeled virtual seconds and measured socket
bytes describe the same traffic.
"""

from repro.cluster.network import NetworkModel, NetworkTotals
from repro.cluster.costmodel import ClusterCostModel, WorkerTickCost, TickCostBreakdown

__all__ = [
    "NetworkModel",
    "NetworkTotals",
    "SimulatedNode",
    "ClusterCostModel",
    "WorkerTickCost",
    "TickCostBreakdown",
    "ClusterExecutor",
]


def __getattr__(name):
    # ClusterExecutor is exported lazily: importing it pulls in the
    # mapreduce executor layer, which the cost-model-only consumers of
    # this package (runtime metrics, figures) should not pay for.
    # SimulatedNode is lazy for a different reason: ``python -m
    # repro.cluster.node`` must not find its own module pre-imported by
    # this package's import chain (runpy warns about that).
    if name == "ClusterExecutor":
        from repro.cluster.client import ClusterExecutor

        return ClusterExecutor
    if name == "SimulatedNode":
        from repro.cluster._simnode import SimulatedNode

        return SimulatedNode
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
