"""A simulated shared-nothing cluster.

The paper evaluates BRACE on a 60-node cluster connected by a pair of gigabit
switches.  This reproduction replaces that hardware with a deterministic
model: nodes process abstract work units at a configurable rate, messages pay
a per-message latency and a per-byte cost, and node pairs that live on
different switches pay an inter-switch penalty (which produces the throughput
dip around 20 nodes that the paper attributes to its multi-switch topology).

The model is used to convert the *per-worker work and communication totals*
measured by the BRACE runtime into virtual elapsed time, from which the
scale-up figures (5–8) report agent-ticks per second.
"""

from repro.cluster.network import NetworkModel, NetworkTotals
from repro.cluster.node import SimulatedNode
from repro.cluster.costmodel import ClusterCostModel, WorkerTickCost, TickCostBreakdown

__all__ = [
    "NetworkModel",
    "NetworkTotals",
    "SimulatedNode",
    "ClusterCostModel",
    "WorkerTickCost",
    "TickCostBreakdown",
]
