"""Cost-model-driven shard-to-node placement.

The cluster executor hosts resident shards on node *processes*; this
module decides which shard lives on which node.  Shards are the strips of
a one-dimensional partitioning, so only *adjacent* shards exchange
boundary traffic (replicas, migrations) every tick — a placement that
keeps each node's shards contiguous pays for exactly one boundary cut per
node pair, which is the cheapest any placement can be under the strip
protocol.  Within the contiguous family, compositions are scored
lexicographically: first by compute balance (the max over nodes of
weight/speed — spreading work is *why* shards leave the driver's machine,
so no amount of modeled network cost may collapse the placement onto one
node), then by the boundary transfer seconds of the same
:class:`~repro.cluster.network.NetworkModel` the virtual-time cost model
uses (switch penalties included), which picks among equally balanced
splits the one whose cuts land on the cheapest links.

Everything here is deterministic: ties break toward the earliest
composition in lexicographic order, so the same inputs always produce the
same placement on every machine.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.cluster.network import NetworkModel
from repro.cluster._simnode import SimulatedNode

__all__ = ["plan_placement", "placement_makespan"]

#: Above this many contiguous compositions the planner switches from
#: exhaustive enumeration to the greedy cumulative split.
_ENUMERATION_LIMIT = 5000


def _compositions(num_shards: int, num_nodes: int):
    """Yield every split of ``num_shards`` ordered shards into ``num_nodes``
    contiguous (possibly empty) blocks, as tuples of block sizes."""
    if num_nodes == 1:
        yield (num_shards,)
        return
    for first in range(num_shards + 1):
        for rest in _compositions(num_shards - first, num_nodes - 1):
            yield (first,) + rest


def _composition_count(num_shards: int, num_nodes: int) -> int:
    """C(num_shards + num_nodes - 1, num_nodes - 1) without factorials."""
    count = 1
    for i in range(1, num_nodes):
        count = count * (num_shards + i) // i
    return count


def placement_makespan(
    sizes: Sequence[int],
    weights: Sequence[float],
    nodes: Sequence[SimulatedNode],
    network: NetworkModel,
    boundary_bytes: float,
) -> tuple:
    """Lexicographic score of one contiguous block composition (lower wins).

    ``sizes[i]`` shards go to ``nodes[i]`` in shard order.  The first
    component is the compute makespan — the max over nodes of its shards'
    total weight (work units) divided by its speed; the second is the
    slowest node's boundary transfer time — a cut exists between the last
    shard of one non-empty block and the first shard of the next, and
    both sides pay for it (send on one, receive on the other, same wire
    time).  Compute balance dominates: the network term only decides
    between compositions whose compute loads tie.
    """
    compute_seconds = [0.0] * len(sizes)
    boundary_seconds = [0.0] * len(sizes)
    position = 0
    blocks: List[int] = []  # node index owning each shard, in shard order
    for node_index, size in enumerate(sizes):
        for _ in range(size):
            blocks.append(node_index)
            compute_seconds[node_index] += weights[position] / nodes[node_index].work_units_per_second
            position += 1
    for shard in range(1, len(blocks)):
        left, right = blocks[shard - 1], blocks[shard]
        if left != right:
            seconds = network.transfer_seconds(left, right, int(boundary_bytes))
            boundary_seconds[left] += seconds
            boundary_seconds[right] += seconds
    return (max(compute_seconds, default=0.0), max(boundary_seconds, default=0.0))


def _greedy_sizes(
    weights: Sequence[float], nodes: Sequence[SimulatedNode]
) -> List[int]:
    """Contiguous split by cumulative weight, proportional to node speed.

    The fallback when the composition space is too large to enumerate:
    walk the shards in order, cutting whenever the running block weight
    reaches the node's speed-proportional share of the total.
    """
    total_weight = sum(weights) or 1.0
    total_speed = sum(node.work_units_per_second for node in nodes)
    sizes = [0] * len(nodes)
    node_index = 0
    accumulated = 0.0
    share = total_weight * nodes[0].work_units_per_second / total_speed
    for position, weight in enumerate(weights):
        remaining_shards = len(weights) - position
        remaining_nodes = len(nodes) - node_index
        # Never strand trailing nodes without shards while shards remain.
        if (
            node_index < len(nodes) - 1
            and sizes[node_index] > 0
            and (accumulated >= share or remaining_shards <= remaining_nodes - 1)
        ):
            node_index += 1
            accumulated = 0.0
            share = total_weight * nodes[node_index].work_units_per_second / total_speed
        sizes[node_index] += 1
        accumulated += weight
    return sizes


def plan_placement(
    shard_ids: Sequence[int],
    weights: Dict[int, float],
    nodes: Sequence[SimulatedNode],
    network: NetworkModel,
    boundary_bytes: float = 4096.0,
) -> Dict[int, int]:
    """Assign every shard to a node index; returns ``{shard_id: node}``.

    ``weights`` carries each shard's compute weight (owned-agent counts —
    the same signal the load balancer uses); ``boundary_bytes`` estimates
    the per-tick traffic of one boundary cut, pricing the cuts of
    equally balanced compositions against each other.  Small composition
    spaces are searched exhaustively; larger ones fall back to a
    speed-proportional greedy split of the cumulative weight.
    """
    ordered = sorted(shard_ids)
    if not nodes:
        raise ValueError("plan_placement needs at least one node")
    weight_row = [float(weights.get(shard_id, 1.0)) for shard_id in ordered]
    # Score with a totals-free copy: transfer_seconds() accumulates usage
    # totals, and hypothetical compositions must not count as traffic on
    # the runtime's shared model.
    scoring_network = NetworkModel(
        latency_seconds=network.latency_seconds,
        bandwidth_bytes_per_second=network.bandwidth_bytes_per_second,
        nodes_per_switch=network.nodes_per_switch,
        inter_switch_penalty=network.inter_switch_penalty,
    )
    if _composition_count(len(ordered), len(nodes)) <= _ENUMERATION_LIMIT:
        best_sizes = None
        best_score = None
        for sizes in _compositions(len(ordered), len(nodes)):
            score = placement_makespan(
                sizes, weight_row, nodes, scoring_network, boundary_bytes
            )
            if best_score is None or score < best_score:
                best_score = score
                best_sizes = sizes
        sizes = list(best_sizes)  # type: ignore[arg-type]
    else:
        sizes = _greedy_sizes(weight_row, nodes)
    placement: Dict[int, int] = {}
    position = 0
    for node_index, size in enumerate(sizes):
        for _ in range(size):
            placement[ordered[position]] = node_index
            position += 1
    return placement
