"""Network model for the simulated cluster.

The model is intentionally simple — a per-message latency plus a per-byte
transfer cost — but it captures the two effects the paper's evaluation
depends on:

* communication volume matters: replication traffic and non-local effect
  traffic slow a tick down in proportion to the bytes crossing node
  boundaries, while collocated (same-node) transfers are free;
* topology matters: nodes attached to different switches pay an inter-switch
  penalty on both latency and bandwidth, reproducing the throughput dip the
  paper observes once the job no longer fits on a single switch (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkTotals:
    """Running totals of simulated network usage."""

    messages: int = 0
    bytes_sent: int = 0
    local_messages: int = 0
    local_bytes: int = 0

    def merge(self, other: "NetworkTotals") -> None:
        """Accumulate another totals object into this one."""
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.local_messages += other.local_messages
        self.local_bytes += other.local_bytes


@dataclass
class NetworkModel:
    """Cost model for messages between simulated nodes.

    Parameters
    ----------
    latency_seconds:
        Fixed cost per message between distinct nodes on the same switch.
    bandwidth_bytes_per_second:
        Link bandwidth for same-switch transfers (1 Gbit/s by default,
        matching the paper's cluster).
    nodes_per_switch:
        How many nodes share a switch; node ``i`` lives on switch
        ``i // nodes_per_switch``.
    inter_switch_penalty:
        Multiplier (> 1) applied to both latency and transfer time when the
        endpoints live on different switches.
    """

    latency_seconds: float = 100e-6
    bandwidth_bytes_per_second: float = 125_000_000.0
    nodes_per_switch: int = 20
    inter_switch_penalty: float = 1.6
    totals: NetworkTotals = field(default_factory=NetworkTotals)

    def switch_of(self, node_id: int) -> int:
        """Return the switch hosting ``node_id``."""
        return int(node_id) // max(1, int(self.nodes_per_switch))

    def same_switch(self, src: int, dst: int) -> bool:
        """True when both nodes hang off the same switch."""
        return self.switch_of(src) == self.switch_of(dst)

    def transfer_seconds(self, src: int, dst: int, num_bytes: int, messages: int = 1) -> float:
        """Simulated time to move ``num_bytes`` from ``src`` to ``dst``.

        Transfers within a node are collocated and cost nothing (the paper's
        collocation optimization routes them through memory).
        """
        if src == dst:
            self.totals.local_messages += messages
            self.totals.local_bytes += num_bytes
            return 0.0
        penalty = 1.0 if self.same_switch(src, dst) else self.inter_switch_penalty
        self.totals.messages += messages
        self.totals.bytes_sent += num_bytes
        latency = self.latency_seconds * messages * penalty
        transfer = num_bytes / self.bandwidth_bytes_per_second * penalty
        return latency + transfer

    def broadcast_seconds(self, src: int, destinations: list[int], num_bytes: int) -> float:
        """Simulated time for ``src`` to send ``num_bytes`` to every destination."""
        return sum(
            self.transfer_seconds(src, dst, num_bytes) for dst in destinations if dst != src
        )

    def reset_totals(self) -> None:
        """Zero the running usage totals."""
        self.totals = NetworkTotals()
