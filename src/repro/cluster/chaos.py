"""Fault-injection proxy for driver<->node links.

The proxy sits between a node and the driver: the node dials the proxy,
the proxy dials the real listen address and pumps bytes both ways —
except where a :class:`FrameFault` tells it to misbehave.  Faults
operate at *frame* granularity (the proxy runs its own
`FrameAssembler` per direction), so a test can say "corrupt the 7th
frame the node sends" and know exactly which protocol step it hit.

The supported actions map one-to-one onto the failure modes the
envelope in :mod:`repro.cluster.protocol` must catch:

``corrupt``
    Flip one payload byte → `FrameIntegrityError` (CRC, or MAC when
    authenticated).
``truncate``
    Forward the frame with its tail cut off, then close both sockets →
    `ConnectionLostError` (mid-frame EOF).
``drop``
    Swallow the frame → the *next* frame arrives with a skipped
    sequence number → `FrameSequenceError`.
``duplicate``
    Forward the frame twice → the second copy re-uses a consumed
    sequence number → `FrameSequenceError`.
``delay``
    Stall the direction for ``delay_seconds`` before forwarding —
    harmless below the heartbeat timeout, a node-death detection above
    it.  Either way the state never diverges.

Every fault that actually fires is recorded in ``proxy.events`` so
tests can assert the injection happened rather than silently testing a
clean run.
"""
from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.protocol import FrameAssembler, encode_frame

__all__ = ["FrameFault", "ChaosProxy", "TO_DRIVER", "TO_NODE", "FAULT_ACTIONS"]

#: Direction labels, named from the proxy's point of view.
TO_DRIVER = "to_driver"  # node -> driver bytes
TO_NODE = "to_node"  # driver -> node bytes

FAULT_ACTIONS = ("drop", "duplicate", "corrupt", "truncate", "delay")


@dataclass(frozen=True)
class FrameFault:
    """One planned misbehavior: apply ``action`` to the ``index``-th
    frame flowing in ``direction`` (counted per direction, from 0,
    across the proxy's lifetime)."""

    direction: str
    index: int
    action: str
    #: For ``delay``: how long to stall before forwarding.
    delay_seconds: float = 0.0
    #: For ``corrupt``: payload offset of the byte to flip (mod length).
    corrupt_offset: int = 0
    #: For ``truncate``: how many tail bytes to cut (at least 1 is cut).
    truncate_bytes: int = 4

    def __post_init__(self) -> None:
        if self.direction not in (TO_DRIVER, TO_NODE):
            raise ValueError(f"unknown fault direction {self.direction!r}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")


@dataclass
class _Pipe:
    """One direction of one relayed connection."""

    source: socket.socket
    sink: socket.socket
    direction: str
    assembler: FrameAssembler = field(default_factory=FrameAssembler)


class ChaosProxy:
    """A frame-aware TCP relay that injects planned faults.

    Usage::

        proxy = ChaosProxy(driver_host, driver_port, faults=[...])
        proxy.start()
        # point the node at ("127.0.0.1", proxy.port) instead of the driver
        ...
        proxy.close()

    The proxy accepts any number of inbound connections (a respawned or
    re-admitted node dials again); frame indices for fault matching run
    per direction across all connections, in arrival order.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        faults: Tuple[FrameFault, ...] = (),
    ) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._faults = {(f.direction, f.index): f for f in faults}
        self._counts = {TO_DRIVER: 0, TO_NODE: 0}
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._sockets: List[socket.socket] = []
        self._closing = threading.Event()
        #: ``(direction, index, action)`` for every fault that fired.
        self.events: List[Tuple[str, int, str]] = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        self._listener = listener
        thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self

    @property
    def port(self) -> int:
        assert self._listener is not None, "proxy not started"
        return self._listener.getsockname()[1]

    def close(self) -> None:
        self._closing.set()
        if self._listener is not None:
            # shutdown() wakes a thread parked in accept(); close() alone
            # can leave it blocked until its join timeout.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        self._shutdown_pipes()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _shutdown_pipes(self) -> None:
        with self._lock:
            sockets, self._sockets = self._sockets, []
        for sock in sockets:
            # shutdown() first so pump threads blocked in recv() wake up
            # immediately — close() alone can leave them parked until
            # their join timeout.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # relay machinery

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                upstream = socket.create_connection(self._upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._sockets.extend((client, upstream))
            for pipe in (
                _Pipe(client, upstream, TO_DRIVER),
                _Pipe(upstream, client, TO_NODE),
            ):
                thread = threading.Thread(
                    target=self._pump,
                    args=(pipe,),
                    name=f"chaos-{pipe.direction}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def _pump(self, pipe: _Pipe) -> None:
        try:
            while True:
                chunk = pipe.source.recv(1 << 16)
                if not chunk:
                    break
                for payload in pipe.assembler.feed(chunk):
                    if not self._forward(pipe, payload):
                        return  # terminal fault: sockets already closed
        except OSError:
            pass
        finally:
            for sock in (pipe.source, pipe.sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _forward(self, pipe: _Pipe, payload: bytes) -> bool:
        """Apply any planned fault and relay; False ends the pipe."""
        with self._lock:
            index = self._counts[pipe.direction]
            self._counts[pipe.direction] = index + 1
            fault = self._faults.get((pipe.direction, index))
            if fault is not None:
                self.events.append((pipe.direction, index, fault.action))

        if fault is None:
            pipe.sink.sendall(encode_frame(payload))
            return True

        if fault.action == "drop":
            return True
        if fault.action == "delay":
            time.sleep(fault.delay_seconds)
            pipe.sink.sendall(encode_frame(payload))
            return True
        if fault.action == "duplicate":
            frame = encode_frame(payload)
            pipe.sink.sendall(frame + frame)
            return True
        if fault.action == "corrupt":
            mutated = bytearray(payload)
            offset = fault.corrupt_offset % len(mutated) if mutated else 0
            if mutated:
                mutated[offset] ^= 0xFF
            pipe.sink.sendall(encode_frame(bytes(mutated)))
            return True
        # truncate: ship a cut-off frame, then hard-close both ends so
        # the receiver sees EOF mid-frame rather than misaligned bytes.
        # shutdown() before close(): close() alone may not push the FIN
        # out while the opposite pump thread is still blocked in recv()
        # on the same socket object.
        cut = max(1, min(fault.truncate_bytes, len(payload) + 7))
        frame = encode_frame(payload)
        try:
            pipe.sink.sendall(frame[:-cut])
        except OSError:
            pass
        for sock in (pipe.source, pipe.sink):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        return False
