"""Worker nodes: the simulated cost-model node and the real node process.

:class:`SimulatedNode` is the virtual-time side — a processing rate the
cost model divides work units by.  The same module doubles as the *real*
node entry point: ``python -m repro.cluster.node --connect host:port``
starts a shard-hosting process (:mod:`repro.cluster.server`) on this
machine and dials the given cluster driver, so the two meanings of
"node" — the modeled one and the physical one — stay one concept with
one id space.

The class itself is defined in :mod:`repro.cluster._simnode` (and only
re-exported here) so that the rest of the package never imports *this*
module — a requirement for the ``-m`` entry point to start cleanly.
"""

from repro.cluster._simnode import SimulatedNode

__all__ = ["SimulatedNode"]


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    from repro.cluster.server import main

    main()
