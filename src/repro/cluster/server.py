"""The cluster node process: hosts resident shards behind a TCP socket.

``python -m repro.cluster.node --connect host:port`` runs :func:`serve`:
the node dials the driver (retrying while the driver is still binding its
listener), answers the driver's ``challenge`` with a ``hello`` — carrying
the join token and, when a cluster secret is configured, an HMAC-SHA256
proof over the challenge nonce — then processes commands one at a time
from the socket: shard seeding, the per-tick delta rounds, whole-shard
collection for migrations, stateless callables — replying to each in
arrival order.  A daemon thread emits ``heartbeat`` frames on an interval
so the driver can tell a slow shard from a dead node while a long phase
computes.

Credentials never appear on the command line (``ps`` on a shared host
would leak them): the token and secret come from the
``REPRO_CLUSTER_TOKEN`` / ``REPRO_CLUSTER_SECRET`` environment variables
or from files named by ``--token-file`` / ``--secret-file``.

Every frame travels in the integrity envelope of
:mod:`repro.cluster.protocol`; a corrupt, out-of-sequence or badly-MAC'd
frame is **fail-stop** — the node exits with the typed error rather than
executing a command it cannot trust, and the driver's supervision treats
the silence as a node death.

Shard states live in this process for its whole lifetime (the resident
contract); the codec is armed by importing :mod:`repro.brace.shards`,
which registers every protocol payload type with the columnar wire.
"""
from __future__ import annotations

import argparse
import os
import pickle
import socket
import threading
import time
import traceback
from typing import Any, Dict, Optional

import repro.brace.shards  # noqa: F401  (registers wire types with the codec)
from repro.cluster.auth import (
    SECRET_ENV_VAR,
    TOKEN_ENV_VAR,
    AuthenticationError,
    derive_session_key,
    hello_proof,
    load_credential,
)
from repro.cluster.protocol import (
    ConnectionLostError,
    FrameChannel,
    ProtocolError,
)
from repro.cluster.retry import RetryPolicy
from repro.ipc.frames import ColumnarCodec

__all__ = ["serve", "main"]

#: Seconds the node keeps retrying its initial connect.  Long enough to
#: start nodes before the driver listens (the docs walkthrough does), short
#: enough that a typo'd address fails while a human is still watching.
CONNECT_RETRY_SECONDS = 30.0


class _NodeState:
    """Everything one node process holds between commands."""

    def __init__(self) -> None:
        self.shards: Dict[int, Any] = {}
        self.codec = ColumnarCodec()

    def decode(self, codec_name: Optional[str], blob: bytes):
        if codec_name == "columnar":
            return self.codec.decode(blob)
        return pickle.loads(blob)

    def encode(self, codec_name: Optional[str], value) -> bytes:
        if codec_name == "columnar":
            return self.codec.encode(value)
        return pickle.dumps(value, pickle.HIGHEST_PROTOCOL)


def _heartbeat_loop(channel: FrameChannel, interval: float,
                    stop: threading.Event) -> None:
    """Emit heartbeat frames until told to stop or the socket dies."""
    while not stop.wait(interval):
        try:
            channel.send_message("heartbeat", {"pid": os.getpid()})
        except OSError:
            return


def _exception_reply(error: BaseException) -> dict:
    """Package an exception for the driver: the object when picklable,
    always the formatted traceback for the log."""
    formatted = "".join(traceback.format_exception(type(error), error, error.__traceback__))
    try:
        blob = pickle.dumps(error, pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)  # some exceptions pickle but refuse to rebuild
    except Exception:  # noqa: BLE001 - anything unpicklable falls back to text
        blob = None
    return {"exception": blob, "traceback": formatted}


def _handle(state: _NodeState, kind: str, meta: Any, blob: bytes) -> tuple:
    """Execute one command; returns ``(reply_kind, reply_meta, reply_blob)``."""
    if kind == "init_shard":
        shard_id = meta["shard_id"]
        factory = meta["factory"]
        payload = state.decode(meta["codec"], blob)
        # factory=None installs the payload as the shard state directly —
        # the migration path for states without a re-seeding protocol.
        state.shards[shard_id] = (
            factory(shard_id, payload) if factory is not None else payload
        )
        return "ok", {"shard_id": shard_id, "pid": os.getpid()}, b""
    if kind == "run_task":
        shard_id = meta["shard_id"]
        if shard_id not in state.shards:
            raise KeyError(f"resident shard {shard_id!r} is not hosted on this node")
        start = time.perf_counter()
        payload = state.decode(meta["codec"], blob)
        codec_seconds = time.perf_counter() - start
        start = time.perf_counter()
        value = meta["fn"](state.shards[shard_id], payload)
        wall_seconds = time.perf_counter() - start
        start = time.perf_counter()
        result_blob = state.encode(meta["codec"], value)
        codec_seconds += time.perf_counter() - start
        return (
            "result",
            {"shard_id": shard_id, "wall_seconds": wall_seconds,
             "codec_seconds": codec_seconds},
            result_blob,
        )
    if kind == "collect_shard":
        # Ship the whole shard through the codec for a migration.  A state
        # that defines ``migration_seed()`` (the BRACE Worker does) chooses
        # its own travelling form — for Workers that is a ShardSeed of the
        # owned agents only: retained replicas and the delta send history
        # are deliberately left behind, because the driver follows every
        # migration with an adopt_partitioning round that resets them on
        # all shards.  States without the hook travel as themselves and
        # are installed verbatim on the destination.
        shard_id = meta["shard_id"]
        shard_state = state.shards.pop(shard_id)
        seed_hook = getattr(shard_state, "migration_seed", None)
        payload = seed_hook() if seed_hook is not None else shard_state
        return (
            "shard_state",
            {"shard_id": shard_id, "reseed": seed_hook is not None},
            state.encode(meta["codec"], payload),
        )
    if kind == "call":
        task = pickle.loads(blob)
        start = time.perf_counter()
        value = task()
        wall_seconds = time.perf_counter() - start
        return (
            "result",
            {"wall_seconds": wall_seconds},
            pickle.dumps(value, pickle.HIGHEST_PROTOCOL),
        )
    if kind == "reset":
        # The echoed nonce lets the driver drain stale replies left over
        # from an aborted round: everything queued before this ack is old.
        state.shards.clear()
        return "ok", {"pid": os.getpid(), "nonce": (meta or {}).get("nonce")}, b""
    if kind == "sync":
        # Same stream-drain contract as reset, but the shard state stays:
        # the driver uses this to resynchronize *surviving* nodes after
        # another node died mid-round without discarding their residency.
        return "ok", {"pid": os.getpid(), "nonce": (meta or {}).get("nonce")}, b""
    if kind == "shutdown":
        return "bye", {"pid": os.getpid()}, b""
    raise ValueError(f"unknown command {kind!r}")


def _handshake(
    channel: FrameChannel, token: Optional[str], secret: Optional[str]
) -> None:
    """Answer the driver's challenge; arm frame MACs when a secret is set.

    The driver speaks first: a ``challenge`` carrying a fresh nonce and
    whether it requires authentication.  The node replies ``hello`` with
    its pid, the join token, and — when a secret is configured — the
    HMAC proof over the nonce; from that frame on both sides MAC every
    frame with the nonce-derived session key.  A driver that rejects the
    hello simply closes the connection.
    """
    message = channel.recv_message()
    if message is None:
        raise ConnectionLostError("driver closed before sending a challenge")
    kind, meta, _ = message
    if kind != "challenge":
        raise AuthenticationError(
            f"expected a challenge from the driver, received {kind!r}"
        )
    nonce = meta.get("nonce")
    if meta.get("auth_required") and secret is None:
        raise AuthenticationError(
            "the driver requires an authenticated hello but this node has "
            f"no cluster secret; set {SECRET_ENV_VAR} or pass --secret-file"
        )
    hello = {"pid": os.getpid(), "token": token}
    if secret is not None and nonce is not None:
        hello["proof"] = hello_proof(secret, nonce)
    channel.send_message("hello", hello)
    if secret is not None and nonce is not None:
        channel.enable_auth(derive_session_key(secret, nonce))


def serve(
    host: str,
    port: int,
    token: Optional[str] = None,
    heartbeat_interval: float = 0.5,
    retry_seconds: float = CONNECT_RETRY_SECONDS,
    secret: Optional[str] = None,
) -> None:
    """Connect to the driver at ``host:port`` and serve shard commands.

    Returns when the driver sends ``shutdown`` or closes the connection;
    raises the typed `ProtocolError` if the stream itself becomes
    untrustworthy (corruption, reordering, a failed MAC) — fail-stop, so
    a fault can never execute as a command.
    """
    policy = RetryPolicy(connect_timeout_seconds=retry_seconds)
    sock = policy.retry(
        lambda: socket.create_connection((host, port)),
        describe=f"connecting to cluster driver at {host}:{port}",
    )
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    state = _NodeState()
    channel = FrameChannel(sock, role="node")
    stop = threading.Event()
    try:
        _handshake(channel, token, secret)
    except ProtocolError:
        sock.close()
        raise
    beat = threading.Thread(
        target=_heartbeat_loop, args=(channel, heartbeat_interval, stop), daemon=True
    )
    beat.start()
    try:
        while True:
            try:
                message = channel.recv_message()
            except (ConnectionLostError, OSError):
                return  # driver went away; nothing left to serve
            if message is None:
                return
            kind, meta, blob = message
            try:
                reply = _handle(state, kind, meta, blob)
            except BaseException as error:  # noqa: BLE001 - every task error travels back
                reply = ("error", _exception_reply(error), b"")
            channel.send_message(*reply)
            if kind == "shutdown":
                return
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[list] = None) -> None:
    """CLI entry point: ``python -m repro.cluster.node --connect host:port``."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.node",
        description="Host BRACE resident shards on this machine for a cluster driver.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the driver's cluster listener",
    )
    parser.add_argument(
        "--token-file",
        default=None,
        metavar="PATH",
        help="file holding the handshake token expected by the driver "
        f"(default: the {TOKEN_ENV_VAR} environment variable)",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the shared cluster secret for authenticated "
        f"frames (default: the {SECRET_ENV_VAR} environment variable)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="seconds between liveness frames (default 0.5)",
    )
    parser.add_argument(
        "--retry-seconds",
        type=float,
        default=CONNECT_RETRY_SECONDS,
        help="how long to keep retrying the initial connect (default 30)",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    serve(
        host,
        int(port),
        token=load_credential(TOKEN_ENV_VAR, args.token_file),
        heartbeat_interval=args.heartbeat_interval,
        retry_seconds=args.retry_seconds,
        secret=load_credential(SECRET_ENV_VAR, args.secret_file),
    )
