"""Length-prefixed framing for the socket shard protocol.

Every message between the cluster driver and a node process is one
*frame*: an 8-byte big-endian length prefix followed by exactly that many
payload bytes.  The payload itself is a small pickled ``(kind, meta)``
header plus an opaque blob that has already been encoded by the shard
codec — the blob is never nested inside the pickle, so columnar frames
stay columnar on the wire.

The stream-to-frame step is sans-io (`FrameAssembler`) so it can be
driven byte-by-byte in tests without a socket; `send_frame`/`recv_frame`
wrap it for real sockets.
"""
from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Tuple

__all__ = [
    "ProtocolError",
    "ConnectionLostError",
    "FrameAssembler",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "pack_message",
    "unpack_message",
    "send_frame",
    "send_message",
]

#: 8-byte big-endian unsigned frame length.
_LENGTH = struct.Struct(">Q")
#: 4-byte big-endian unsigned header length inside a message payload.
_HEADER_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame's payload.  Large enough for any shard
#: state we ship (whole-shard migrations included), small enough that a
#: corrupted or misaligned length prefix fails fast instead of waiting
#: on terabytes that will never arrive.
MAX_FRAME_BYTES = 1 << 32


class ProtocolError(Exception):
    """The byte stream violates the framing protocol (corrupt length,
    oversized frame, malformed message header)."""


class ConnectionLostError(ProtocolError):
    """The peer went away mid-frame: bytes promised by a length prefix
    (or the prefix itself, partially read) never arrived."""


def encode_frame(payload: bytes) -> bytes:
    """Return ``payload`` wrapped with its 8-byte length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(payload)) + payload


class FrameAssembler:
    """Incremental frame decoder: feed arbitrary chunks, get whole frames.

    The assembler never blocks and never touches a socket — it is the
    pure stream-to-frame state machine, so adversarial chunkings (one
    byte at a time, boundaries mid-prefix, many frames per chunk) can be
    tested without any transport underneath.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet complete a frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk`` and return every frame payload it completes."""
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte limit; stream is corrupt or misaligned"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_LENGTH.size:end]))
            del self._buffer[:end]
        return frames

    def close(self) -> None:
        """Signal end-of-stream.  Raises `ConnectionLostError` if the
        stream ended inside a frame (a partial prefix or a partial
        payload); a close at a frame boundary is clean."""
        if self._buffer:
            raise ConnectionLostError(
                f"connection closed mid-frame with {len(self._buffer)} "
                "unconsumed bytes buffered"
            )


def pack_message(kind: str, meta: Any = None, blob: bytes = b"") -> bytes:
    """Build one frame payload: pickled ``(kind, meta)`` header + raw blob.

    ``blob`` is carried verbatim after the header — callers pass the
    codec-encoded shard payload here so its encoding survives the trip
    untouched (pickling it inside the header tuple would lose the
    columnar representation).
    """
    header = pickle.dumps((kind, meta), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER_LENGTH.pack(len(header)) + header + blob


def unpack_message(payload: bytes) -> Tuple[str, Any, bytes]:
    """Inverse of `pack_message`: return ``(kind, meta, blob)``.

    ``meta`` is always a dict (``None`` normalizes to ``{}``) so receivers
    can index it without null checks.
    """
    if len(payload) < _HEADER_LENGTH.size:
        raise ProtocolError(
            f"message payload of {len(payload)} bytes is shorter than the "
            "4-byte header-length field"
        )
    (header_length,) = _HEADER_LENGTH.unpack_from(payload)
    header_end = _HEADER_LENGTH.size + header_length
    if len(payload) < header_end:
        raise ProtocolError(
            f"message header announces {header_length} bytes but only "
            f"{len(payload) - _HEADER_LENGTH.size} follow"
        )
    try:
        kind, meta = pickle.loads(payload[_HEADER_LENGTH.size:header_end])
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is protocol-level
        raise ProtocolError(f"malformed message header: {exc}") from exc
    return kind, meta if meta is not None else {}, payload[header_end:]


def send_frame(sock, payload: bytes) -> None:
    """Write one length-prefixed frame to a socket."""
    sock.sendall(encode_frame(payload))


def send_message(sock, kind: str, meta: Any = None, blob: bytes = b"") -> int:
    """Pack and send one message; returns the frame payload size in bytes."""
    payload = pack_message(kind, meta, blob)
    send_frame(sock, payload)
    return len(payload)


class FrameReader:
    """Per-connection frame receiver: an assembler plus a queue of frames
    already completed but not yet claimed.

    A node may interleave heartbeat frames with a reply, so one
    ``recv()`` can complete several frames at once — the surplus is kept
    here for the next call instead of being lost or treated as an error.
    """

    def __init__(self, sock) -> None:
        self._sock = sock
        self._assembler = FrameAssembler()
        self._ready: List[bytes] = []

    def absorb(self, chunk: bytes) -> None:
        """Feed bytes read out-of-band (e.g. drained during a blocking
        send) so the frames they complete surface on later recv calls."""
        self._ready.extend(self._assembler.feed(chunk))

    def recv_frame(self) -> Optional[bytes]:
        """Return the next frame payload, or ``None`` on clean end-of-stream.

        Raises `ConnectionLostError` if the peer closed mid-frame and
        propagates ``socket.timeout`` from the underlying socket, so a
        driver-side recv timeout surfaces to the caller unchanged.
        """
        while not self._ready:
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                self._assembler.close()  # raises ConnectionLostError mid-frame
                return None
            self._ready.extend(self._assembler.feed(chunk))
        return self._ready.pop(0)

    def recv_message(self) -> Optional[Tuple[str, Any, bytes]]:
        """Receive and unpack one message, or ``None`` on clean end-of-stream."""
        payload = self.recv_frame()
        if payload is None:
            return None
        return unpack_message(payload)
