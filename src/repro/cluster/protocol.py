"""Length-prefixed framing for the socket shard protocol.

Every message between the cluster driver and a node process is one
*frame*: an 8-byte big-endian length prefix followed by exactly that many
payload bytes.  The payload itself is a small pickled ``(kind, meta)``
header plus an opaque blob that has already been encoded by the shard
codec — the blob is never nested inside the pickle, so columnar frames
stay columnar on the wire.

The stream-to-frame step is sans-io (`FrameAssembler`) so it can be
driven byte-by-byte in tests without a socket; `send_frame`/`recv_frame`
wrap it for real sockets.

On top of the raw frame sits the *envelope* (`seal_payload` /
`open_payload`): a CRC32, a per-direction sequence number and — when a
cluster secret is configured — an HMAC-SHA256 tag over the direction,
the sequence number and the body.  The envelope is what makes transport
faults **fail-stop**: a flipped byte breaks the CRC, a duplicated or
dropped frame breaks the sequence, a forged or replayed frame breaks the
MAC — each surfaces as a typed `ProtocolError` instead of silently
corrupt simulation state.  :class:`FrameChannel` pairs the envelope with
a socket and is what both the driver and the node actually speak.
"""
from __future__ import annotations

import hmac
import struct
import threading
import zlib
import pickle
from typing import Any, List, Optional, Tuple

__all__ = [
    "ProtocolError",
    "ConnectionLostError",
    "FrameIntegrityError",
    "FrameSequenceError",
    "FrameAssembler",
    "FrameReader",
    "FrameChannel",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "pack_message",
    "unpack_message",
    "seal_payload",
    "open_payload",
    "send_frame",
    "send_message",
]

#: 8-byte big-endian unsigned frame length.
_LENGTH = struct.Struct(">Q")
#: 4-byte big-endian unsigned header length inside a message payload.
_HEADER_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame's payload.  Large enough for any shard
#: state we ship (whole-shard migrations included), small enough that a
#: corrupted or misaligned length prefix fails fast instead of waiting
#: on terabytes that will never arrive.
MAX_FRAME_BYTES = 1 << 32


class ProtocolError(Exception):
    """The byte stream violates the framing protocol (corrupt length,
    oversized frame, malformed message header)."""


class ConnectionLostError(ProtocolError):
    """The peer went away mid-frame: bytes promised by a length prefix
    (or the prefix itself, partially read) never arrived."""


class FrameIntegrityError(ProtocolError):
    """A frame's CRC32 or MAC did not verify: the bytes were corrupted in
    transit (or forged).  The stream cannot be trusted past this frame."""


class FrameSequenceError(ProtocolError):
    """A frame arrived with the wrong sequence number: one was duplicated,
    dropped or reordered.  The stream cannot be resynchronized safely."""


def encode_frame(payload: bytes) -> bytes:
    """Return ``payload`` wrapped with its 8-byte length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(payload)) + payload


class FrameAssembler:
    """Incremental frame decoder: feed arbitrary chunks, get whole frames.

    The assembler never blocks and never touches a socket — it is the
    pure stream-to-frame state machine, so adversarial chunkings (one
    byte at a time, boundaries mid-prefix, many frames per chunk) can be
    tested without any transport underneath.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet complete a frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk`` and return every frame payload it completes."""
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte limit; stream is corrupt or misaligned"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_LENGTH.size:end]))
            del self._buffer[:end]
        return frames

    def close(self) -> None:
        """Signal end-of-stream.  Raises `ConnectionLostError` if the
        stream ended inside a frame (a partial prefix or a partial
        payload); a close at a frame boundary is clean."""
        if self._buffer:
            raise ConnectionLostError(
                f"connection closed mid-frame with {len(self._buffer)} "
                "unconsumed bytes buffered"
            )


def pack_message(kind: str, meta: Any = None, blob: bytes = b"") -> bytes:
    """Build one frame payload: pickled ``(kind, meta)`` header + raw blob.

    ``blob`` is carried verbatim after the header — callers pass the
    codec-encoded shard payload here so its encoding survives the trip
    untouched (pickling it inside the header tuple would lose the
    columnar representation).
    """
    header = pickle.dumps((kind, meta), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER_LENGTH.pack(len(header)) + header + blob


def unpack_message(payload: bytes) -> Tuple[str, Any, bytes]:
    """Inverse of `pack_message`: return ``(kind, meta, blob)``.

    ``meta`` is always a dict (``None`` normalizes to ``{}``) so receivers
    can index it without null checks.
    """
    if len(payload) < _HEADER_LENGTH.size:
        raise ProtocolError(
            f"message payload of {len(payload)} bytes is shorter than the "
            "4-byte header-length field"
        )
    (header_length,) = _HEADER_LENGTH.unpack_from(payload)
    header_end = _HEADER_LENGTH.size + header_length
    if len(payload) < header_end:
        raise ProtocolError(
            f"message header announces {header_length} bytes but only "
            f"{len(payload) - _HEADER_LENGTH.size} follow"
        )
    try:
        kind, meta = pickle.loads(payload[_HEADER_LENGTH.size:header_end])
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is protocol-level
        raise ProtocolError(f"malformed message header: {exc}") from exc
    return kind, meta if meta is not None else {}, payload[header_end:]


def send_frame(sock, payload: bytes) -> None:
    """Write one length-prefixed frame to a socket."""
    sock.sendall(encode_frame(payload))


def send_message(sock, kind: str, meta: Any = None, blob: bytes = b"") -> int:
    """Pack and send one message; returns the frame payload size in bytes."""
    payload = pack_message(kind, meta, blob)
    send_frame(sock, payload)
    return len(payload)


#: Envelope prefix: CRC32 over everything after it, one flags byte, and
#: an 8-byte big-endian sequence number.
_ENVELOPE = struct.Struct(">IBQ")
#: Flags bit 0: the frame carries an HMAC-SHA256 tag after the header.
_FLAG_AUTH = 0x01
_MAC_BYTES = 32

#: Direction bytes mixed into the MAC so a frame recorded on one half of
#: the duplex link can never be replayed on the other half.
DIRECTION_TO_NODE = b"\x00"
DIRECTION_TO_DRIVER = b"\x01"


def _frame_mac(key: bytes, direction: bytes, seq: int, body: bytes) -> bytes:
    return hmac.new(key, direction + _LENGTH.pack(seq) + body, "sha256").digest()


def seal_payload(
    body: bytes, *, seq: int, direction: bytes, key: Optional[bytes] = None
) -> bytes:
    """Wrap a message body in the integrity envelope.

    The result is ``[crc32:4][flags:1][seq:8][mac:32?][body]`` — the CRC
    covers everything after itself, and the MAC (present only when a
    session ``key`` is supplied) covers the direction byte, the sequence
    number and the body.
    """
    tail = struct.pack(">BQ", _FLAG_AUTH if key is not None else 0, seq)
    if key is not None:
        tail += _frame_mac(key, direction, seq, body)
    tail += body
    return struct.pack(">I", zlib.crc32(tail) & 0xFFFFFFFF) + tail


def open_payload(
    payload: bytes, *, seq: int, direction: bytes, key: Optional[bytes] = None
) -> bytes:
    """Verify and strip the integrity envelope; return the message body.

    Checks run outermost-in: CRC first (raises `FrameIntegrityError` on
    corruption), then the MAC when the channel is authenticated (a
    missing or wrong tag is also `FrameIntegrityError`), then the
    sequence number (`FrameSequenceError` on any mismatch — a duplicate
    arrives with yesterday's number, a drop skips one, a reorder does
    both).  Each is fail-stop: the stream is unusable past the error.
    """
    if len(payload) < _ENVELOPE.size:
        raise FrameIntegrityError(
            f"frame of {len(payload)} bytes is shorter than the "
            f"{_ENVELOPE.size}-byte envelope header"
        )
    crc, flags, frame_seq = _ENVELOPE.unpack_from(payload)
    tail = payload[4:]
    if zlib.crc32(tail) & 0xFFFFFFFF != crc:
        raise FrameIntegrityError(
            "frame CRC mismatch: payload corrupted in transit"
        )
    offset = _ENVELOPE.size - 4
    authenticated = bool(flags & _FLAG_AUTH)
    if key is not None and not authenticated:
        raise FrameIntegrityError(
            "unauthenticated frame received on an authenticated channel"
        )
    if authenticated and key is None:
        raise FrameIntegrityError(
            "authenticated frame received but no session key is configured"
        )
    if authenticated:
        mac = tail[offset : offset + _MAC_BYTES]
        offset += _MAC_BYTES
        if len(mac) < _MAC_BYTES:
            raise FrameIntegrityError("frame truncated inside its MAC")
        body = tail[offset:]
        if not hmac.compare_digest(mac, _frame_mac(key, direction, frame_seq, body)):
            raise FrameIntegrityError(
                "frame MAC mismatch: payload forged or corrupted in transit"
            )
    else:
        body = tail[offset:]
    if frame_seq != seq:
        raise FrameSequenceError(
            f"expected frame #{seq} but received #{frame_seq}: a frame "
            "was dropped, duplicated or reordered"
        )
    return body


class FrameReader:
    """Per-connection frame receiver: an assembler plus a queue of frames
    already completed but not yet claimed.

    A node may interleave heartbeat frames with a reply, so one
    ``recv()`` can complete several frames at once — the surplus is kept
    here for the next call instead of being lost or treated as an error.
    """

    def __init__(self, sock) -> None:
        self._sock = sock
        self._assembler = FrameAssembler()
        self._ready: List[bytes] = []

    def absorb(self, chunk: bytes) -> None:
        """Feed bytes read out-of-band (e.g. drained during a blocking
        send) so the frames they complete surface on later recv calls."""
        self._ready.extend(self._assembler.feed(chunk))

    def recv_frame(self) -> Optional[bytes]:
        """Return the next frame payload, or ``None`` on clean end-of-stream.

        Raises `ConnectionLostError` if the peer closed mid-frame and
        propagates ``socket.timeout`` from the underlying socket, so a
        driver-side recv timeout surfaces to the caller unchanged.
        """
        while not self._ready:
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                self._assembler.close()  # raises ConnectionLostError mid-frame
                return None
            self._ready.extend(self._assembler.feed(chunk))
        return self._ready.pop(0)

    def recv_message(self) -> Optional[Tuple[str, Any, bytes]]:
        """Receive and unpack one message, or ``None`` on clean end-of-stream."""
        payload = self.recv_frame()
        if payload is None:
            return None
        return unpack_message(payload)


class FrameChannel:
    """A duplex enveloped-message channel over one socket.

    The channel owns the per-direction sequence counters and (after the
    hello handshake) the session key, so every message a peer sends or
    receives goes through `seal_payload`/`open_payload` without the
    callers tracking envelope state themselves.  ``role`` is ``"driver"``
    or ``"node"`` and fixes which direction byte each half of the duplex
    uses.

    Sends are serialized by an internal lock — the node's heartbeat
    thread shares its channel with the reply path, and sequence numbers
    must match the order frames hit the wire.  `seal_message` exists for
    the driver's drain-while-sending path: it claims a sequence number
    and returns the fully framed bytes for the caller to write, so the
    caller **must** write sealed frames exactly once, in seal order.
    """

    def __init__(self, sock, role: str) -> None:
        if role == "driver":
            send_direction, recv_direction = DIRECTION_TO_NODE, DIRECTION_TO_DRIVER
        elif role == "node":
            send_direction, recv_direction = DIRECTION_TO_DRIVER, DIRECTION_TO_NODE
        else:
            raise ValueError(f"channel role must be 'driver' or 'node', not {role!r}")
        self.sock = sock
        self.reader = FrameReader(sock)
        self._send_direction = send_direction
        self._recv_direction = recv_direction
        self._send_seq = 0
        self._recv_seq = 0
        self._key: Optional[bytes] = None
        self._send_lock = threading.Lock()

    @property
    def authenticated(self) -> bool:
        return self._key is not None

    def enable_auth(self, session_key: bytes) -> None:
        """Require a MAC on every frame from now on, in both directions.

        Called by both peers at the same point in the handshake (driver:
        after verifying the hello proof; node: after sending it), so the
        sequence counters stay aligned across the switch.
        """
        self._key = session_key

    def fileno(self) -> int:
        return self.sock.fileno()

    def seal_message(self, kind: str, meta: Any = None, blob: bytes = b"") -> bytes:
        """Claim the next sequence number and return the framed bytes.

        For callers that need the raw bytes to drive their own send loop
        (the driver drains incoming heartbeats while pushing large
        frames).  The returned bytes must reach the socket exactly once
        and in the order they were sealed.
        """
        with self._send_lock:
            payload = seal_payload(
                pack_message(kind, meta, blob),
                seq=self._send_seq,
                direction=self._send_direction,
                key=self._key,
            )
            self._send_seq += 1
        return encode_frame(payload)

    def send_message(self, kind: str, meta: Any = None, blob: bytes = b"") -> int:
        """Seal and send one message; returns the frame payload size."""
        with self._send_lock:
            payload = seal_payload(
                pack_message(kind, meta, blob),
                seq=self._send_seq,
                direction=self._send_direction,
                key=self._key,
            )
            self._send_seq += 1
            self.sock.sendall(encode_frame(payload))
        return len(payload)

    def absorb(self, chunk: bytes) -> None:
        """Feed bytes read out-of-band (drained during a blocking send)."""
        self.reader.absorb(chunk)

    def recv_message(self) -> Optional[Tuple[str, Any, bytes]]:
        """Receive, verify and unpack one message.

        Returns ``None`` on clean end-of-stream; raises the envelope's
        typed errors on any integrity or ordering violation.
        """
        payload = self.reader.recv_frame()
        if payload is None:
            return None
        body = open_payload(
            payload,
            seq=self._recv_seq,
            direction=self._recv_direction,
            key=self._key,
        )
        self._recv_seq += 1
        return unpack_message(body)
