"""Shared-secret authentication for cluster links.

Two credentials exist, with different jobs:

* The **token** is a per-run join credential: the driver generates it
  (spawned mode) or the operator distributes it, and a node must present
  it in the hello to be admitted.  It gates *membership*.
* The **cluster secret** is a long-lived shared key that authenticates
  the *bytes*: the hello carries an HMAC-SHA256 proof over a fresh
  driver-issued nonce (so the secret never crosses the wire and a
  recorded hello cannot be replayed against a new run), and every
  subsequent frame is MAC'd with a per-connection session key derived
  from the secret and that nonce.  The secret is mandatory whenever the
  driver listens on a non-loopback address.

Neither credential is ever passed via argv — ``ps`` on a shared host
would expose it.  Nodes read them from the ``REPRO_CLUSTER_TOKEN`` /
``REPRO_CLUSTER_SECRET`` environment variables or from files named by
``--token-file`` / ``--secret-file``.
"""
from __future__ import annotations

import hmac
import ipaddress
import os
import secrets
from typing import Optional

from repro.cluster.protocol import ProtocolError

__all__ = [
    "AuthenticationError",
    "TOKEN_ENV_VAR",
    "SECRET_ENV_VAR",
    "issue_challenge",
    "hello_proof",
    "verify_hello",
    "derive_session_key",
    "load_credential",
    "is_loopback",
]

TOKEN_ENV_VAR = "REPRO_CLUSTER_TOKEN"
SECRET_ENV_VAR = "REPRO_CLUSTER_SECRET"


class AuthenticationError(ProtocolError):
    """The peer failed the handshake: missing/wrong token, missing/wrong
    hello proof, or a hello arriving where a challenge was expected."""


def _key_bytes(secret: str) -> bytes:
    return secret.encode("utf-8")


def issue_challenge() -> str:
    """A fresh nonce for one connection's hello exchange."""
    return secrets.token_hex(16)


def hello_proof(secret: str, nonce: str) -> str:
    """The proof a node sends back: HMAC(secret, "hello:" + nonce)."""
    return hmac.new(
        _key_bytes(secret), b"hello:" + nonce.encode("ascii"), "sha256"
    ).hexdigest()


def verify_hello(secret: str, nonce: str, proof: object) -> bool:
    """Constant-time check of a hello proof against the expected value."""
    if not isinstance(proof, str):
        return False
    return hmac.compare_digest(hello_proof(secret, nonce), proof)


def derive_session_key(secret: str, nonce: str) -> bytes:
    """Per-connection frame-MAC key: HMAC(secret, "session:" + nonce).

    Distinct from the hello proof (different domain prefix) so observing
    one reveals nothing about the other, and bound to the nonce so every
    connection MACs with a different key.
    """
    return hmac.new(
        _key_bytes(secret), b"session:" + nonce.encode("ascii"), "sha256"
    ).digest()


def load_credential(
    env_var: str, file_path: Optional[str] = None
) -> Optional[str]:
    """Resolve a credential from a file (preferred) or the environment.

    Returns ``None`` when neither source provides one; surrounding
    whitespace (a trailing newline in a secret file) is stripped.
    """
    if file_path:
        with open(file_path, "r", encoding="utf-8") as handle:
            value = handle.read().strip()
        return value or None
    value = os.environ.get(env_var, "").strip()
    return value or None


def is_loopback(host: str) -> bool:
    """Whether a listen address stays on this machine.

    Only loopback listeners may run without a cluster secret.  Anything
    unrecognized (a hostname, a wildcard bind) is treated as reachable
    from outside and therefore as requiring authentication.
    """
    if host in ("localhost", ""):
        return host == "localhost"
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False
