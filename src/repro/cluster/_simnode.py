"""The simulated worker node the cost model divides work units by.

Lives in its own module (rather than :mod:`repro.cluster.node`) so the
rest of the package can import :class:`SimulatedNode` without importing
``node`` itself — ``python -m repro.cluster.node`` must not find its own
module pre-imported by the package's import chain (runpy warns about
that, into the stderr of every spawned node process).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimulatedNode:
    """A worker node with a fixed processing rate.

    ``work_units_per_second`` converts the abstract work units measured by
    the query/update phases (candidate evaluations, index probes, agent
    updates) into virtual seconds.  The default is calibrated so that a
    single node processing roughly one million agent-neighbour evaluations
    takes on the order of a second, in line with the throughput magnitudes
    the paper reports.
    """

    node_id: int
    work_units_per_second: float = 2_000_000.0
    checkpoint_bytes_per_second: float = 200_000_000.0

    def compute_seconds(self, work_units: float) -> float:
        """Virtual seconds needed to process ``work_units``."""
        if work_units <= 0:
            return 0.0
        return work_units / self.work_units_per_second

    def checkpoint_seconds(self, num_bytes: int) -> float:
        """Virtual seconds needed to write ``num_bytes`` of checkpoint data."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.checkpoint_bytes_per_second
