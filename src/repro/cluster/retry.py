"""One retry/backoff policy for every transient cluster wait.

The driver and node previously each carried their own ad-hoc constants
(connect retry window, accept timeout, send-stall limit) — a single
:class:`RetryPolicy` value now travels with the executor so chaos tests
and operators tune one object instead of hunting module constants.

Backoff is **deterministic**: a fixed initial delay doubled up to a cap,
no jitter.  Reproducibility is the repo's standing bar and a randomized
sleep schedule would make fault timelines unreproducible for no benefit
at cluster scale (a handful of nodes, not thousands of thundering
clients).
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple, Type

__all__ = ["RetryPolicy", "RetryBudgetExceededError"]


class RetryBudgetExceededError(ConnectionError):
    """Every attempt inside the retry window failed; the last underlying
    error is chained as ``__cause__``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Timeouts and backoff shared by driver and node transports.

    ``connect_timeout_seconds``
        Total window for a node to reach the driver (dial + redial).
    ``accept_timeout_seconds``
        How long the driver waits for an expected node to complete the
        handshake before declaring the cluster failed to form.
    ``readmission_timeout_seconds``
        How long a degraded driver holds the listener open for a
        replacement node before rehoming lost shards onto survivors.
    ``send_stall_seconds``
        Longest a blocking send may make zero progress before the peer
        is declared dead mid-frame.
    """

    connect_timeout_seconds: float = 30.0
    accept_timeout_seconds: float = 30.0
    readmission_timeout_seconds: float = 10.0
    send_stall_seconds: float = 10.0
    initial_delay_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_delay_seconds: float = 1.0

    def delays(self) -> Iterator[float]:
        """The unbounded deterministic backoff schedule, in seconds."""
        delay = self.initial_delay_seconds
        while True:
            yield delay
            delay = min(delay * self.backoff_factor, self.max_delay_seconds)

    def retry(
        self,
        attempt: Callable[[], object],
        *,
        timeout_seconds: float = None,
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        describe: str = "operation",
    ):
        """Run ``attempt`` until it succeeds or the window closes.

        Retries only the exception types in ``retry_on``; anything else
        propagates immediately.  On window exhaustion raises
        `RetryBudgetExceededError` chained to the last failure.
        """
        window = (
            self.connect_timeout_seconds
            if timeout_seconds is None
            else timeout_seconds
        )
        deadline = time.monotonic() + window
        delays = self.delays()
        while True:
            try:
                return attempt()
            except retry_on as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RetryBudgetExceededError(
                        f"{describe} failed for {window:.1f}s; "
                        f"last error: {exc}"
                    ) from exc
                time.sleep(min(next(delays), remaining))
