"""Virtual-time cost model combining per-worker compute and communication.

A tick in the distributed runtime finishes when the slowest worker finishes:
its compute time plus the time spent sending and receiving replicas and
effect partials, plus any per-pass synchronisation barriers.  The cost model
aggregates the per-worker measurements the BRACE runtime collects into a
tick-level virtual time and running totals, from which throughput in
agent-ticks per second is derived.

Every byte count flowing in here is charged from the columnar frame-size
formulas of :mod:`repro.ipc.sizing` — the same sizes the executors measure
as real ``ipc_bytes_*`` traffic — so the figure-6 virtual time and the
bytes observed on a cluster socket are directly comparable, and the same
:class:`NetworkModel` that prices these transfers also scores the cluster
backend's physical shard placement (:mod:`repro.cluster.placement`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.network import NetworkModel

if TYPE_CHECKING:  # annotation-only: keeps ``-m repro.cluster.node`` clean
    from repro.cluster._simnode import SimulatedNode


@dataclass
class WorkerTickCost:
    """Raw per-worker measurements for one tick."""

    worker_id: int
    work_units: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    remote_messages: int = 0
    agents_owned: int = 0
    checkpoint_bytes: int = 0
    comm_seconds: float = 0.0

    def add_send(self, num_bytes: int, remote: bool, seconds: float = 0.0) -> None:
        """Record an outgoing transfer (``seconds`` from the network model)."""
        if remote:
            self.bytes_sent += num_bytes
            self.remote_messages += 1
            self.comm_seconds += seconds

    def add_receive(self, num_bytes: int, remote: bool, seconds: float = 0.0) -> None:
        """Record an incoming transfer (``seconds`` from the network model)."""
        if remote:
            self.bytes_received += num_bytes
            self.comm_seconds += seconds


@dataclass
class TickCostBreakdown:
    """Virtual-time breakdown of one tick."""

    tick: int
    compute_seconds: float
    communication_seconds: float
    synchronization_seconds: float
    checkpoint_seconds: float
    total_seconds: float
    agents_processed: int
    max_worker_seconds: float
    min_worker_seconds: float

    @property
    def imbalance(self) -> float:
        """Ratio between the slowest and fastest worker's tick time (>= 1)."""
        if self.min_worker_seconds <= 0:
            return float("inf") if self.max_worker_seconds > 0 else 1.0
        return self.max_worker_seconds / self.min_worker_seconds


@dataclass
class ClusterCostModel:
    """Aggregates per-worker tick costs into virtual elapsed time.

    Parameters
    ----------
    network:
        The :class:`NetworkModel` describing latency/bandwidth/topology.
    nodes:
        One :class:`SimulatedNode` per worker.
    barrier_seconds:
        Fixed synchronisation cost charged once per MapReduce pass per tick
        (two reduce passes therefore pay it twice), reflecting the
        coordination of shuffle boundaries.
    """

    network: NetworkModel
    nodes: list[SimulatedNode]
    barrier_seconds: float = 250e-6
    history: list[TickCostBreakdown] = field(default_factory=list)

    def node(self, worker_id: int) -> SimulatedNode:
        """Return the node backing ``worker_id``."""
        return self.nodes[worker_id]

    def tick_cost(
        self,
        tick: int,
        worker_costs: list[WorkerTickCost],
        num_passes: int = 1,
    ) -> TickCostBreakdown:
        """Convert per-worker measurements into the tick's virtual time."""
        per_worker_seconds = []
        compute_total = 0.0
        comm_total = 0.0
        checkpoint_total = 0.0
        agents = 0
        for cost in worker_costs:
            node = self.node(cost.worker_id)
            compute = node.compute_seconds(cost.work_units)
            if cost.comm_seconds > 0:
                # Per-transfer times from the network model (topology-aware).
                comm = cost.comm_seconds
            else:
                comm = (
                    (cost.bytes_sent + cost.bytes_received)
                    / self.network.bandwidth_bytes_per_second
                    + cost.remote_messages * self.network.latency_seconds
                )
            checkpoint = node.checkpoint_seconds(cost.checkpoint_bytes)
            per_worker_seconds.append(compute + comm + checkpoint)
            compute_total += compute
            comm_total += comm
            checkpoint_total += checkpoint
            agents += cost.agents_owned

        synchronization = self.barrier_seconds * max(1, num_passes)
        max_worker = max(per_worker_seconds) if per_worker_seconds else 0.0
        min_worker = min(per_worker_seconds) if per_worker_seconds else 0.0
        breakdown = TickCostBreakdown(
            tick=tick,
            compute_seconds=compute_total,
            communication_seconds=comm_total,
            synchronization_seconds=synchronization,
            checkpoint_seconds=checkpoint_total,
            total_seconds=max_worker + synchronization,
            agents_processed=agents,
            max_worker_seconds=max_worker,
            min_worker_seconds=min_worker,
        )
        self.history.append(breakdown)
        return breakdown

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_virtual_seconds(self) -> float:
        """Virtual time accumulated over every recorded tick."""
        return sum(breakdown.total_seconds for breakdown in self.history)

    def total_agent_ticks(self) -> int:
        """Total agent-ticks processed over every recorded tick."""
        return sum(breakdown.agents_processed for breakdown in self.history)

    def throughput(self, skip_ticks: int = 0) -> float:
        """Agent-ticks per virtual second, optionally discarding warm-up ticks."""
        history = self.history[skip_ticks:]
        seconds = sum(breakdown.total_seconds for breakdown in history)
        agent_ticks = sum(breakdown.agents_processed for breakdown in history)
        if seconds <= 0:
            return 0.0
        return agent_ticks / seconds

    def reset(self) -> None:
        """Clear the recorded history and network totals."""
        self.history.clear()
        self.network.reset_totals()
