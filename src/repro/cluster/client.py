"""The cluster executor: resident shards hosted on socket-connected nodes.

:class:`ClusterExecutor` implements the executor contract of
:mod:`repro.mapreduce.executor` over TCP.  The driver listens on a
configurable address; node processes (auto-spawned localhost subprocesses
by default, or started on other machines with ``python -m
repro.cluster.node --connect host:port``) dial in and host the resident
shards.  Every command and result crosses the wire as one length-prefixed
frame whose payload blob is encoded by the shard codec — the same
columnar delta frames the process backend ships through shared memory, so
the three-round tick protocol, the replica-delta shipping and the
bit-identical results carry over unchanged.

Placement is cost-model-driven (:mod:`repro.cluster.placement`): shards
land on nodes in contiguous strip blocks scored with the
:class:`~repro.cluster.network.NetworkModel`, and
:meth:`ClusterExecutor.rebalance_shards` physically migrates shards
between nodes when the observed load makes a different composition
cheaper.  Liveness is heartbeat-based: nodes emit a frame every
``heartbeat_interval`` seconds even while a phase computes, and a reply
wait that sees neither a result nor a heartbeat for ``heartbeat_timeout``
seconds declares the node dead, tears the shard state down and raises the
same "recover from the last checkpoint" :class:`ExecutorError` the
process backend uses — feeding the existing checkpoint-recovery path.
"""
from __future__ import annotations

import os
import pickle
import secrets
import select
import socket
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.network import NetworkModel
from repro.cluster._simnode import SimulatedNode
from repro.cluster.placement import plan_placement
from repro.cluster.protocol import (
    ConnectionLostError,
    FrameReader,
    ProtocolError,
    encode_frame,
    pack_message,
    send_message,
)
from repro.core.errors import ExecutorError
from repro.mapreduce.executor import (
    Executor,
    ShardTaskResult,
    TaskResult,
    _is_pickling_error,
)

__all__ = ["ClusterExecutor"]

#: How long the driver waits for the expected number of nodes to dial in.
ACCEPT_TIMEOUT_SECONDS = 30.0


class _NodeConnection:
    """One connected node: its socket, frame reader and identity."""

    def __init__(
        self,
        index: int,
        sock: socket.socket,
        pid: int,
        address: Tuple[str, int],
        process: Optional[subprocess.Popen] = None,
    ) -> None:
        self.index = index
        self.sock = sock
        self.reader = FrameReader(sock)
        self.pid = pid
        self.address = address
        self.process = process

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ClusterExecutor(Executor):
    """Socket-based multi-node backend for resident shards.

    ``num_nodes`` node processes host the shards; with ``spawn=True``
    (the default) they are started as localhost subprocesses, otherwise
    the executor waits for externally started nodes to connect to
    ``listen``.  ``network``/``sim_nodes`` parameterize the placement
    cost model (they default to the stock :class:`NetworkModel` and
    homogeneous nodes).
    """

    name = "cluster"
    shares_memory = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        num_nodes: int = 2,
        listen: str = "127.0.0.1:0",
        spawn: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        network: Optional[NetworkModel] = None,
        sim_nodes: Optional[Sequence[SimulatedNode]] = None,
    ) -> None:
        super().__init__(max_workers)
        if num_nodes < 1:
            raise ExecutorError("the cluster executor needs at least one node")
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ExecutorError("heartbeat interval and timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ExecutorError(
                "heartbeat_timeout must exceed heartbeat_interval, or every "
                "slow phase reads as a dead node"
            )
        self.num_nodes = int(num_nodes)
        self.listen_address = listen
        self.spawn = bool(spawn)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.network = network if network is not None else NetworkModel()
        self.sim_nodes: List[SimulatedNode] = (
            list(sim_nodes)
            if sim_nodes is not None
            else [SimulatedNode(index) for index in range(self.num_nodes)]
        )
        if len(self.sim_nodes) != self.num_nodes:
            raise ExecutorError(
                f"sim_nodes describes {len(self.sim_nodes)} nodes but "
                f"num_nodes is {self.num_nodes}"
            )
        self._listener: Optional[socket.socket] = None
        self._token = secrets.token_hex(16) if self.spawn else None
        self._nodes: Dict[int, _NodeConnection] = {}
        self._shard_to_node: Dict[int, int] = {}
        self._shard_factory: Optional[Callable[[int, Any], Any]] = None
        self._shard_codec = None
        self._reset_nonce = 0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _ensure_listener(self) -> Tuple[str, int]:
        if self._listener is None:
            host, _, port = self.listen_address.rpartition(":")
            if not host or not port.isdigit():
                raise ExecutorError(
                    f"cluster listen address must be HOST:PORT, got {self.listen_address!r}"
                )
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, int(port)))
            except OSError as error:
                listener.close()
                raise ExecutorError(
                    f"cluster executor could not bind {self.listen_address!r}: {error}"
                ) from error
            listener.listen(self.num_nodes)
            self._listener = listener
        return self._listener.getsockname()[:2]

    def _spawn_node(self, address: Tuple[str, int]) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.cluster.node",
            "--connect",
            f"{address[0]}:{address[1]}",
            "--heartbeat-interval",
            str(self.heartbeat_interval),
        ]
        if self._token is not None:
            command += ["--token", self._token]
        env = dict(os.environ)
        # Mirror multiprocessing's spawn semantics: the node must be able to
        # unpickle callables and agent classes from any module the driver can
        # import (test modules, user scripts on sys.path), not just installed
        # packages.
        env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
        return subprocess.Popen(command, env=env)

    def _ensure_nodes(self) -> None:
        """Bring the node set up to ``num_nodes`` live connections."""
        if len(self._nodes) == self.num_nodes:
            return
        address = self._ensure_listener()
        missing = [index for index in range(self.num_nodes) if index not in self._nodes]
        processes: List[Optional[subprocess.Popen]] = []
        for _ in missing:
            processes.append(self._spawn_node(address) if self.spawn else None)
        self._listener.settimeout(ACCEPT_TIMEOUT_SECONDS)
        try:
            for index, process in zip(missing, processes):
                self._nodes[index] = self._accept_node(index, process)
        except socket.timeout:
            raise ExecutorError(
                f"cluster executor expected {self.num_nodes} nodes but only "
                f"{len(self._nodes)} connected within {ACCEPT_TIMEOUT_SECONDS:.0f}s; "
                "start the missing nodes with "
                f"'python -m repro.cluster.node --connect {address[0]}:{address[1]}'"
            ) from None

    def _accept_node(self, index: int, process: Optional[subprocess.Popen]) -> _NodeConnection:
        while True:
            sock, peer = self._listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(ACCEPT_TIMEOUT_SECONDS)
            reader = FrameReader(sock)
            try:
                message = reader.recv_message()
            except (ProtocolError, OSError):
                sock.close()
                continue
            if message is None or message[0] != "hello":
                sock.close()
                continue
            meta = message[1] or {}
            if self._token is not None and meta.get("token") != self._token:
                sock.close()
                continue
            connection = _NodeConnection(index, sock, int(meta.get("pid", -1)), peer, process)
            connection.reader = reader  # keep bytes already buffered past the hello
            sock.settimeout(None)
            return connection

    def _node(self, index: int) -> _NodeConnection:
        try:
            return self._nodes[index]
        except KeyError:
            raise ExecutorError(f"cluster node {index} is not connected") from None

    def _node_failed(self, connection: _NodeConnection, error: BaseException) -> ExecutorError:
        """A node died or timed out: drop every node's shard state and
        build the error that routes the caller into checkpoint recovery."""
        self.teardown_shards()
        return ExecutorError(
            f"cluster node {connection.index} (pid {connection.pid}) died or "
            "stopped heartbeating; its resident shard state is lost and must "
            "be re-seeded (for BRACE runs: recover from the last checkpoint). "
            f"Original error: {type(error).__name__}: {error}"
        )

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _codec_name(codec) -> Optional[str]:
        return "columnar" if codec is not None else None

    @staticmethod
    def _encode_payload(codec, payload) -> bytes:
        try:
            if codec is not None:
                return codec.encode(payload)
            return pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the cluster executor could not serialize a shard payload: {error}. "
                "Everything crossing the node boundary must be picklable "
                "(module-level functions and importable classes)."
            ) from error

    @staticmethod
    def _decode_payload(codec, blob: bytes):
        if codec is not None:
            return codec.decode(blob)
        return pickle.loads(blob)

    def _send(self, connection: _NodeConnection, kind: str, meta, blob: bytes = b"") -> int:
        """Send one message, draining the node's replies while blocked.

        Commands go out before replies are collected, so a large command
        can fill the kernel buffers while the node is itself blocked
        sending a large reply — a classic both-sides-sending deadlock.
        Draining incoming frames into the connection's reader whenever
        the send would block breaks the cycle; the drained frames surface
        on the next :meth:`_recv_reply`.
        """
        payload = pack_message(kind, meta, blob)
        data = memoryview(encode_frame(payload))
        sock = connection.sock
        try:
            sock.setblocking(False)
            try:
                while data:
                    readable, writable, _ = select.select(
                        [sock], [sock], [], self.heartbeat_timeout
                    )
                    if not readable and not writable:
                        raise socket.timeout(
                            f"send stalled for {self.heartbeat_timeout:.1f}s"
                        )
                    if readable:
                        chunk = sock.recv(1 << 16)
                        if not chunk:
                            raise ConnectionLostError("node closed while receiving a command")
                        connection.reader.absorb(chunk)
                    if writable:
                        try:
                            sent = sock.send(data)
                        except BlockingIOError:
                            sent = 0
                        data = data[sent:]
            finally:
                sock.setblocking(True)
        except (ProtocolError, OSError) as error:
            raise self._node_failed(connection, error) from error
        return len(payload)

    def _recv_reply(self, connection: _NodeConnection) -> Tuple[str, Any, bytes]:
        """Next non-heartbeat message; any frame resets the liveness clock.

        ``"error"`` replies are *returned*, not raised: a round with many
        outstanding commands must keep collecting the other replies so the
        stream stays in sync (a mid-collection raise would leave stale
        results queued for the next round to misread).  Callers pass the
        reply through :meth:`_check_reply` once their batch is drained.
        """
        connection.sock.settimeout(self.heartbeat_timeout)
        try:
            while True:
                message = connection.reader.recv_message()
                if message is None:
                    raise self._node_failed(
                        connection, ConnectionLostError("node closed its connection")
                    )
                if message[0] == "heartbeat":
                    continue
                return message
        except socket.timeout as error:
            raise self._node_failed(
                connection,
                TimeoutError(
                    f"no frame from the node for {self.heartbeat_timeout:.1f}s "
                    f"(heartbeat interval {self.heartbeat_interval:.1f}s)"
                ),
            ) from error
        except (ConnectionLostError, OSError) as error:
            raise self._node_failed(connection, error) from error
        finally:
            try:
                connection.sock.settimeout(None)
            except OSError:
                pass

    def _check_reply(self, reply: Tuple[str, Any, bytes]) -> Tuple[str, Any, bytes]:
        """Raise the rebuilt remote exception if ``reply`` is an error."""
        if reply[0] == "error":
            raise self._remote_error(reply[1])
        return reply

    @staticmethod
    def _remote_error(meta: dict) -> BaseException:
        """Rebuild a task exception shipped back from a node."""
        blob = meta.get("exception")
        if blob is not None:
            try:
                return pickle.loads(blob)
            except Exception:  # noqa: BLE001 - fall back to the formatted text
                pass
        return ExecutorError(
            "a cluster shard task failed on its node:\n" + meta.get("traceback", "")
        )

    # ------------------------------------------------------------------
    # Stateless tasks
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> List[TaskResult]:
        """Round-robin the callables across the nodes (pickled whole)."""
        if not tasks:
            return []
        self._ensure_nodes()
        order = sorted(self._nodes)
        per_node: Dict[int, List[int]] = {index: [] for index in order}
        for position, task in enumerate(tasks):
            node_index = order[position % len(order)]
            blob = self._dumps_task(task)
            self._send(self._nodes[node_index], "call", None, blob)
            per_node[node_index].append(position)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        first_error: Optional[BaseException] = None
        for node_index in order:
            connection = self._nodes[node_index]
            for position in per_node[node_index]:
                kind, meta, blob = self._recv_reply(connection)
                if kind == "error":
                    if first_error is None:
                        first_error = self._remote_error(meta)
                    continue
                results[position] = TaskResult(
                    position, pickle.loads(blob), meta["wall_seconds"]
                )
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    @staticmethod
    def _dumps_task(task: Callable[[], Any]) -> bytes:
        try:
            return pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the cluster executor could not serialize a task: {error}. "
                "Tasks must be picklable (module-level functions, "
                "functools.partial over importable callables)."
            ) from error

    # ------------------------------------------------------------------
    # Resident shards
    # ------------------------------------------------------------------
    def init_shards(
        self,
        factory: Callable[[int, Any], Any],
        payloads: Dict[int, Any],
        codec=None,
    ) -> None:
        if self._shard_to_node:
            raise ExecutorError(
                "resident shards are already initialized; call teardown_shards() first"
            )
        if not payloads:
            raise ExecutorError("init_shards needs at least one shard payload")
        self._ensure_nodes()
        self._shard_factory = factory
        self._shard_codec = codec
        weights = {
            shard_id: float(len(getattr(payload, "agents", ()) or ()) or 1)
            for shard_id, payload in payloads.items()
        }
        placement = plan_placement(
            sorted(payloads), weights, self.sim_nodes, self.network
        )
        sent: List[Tuple[int, _NodeConnection]] = []
        for shard_id in sorted(payloads):
            connection = self._node(placement[shard_id])
            blob = self._encode_payload(codec, payloads[shard_id])
            self._send(
                connection,
                "init_shard",
                {"shard_id": shard_id, "factory": factory,
                 "codec": self._codec_name(codec)},
                blob,
            )
            sent.append((shard_id, connection))
        first_error: Optional[BaseException] = None
        for shard_id, connection in sent:
            kind, meta, _ = self._recv_reply(connection)
            if kind == "error":
                if first_error is None:
                    first_error = self._remote_error(meta)
                continue
            self._shard_to_node[shard_id] = connection.index
        if first_error is not None:
            self.teardown_shards()  # drop the shards that did install
            raise first_error
        self._shards = None  # the base-class in-process map stays unused

    def has_shards(self) -> bool:
        return bool(self._shard_to_node)

    def run_sharded_tasks(
        self,
        tasks: Sequence[Tuple[int, Callable[[Any, Any], Any], Any]],
        codec=None,
        overlap: bool = False,
    ) -> List[ShardTaskResult]:
        """Ship ``(shard_id, fn, payload)`` tasks to the shards' nodes.

        All commands go out first (each node then works through its batch
        sequentially, preserving per-shard serialization), replies are
        collected per node afterwards — the round's wall clock is the
        slowest node, not the sum.  ``overlap`` is implied by the
        send-all-then-collect structure.
        """
        if not self._shard_to_node:
            raise ExecutorError("no resident shards are initialized; call init_shards() first")
        if not tasks:
            return []
        codec_name = self._codec_name(codec)
        pending: List[dict] = []
        for index, (shard_id, fn, payload) in enumerate(tasks):
            node_index = self._shard_to_node.get(shard_id)
            if node_index is None:
                raise ExecutorError(f"unknown resident shard {shard_id!r}")
            connection = self._node(node_index)
            start = time.perf_counter()
            blob = self._encode_payload(codec, payload)
            encode_seconds = time.perf_counter() - start
            start = time.perf_counter()
            self._send(
                connection,
                "run_task",
                {"shard_id": shard_id, "fn": fn, "codec": codec_name},
                blob,
            )
            send_seconds = time.perf_counter() - start
            pending.append(
                {
                    "index": index,
                    "shard_id": shard_id,
                    "node": node_index,
                    "payload_bytes": len(blob),
                    "serialize": encode_seconds,
                    "transport": send_seconds,
                }
            )
        results: List[Optional[ShardTaskResult]] = [None] * len(tasks)
        first_error: Optional[BaseException] = None
        for node_index in sorted(self._nodes):
            connection = self._nodes[node_index]
            for entry in pending:
                if entry["node"] != node_index:
                    continue
                kind, meta, blob = self._recv_reply(connection)
                if kind == "error":
                    # Keep draining the other replies so the streams stay
                    # in sync; raise once the round is fully collected.
                    if first_error is None:
                        first_error = self._remote_error(meta)
                    continue
                start = time.perf_counter()
                value = self._decode_payload(codec, blob)
                decode_seconds = time.perf_counter() - start
                results[entry["index"]] = ShardTaskResult(
                    entry["shard_id"],
                    value,
                    meta["wall_seconds"],
                    payload_bytes=entry["payload_bytes"],
                    result_bytes=len(blob),
                    serialize_seconds=entry["serialize"]
                    + meta["codec_seconds"]
                    + decode_seconds,
                    transport_seconds=entry["transport"],
                )
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def teardown_shards(self) -> None:
        """Drop every node's shard state; connections and processes stay up.

        The reset is a nonce-tagged synchronization point: an aborted
        round (a node died mid-collection) can leave queued replies on
        the surviving nodes, so each node's stream is drained until the
        ``"ok"`` echoing this reset's nonce — anything older is stale and
        discarded.  A node that fails to acknowledge is disconnected (and
        respawned by the next :meth:`_ensure_nodes`), so teardown always
        leaves a clean slate even mid-failure.
        """
        self._shard_to_node = {}
        self._shard_factory = None
        self._shard_codec = None
        self._reset_nonce += 1
        nonce = self._reset_nonce
        for index in sorted(self._nodes):
            connection = self._nodes[index]
            try:
                send_message(connection.sock, "reset", {"nonce": nonce})
                connection.sock.settimeout(self.heartbeat_timeout)
                while True:
                    message = connection.reader.recv_message()
                    if message is None:
                        raise ConnectionLostError("node closed during reset")
                    if message[0] == "ok" and (message[1] or {}).get("nonce") == nonce:
                        break
                connection.sock.settimeout(None)
            except (ProtocolError, OSError):
                connection.close()
                if connection.process is not None:
                    connection.process.kill()
                    connection.process.wait()
                del self._nodes[index]
        self._shards = None

    def migrate_shard(self, shard_id: int, node_index: int) -> int:
        """Physically re-home one shard onto another node; returns the
        bytes of shard state that crossed the wire.

        The shard's owned agents travel as one codec-encoded seed frame
        (collect on the source, re-build via the original factory on the
        destination).  Replica caches and delta send histories do **not**
        travel — the caller must follow up with a full
        ``adopt_partitioning`` round so every shard reships its replicas
        from scratch (the BRACE runtime's
        ``_apply_new_partitioning_resident`` does exactly that).
        """
        source_index = self._shard_to_node.get(shard_id)
        if source_index is None:
            raise ExecutorError(f"unknown resident shard {shard_id!r}")
        if node_index not in self._nodes:
            raise ExecutorError(f"cluster node {node_index} is not connected")
        if source_index == node_index:
            return 0
        codec_name = self._codec_name(self._shard_codec)
        source = self._node(source_index)
        self._send(source, "collect_shard", {"shard_id": shard_id, "codec": codec_name})
        kind, meta, blob = self._check_reply(self._recv_reply(source))
        if kind != "shard_state":
            raise ExecutorError(
                f"cluster node {source_index} answered a shard collection with {kind!r}"
            )
        destination = self._node(node_index)
        # States with a migration_seed() hook rebuild through the original
        # factory; plain states install verbatim (factory=None).
        self._send(
            destination,
            "init_shard",
            {"shard_id": shard_id,
             "factory": self._shard_factory if meta.get("reseed") else None,
             "codec": codec_name},
            blob,
        )
        self._check_reply(self._recv_reply(destination))
        self._shard_to_node[shard_id] = node_index
        return len(blob)

    def rebalance_shards(self, weights: Dict[int, float]) -> Tuple[List[Tuple[int, int, int]], int]:
        """Re-place the shards for the observed load and migrate the diff.

        Returns ``(moves, bytes)`` where each move is ``(shard_id,
        from_node, to_node)``.  The caller owns protocol correctness: a
        full adopt round must follow any non-empty move list.
        """
        if not self._shard_to_node:
            return [], 0
        placement = plan_placement(
            sorted(self._shard_to_node), weights, self.sim_nodes, self.network
        )
        moves: List[Tuple[int, int, int]] = []
        moved_bytes = 0
        for shard_id in sorted(placement):
            target = placement[shard_id]
            current = self._shard_to_node[shard_id]
            if target != current:
                moved_bytes += self.migrate_shard(shard_id, target)
                moves.append((shard_id, current, target))
        return moves, moved_bytes

    # ------------------------------------------------------------------
    # Introspection (tests, provenance, benchmarks)
    # ------------------------------------------------------------------
    def shard_node(self, shard_id: int) -> int:
        """Index of the node currently hosting ``shard_id``."""
        try:
            return self._shard_to_node[shard_id]
        except KeyError:
            raise ExecutorError(f"unknown resident shard {shard_id!r}") from None

    def shard_host_pid(self, shard_id: int) -> int:
        """Pid of the node process hosting ``shard_id`` (affinity probe)."""
        return self._node(self.shard_node(shard_id)).pid

    def node_pids(self) -> Dict[int, int]:
        """Node index -> node process pid, for every connected node."""
        return {index: connection.pid for index, connection in sorted(self._nodes.items())}

    def node_topology(self) -> Tuple[dict, ...]:
        """Resolved topology for provenance: one record per connected node."""
        return tuple(
            {
                "node": index,
                "address": f"{connection.address[0]}:{connection.address[1]}",
                "pid": connection.pid,
                "spawned": connection.process is not None,
                "shards": tuple(
                    shard_id
                    for shard_id, node in sorted(self._shard_to_node.items())
                    if node == index
                ),
            }
            for index, connection in sorted(self._nodes.items())
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every node process and release the listener (idempotent)."""
        nodes, self._nodes = self._nodes, {}
        self._shard_to_node = {}
        self._shard_factory = None
        self._shard_codec = None
        for connection in nodes.values():
            try:
                send_message(connection.sock, "shutdown", None)
                connection.sock.settimeout(self.heartbeat_timeout)
                while True:
                    message = connection.reader.recv_message()
                    if message is None or message[0] != "heartbeat":
                        break
            except (ProtocolError, OSError):
                pass
            connection.close()
            if connection.process is not None:
                try:
                    connection.process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    connection.process.kill()
                    connection.process.wait()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        super().shutdown()
