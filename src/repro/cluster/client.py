"""The cluster executor: resident shards hosted on socket-connected nodes.

:class:`ClusterExecutor` implements the executor contract of
:mod:`repro.mapreduce.executor` over TCP.  The driver listens on a
configurable address; node processes (auto-spawned localhost subprocesses
by default, or started on other machines with ``python -m
repro.cluster.node --connect host:port``) dial in and host the resident
shards.  Every command and result crosses the wire as one length-prefixed
frame in the integrity envelope of :mod:`repro.cluster.protocol` —
CRC-checked, sequence-numbered, and HMAC-SHA256-authenticated whenever a
``cluster_secret`` is configured (mandatory for non-loopback listeners).
The payload blob is encoded by the shard codec — the same columnar delta
frames the process backend ships through shared memory, so the
three-round tick protocol, the replica-delta shipping and the
bit-identical results carry over unchanged.

Placement is cost-model-driven (:mod:`repro.cluster.placement`): shards
land on nodes in contiguous strip blocks scored with the
:class:`~repro.cluster.network.NetworkModel`, and
:meth:`ClusterExecutor.rebalance_shards` physically migrates shards
between nodes when the observed load makes a different composition
cheaper.

Liveness is heartbeat-based, and node death is *supervised* rather than
fatal: when a node dies or stops heartbeating the executor retires it,
resynchronizes the survivors (their resident shard state stays put),
tries to refill the slot — respawning the subprocess in spawned mode, or
holding the listener open for ``readmission_timeout`` seconds so an
external replacement can dial in — and otherwise rehomes the lost
shards' *assignments* onto the survivors.  Either way the lost shard
*state* is gone and must be re-seeded, so the round still raises a
:class:`~repro.core.errors.NodeLossError` ("recover from the last
checkpoint") that routes the caller into checkpoint recovery; the BRACE
runtime answers with :meth:`reseed_shards` for just the lost shards
while the survivors rewind in place.  Only when no node survives does
the executor give up its resident state entirely.
"""
from __future__ import annotations

import atexit
import os
import pickle
import secrets
import select
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.auth import (
    SECRET_ENV_VAR,
    TOKEN_ENV_VAR,
    derive_session_key,
    is_loopback,
    issue_challenge,
    verify_hello,
)
from repro.cluster.network import NetworkModel
from repro.cluster._simnode import SimulatedNode
from repro.cluster.placement import plan_placement
from repro.cluster.protocol import (
    ConnectionLostError,
    FrameChannel,
    ProtocolError,
)
from repro.cluster.retry import RetryPolicy
from repro.core.errors import ExecutorError, NodeLossError
from repro.mapreduce.executor import (
    Executor,
    ShardTaskResult,
    TaskResult,
    _is_pickling_error,
)

__all__ = ["ClusterExecutor"]

#: Grace between ``terminate`` and ``kill`` when reaping spawned nodes
#: at interpreter exit.
_REAP_GRACE_SECONDS = 3.0

_REAPER_LOCK = threading.Lock()
_SPAWNED_NODES: "set[subprocess.Popen]" = set()
_REAPER_INSTALLED = False


def _register_spawned(process: subprocess.Popen) -> None:
    """Track a spawned node so a crashed driver cannot orphan it."""
    global _REAPER_INSTALLED
    with _REAPER_LOCK:
        _SPAWNED_NODES.add(process)
        if not _REAPER_INSTALLED:
            atexit.register(_reap_spawned_nodes)
            _REAPER_INSTALLED = True


def _unregister_spawned(process: Optional[subprocess.Popen]) -> None:
    if process is None:
        return
    with _REAPER_LOCK:
        _SPAWNED_NODES.discard(process)


def _reap_spawned_nodes() -> None:
    """atexit backstop: terminate every still-registered node process,
    escalating to SIGKILL after a grace period.  A clean ``shutdown()``
    unregisters its processes first, so this only fires for drivers that
    crashed or were interrupted mid-run."""
    with _REAPER_LOCK:
        processes = [p for p in _SPAWNED_NODES if p.poll() is None]
        _SPAWNED_NODES.clear()
    for process in processes:
        try:
            process.terminate()
        except OSError:
            pass
    deadline = time.monotonic() + _REAP_GRACE_SECONDS
    for process in processes:
        try:
            process.wait(timeout=max(0.0, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            try:
                process.kill()
                process.wait()
            except OSError:
                pass


class _NodeConnection:
    """One connected node: its socket, enveloped channel and identity."""

    def __init__(
        self,
        index: int,
        sock: socket.socket,
        channel: FrameChannel,
        pid: int,
        address: Tuple[str, int],
        process: Optional[subprocess.Popen] = None,
    ) -> None:
        self.index = index
        self.sock = sock
        self.channel = channel
        self.pid = pid
        self.address = address
        self.process = process

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ClusterExecutor(Executor):
    """Socket-based multi-node backend for resident shards.

    ``num_nodes`` node processes host the shards; with ``spawn=True``
    (the default) they are started as localhost subprocesses, otherwise
    the executor waits for externally started nodes to connect to
    ``listen``.  ``secret`` arms HMAC authentication of every frame and
    is required for non-loopback listen addresses; ``retry`` carries the
    connect/accept/stall/backoff policy (defaults preserve the historic
    constants); ``readmission_timeout`` bounds how long a degraded run
    waits for an external replacement node before rehoming lost shards
    onto survivors.  ``network``/``sim_nodes`` parameterize the
    placement cost model (they default to the stock
    :class:`NetworkModel` and homogeneous nodes).
    """

    name = "cluster"
    shares_memory = False
    supports_partial_recovery = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        num_nodes: int = 2,
        listen: str = "127.0.0.1:0",
        spawn: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        secret: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        readmission_timeout: Optional[float] = None,
        network: Optional[NetworkModel] = None,
        sim_nodes: Optional[Sequence[SimulatedNode]] = None,
    ) -> None:
        super().__init__(max_workers)
        if num_nodes < 1:
            raise ExecutorError("the cluster executor needs at least one node")
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ExecutorError("heartbeat interval and timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ExecutorError(
                "heartbeat_timeout must exceed heartbeat_interval, or every "
                "slow phase reads as a dead node"
            )
        self.num_nodes = int(num_nodes)
        self.listen_address = listen
        self.spawn = bool(spawn)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.secret = secret
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(send_stall_seconds=float(heartbeat_timeout))
        )
        self.readmission_timeout = (
            float(readmission_timeout)
            if readmission_timeout is not None
            else self.retry.readmission_timeout_seconds
        )
        self.network = network if network is not None else NetworkModel()
        self.sim_nodes: List[SimulatedNode] = (
            list(sim_nodes)
            if sim_nodes is not None
            else [SimulatedNode(index) for index in range(self.num_nodes)]
        )
        if len(self.sim_nodes) != self.num_nodes:
            raise ExecutorError(
                f"sim_nodes describes {len(self.sim_nodes)} nodes but "
                f"num_nodes is {self.num_nodes}"
            )
        self._listener: Optional[socket.socket] = None
        self._token = secrets.token_hex(16) if self.spawn else None
        self._nodes: Dict[int, _NodeConnection] = {}
        #: pid -> Popen for every node subprocess this executor spawned.
        #: Connections are matched to their process by the pid the hello
        #: reports — nodes dial in *arrival* order, not spawn order, so
        #: pairing them positionally would tie a socket to the wrong
        #: process and make supervision kill a healthy node.
        self._spawned_by_pid: Dict[int, subprocess.Popen] = {}
        self._shard_to_node: Dict[int, int] = {}
        self._shard_factory: Optional[Callable[[int, Any], Any]] = None
        self._shard_codec = None
        self._reset_nonce = 0
        #: Lost shard -> node chosen to host its re-seeded state.
        self._lost_assignment: Dict[int, int] = {}
        #: Supervision log: one dict per death/readmission/rehoming.
        self.fault_events: List[dict] = []

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _ensure_listener(self) -> Tuple[str, int]:
        if self._listener is None:
            host, _, port = self.listen_address.rpartition(":")
            if not host or not port.isdigit():
                raise ExecutorError(
                    f"cluster listen address must be HOST:PORT, got {self.listen_address!r}"
                )
            if self.secret is None and not is_loopback(host):
                raise ExecutorError(
                    f"refusing to listen on non-loopback address "
                    f"{self.listen_address!r} without a cluster secret: remote "
                    "peers would be unauthenticated. Configure cluster_secret "
                    "(and give each node the same secret via "
                    f"{SECRET_ENV_VAR} or --secret-file)."
                )
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, int(port)))
            except OSError as error:
                listener.close()
                raise ExecutorError(
                    f"cluster executor could not bind {self.listen_address!r}: {error}"
                ) from error
            listener.listen(self.num_nodes)
            self._listener = listener
        return self._listener.getsockname()[:2]

    def _spawn_node(self, address: Tuple[str, int]) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.cluster.node",
            "--connect",
            f"{address[0]}:{address[1]}",
            "--heartbeat-interval",
            str(self.heartbeat_interval),
        ]
        env = dict(os.environ)
        # Mirror multiprocessing's spawn semantics: the node must be able to
        # unpickle callables and agent classes from any module the driver can
        # import (test modules, user scripts on sys.path), not just installed
        # packages.
        env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
        # Credentials travel in the environment, never on the command line —
        # argv is world-readable via ps on shared hosts.
        if self._token is not None:
            env[TOKEN_ENV_VAR] = self._token
        if self.secret is not None:
            env[SECRET_ENV_VAR] = self.secret
        process = subprocess.Popen(command, env=env)
        _register_spawned(process)
        self._spawned_by_pid[process.pid] = process
        return process

    def _ensure_nodes(self) -> None:
        """Bring the node set up to ``num_nodes`` live connections."""
        if len(self._nodes) == self.num_nodes:
            return
        address = self._ensure_listener()
        missing = [index for index in range(self.num_nodes) if index not in self._nodes]
        processes: List[Optional[subprocess.Popen]] = []
        for _ in missing:
            processes.append(self._spawn_node(address) if self.spawn else None)
        try:
            for index in missing:
                self._nodes[index] = self._accept_node(
                    index, self.retry.accept_timeout_seconds
                )
        except socket.timeout:
            raise ExecutorError(
                f"cluster executor expected {self.num_nodes} nodes but only "
                f"{len(self._nodes)} connected within "
                f"{self.retry.accept_timeout_seconds:.0f}s; start the missing "
                "nodes with "
                f"'python -m repro.cluster.node --connect {address[0]}:{address[1]}'"
            ) from None

    def _accept_node(self, index: int, timeout: float) -> _NodeConnection:
        """Accept, challenge and authenticate the next node for one slot.

        Peers that fail any handshake step — no hello, wrong token,
        missing or wrong HMAC proof — are closed and ignored; only an
        authenticated peer becomes a node.  Raises ``socket.timeout``
        when no acceptable peer arrives within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout(f"no node connected within {timeout:.1f}s")
            self._listener.settimeout(remaining)
            sock, peer = self._listener.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(max(remaining, 1.0))
            channel = FrameChannel(sock, role="driver")
            nonce = issue_challenge()
            try:
                channel.send_message(
                    "challenge",
                    {"nonce": nonce, "auth_required": self.secret is not None},
                )
                message = channel.recv_message()
            except (ProtocolError, OSError):
                sock.close()
                continue
            if message is None or message[0] != "hello":
                sock.close()
                continue
            meta = message[1] or {}
            if self._token is not None and meta.get("token") != self._token:
                sock.close()
                continue
            if self.secret is not None:
                if not verify_hello(self.secret, nonce, meta.get("proof")):
                    sock.close()
                    continue
                channel.enable_auth(derive_session_key(self.secret, nonce))
            sock.settimeout(None)
            pid = int(meta.get("pid", -1))
            # The socket belongs to whichever process dialed it — resolve
            # by the hello's pid, never by spawn order (``process`` is only
            # the fallback for a peer we did not spawn ourselves).
            return _NodeConnection(
                index, sock, channel, pid, peer, self._spawned_by_pid.get(pid)
            )

    def _node(self, index: int) -> _NodeConnection:
        try:
            return self._nodes[index]
        except KeyError:
            raise ExecutorError(f"cluster node {index} is not connected") from None

    # ------------------------------------------------------------------
    # Supervision: node death, re-admission, degradation
    # ------------------------------------------------------------------
    def _node_failed(self, connection: _NodeConnection, error: BaseException) -> NodeLossError:
        """A node died or timed out: supervise the loss and build the
        error that routes the caller into checkpoint recovery."""
        return self._supervise_loss(connection, error)

    def _retire(self, connection: _NodeConnection, dead: Dict[int, _NodeConnection]) -> None:
        """Remove a connection from the live set and reap its process."""
        dead[connection.index] = connection
        self._nodes.pop(connection.index, None)
        connection.close()
        if connection.process is not None:
            self._spawned_by_pid.pop(connection.process.pid, None)
            try:
                connection.process.kill()
                connection.process.wait(timeout=5)
            except (OSError, subprocess.TimeoutExpired):
                pass
            _unregister_spawned(connection.process)

    def _resync_survivors(self, dead: Dict[int, _NodeConnection]) -> None:
        """Drain every surviving stream to a clean frame boundary.

        An aborted round leaves queued replies on the survivors; the
        nonce-tagged ``sync`` drains each stream up to its ack *without*
        touching the node's resident shard state (that is the difference
        from ``reset``).  A survivor that fails the sync is dead too.
        """
        self._reset_nonce += 1
        nonce = self._reset_nonce
        for index, connection in sorted(list(self._nodes.items())):
            try:
                connection.channel.send_message("sync", {"nonce": nonce})
                connection.sock.settimeout(self.heartbeat_timeout)
                while True:
                    message = connection.channel.recv_message()
                    if message is None:
                        raise ConnectionLostError("node closed during resync")
                    if message[0] == "ok" and (message[1] or {}).get("nonce") == nonce:
                        break
                connection.sock.settimeout(None)
            except (ProtocolError, OSError):
                self._retire(connection, dead)

    def _acquire_replacement(self, index: int) -> Optional[_NodeConnection]:
        """One attempt to refill a dead slot.

        Spawned mode starts a fresh subprocess and waits the accept
        window for it; external mode holds the listener open for
        ``readmission_timeout`` seconds so a replacement started by an
        operator (or a supervisor script) can dial in.  Returns ``None``
        when no authenticated replacement arrives.
        """
        if self._listener is None:
            return None
        process: Optional[subprocess.Popen] = None
        if self.spawn:
            timeout = self.retry.accept_timeout_seconds
            process = self._spawn_node(self._listener.getsockname()[:2])
        else:
            timeout = self.readmission_timeout
            if timeout <= 0:
                return None
        try:
            return self._accept_node(index, timeout)
        except (socket.timeout, OSError):
            if process is not None:
                self._spawned_by_pid.pop(process.pid, None)
                try:
                    process.kill()
                    process.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    pass
                _unregister_spawned(process)
            return None

    def _emptiest_node(self) -> int:
        """Survivor with the fewest (current + already assigned) shards;
        lowest index breaks ties — deterministic rehoming."""
        counts = {index: 0 for index in self._nodes}
        for node_index in self._shard_to_node.values():
            if node_index in counts:
                counts[node_index] += 1
        for node_index in self._lost_assignment.values():
            if node_index in counts:
                counts[node_index] += 1
        return min(sorted(counts), key=lambda index: (counts[index], index))

    def _supervise_loss(self, first: _NodeConnection, error: BaseException) -> NodeLossError:
        """Handle one detected node death end to end.

        Retire the dead node, resync the survivors (retiring any that
        fail), refill each dead slot (respawn / re-admit) or fall back
        to rehoming onto survivors, and record where every lost shard's
        re-seeded state should land (claimed later by
        :meth:`reseed_shards`).  Surviving nodes keep their resident
        state throughout — there is no teardown.
        """
        started = time.monotonic()
        dead: Dict[int, _NodeConnection] = {}
        self._retire(first, dead)
        self._resync_survivors(dead)
        # Which shards lost their state: everything hosted on a dead node,
        # plus anything still awaiting a reseed from an earlier loss.
        origin: Dict[int, int] = {
            shard_id: node_index
            for shard_id, node_index in self._shard_to_node.items()
            if node_index in dead
        }
        for shard_id, node_index in self._lost_assignment.items():
            origin.setdefault(shard_id, node_index)
        for shard_id in origin:
            self._shard_to_node.pop(shard_id, None)
        self._lost_assignment = {}

        actions: Dict[int, str] = {}
        for index in sorted(dead):
            replacement = self._acquire_replacement(index)
            if replacement is not None:
                self._nodes[index] = replacement
                actions[index] = "respawned" if self.spawn else "readmitted"
            else:
                actions[index] = "rehomed" if self._nodes else "lost"

        if not self._nodes:
            # Total loss: no resident state survives anywhere.
            self._shard_to_node = {}
            self._shards = None
            action = "lost"
        else:
            for shard_id in sorted(origin):
                home = origin[shard_id]
                self._lost_assignment[shard_id] = (
                    home if home in self._nodes else self._emptiest_node()
                )
            action = actions[first.index]

        described = {
            "respawned": "a replacement process was spawned into its slot",
            "readmitted": "a replacement node was re-admitted into its slot",
            "rehomed": "no replacement arrived, so its shards were rehomed "
            "onto the surviving nodes",
            "lost": "no node survives",
        }[action]
        self.fault_events.append(
            {
                "event": "node_loss",
                "node": first.index,
                "pid": first.pid,
                "lost_shards": tuple(sorted(origin)),
                "action": action,
                "survivors": tuple(sorted(self._nodes)),
                "wall_seconds": time.monotonic() - started,
                "error": f"{type(error).__name__}: {error}",
            }
        )
        return NodeLossError(
            f"cluster node {first.index} (pid {first.pid}) died or stopped "
            f"heartbeating; {described}. The lost resident shard state must "
            "be re-seeded (for BRACE runs: recover from the last checkpoint). "
            f"Original error: {type(error).__name__}: {error}",
            node_index=first.index,
            lost_shards=sorted(origin),
            action=action,
        )

    def drain_fault_events(self) -> List[dict]:
        """Hand the accumulated supervision log to the caller (and clear it)."""
        events, self.fault_events = self.fault_events, []
        return events

    def lost_shards(self) -> Tuple[int, ...]:
        """Shards whose state was lost and awaits :meth:`reseed_shards`."""
        return tuple(sorted(self._lost_assignment))

    def reseed_shards(self, payloads: Dict[int, Any]) -> None:
        """Re-install lost shards on their supervision-assigned nodes.

        The counterpart of :meth:`init_shards` for partial recovery:
        only the shards a node death lost are re-built (through the
        original factory and codec), on the replacement node or the
        survivors the supervisor picked — the other shards' resident
        state is never touched.
        """
        if self._shard_factory is None:
            raise ExecutorError(
                "no resident shard round is active; use init_shards() first"
            )
        unknown = sorted(set(payloads) - set(self._lost_assignment))
        if unknown:
            raise ExecutorError(f"shards {unknown} are not awaiting a reseed")
        missing = sorted(set(self._lost_assignment) - set(payloads))
        if missing:
            raise ExecutorError(
                f"reseed_shards must cover every lost shard; missing {missing}"
            )
        codec_name = self._codec_name(self._shard_codec)
        sent: List[Tuple[int, _NodeConnection]] = []
        for shard_id in sorted(payloads):
            connection = self._node(self._lost_assignment[shard_id])
            blob = self._encode_payload(self._shard_codec, payloads[shard_id])
            self._send(
                connection,
                "init_shard",
                {"shard_id": shard_id, "factory": self._shard_factory,
                 "codec": codec_name},
                blob,
            )
            sent.append((shard_id, connection))
        first_error: Optional[BaseException] = None
        for shard_id, connection in sent:
            kind, meta, _ = self._recv_reply(connection)
            if kind == "error":
                if first_error is None:
                    first_error = self._remote_error(meta)
                continue
            self._shard_to_node[shard_id] = connection.index
            self._lost_assignment.pop(shard_id, None)
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _codec_name(codec) -> Optional[str]:
        return "columnar" if codec is not None else None

    @staticmethod
    def _encode_payload(codec, payload) -> bytes:
        try:
            if codec is not None:
                return codec.encode(payload)
            return pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the cluster executor could not serialize a shard payload: {error}. "
                "Everything crossing the node boundary must be picklable "
                "(module-level functions and importable classes)."
            ) from error

    @staticmethod
    def _decode_payload(codec, blob: bytes):
        if codec is not None:
            return codec.decode(blob)
        return pickle.loads(blob)

    def _send(self, connection: _NodeConnection, kind: str, meta, blob: bytes = b"") -> int:
        """Send one message, draining the node's replies while blocked.

        Commands go out before replies are collected, so a large command
        can fill the kernel buffers while the node is itself blocked
        sending a large reply — a classic both-sides-sending deadlock.
        Draining incoming frames into the connection's channel whenever
        the send would block breaks the cycle; the drained frames surface
        on the next :meth:`_recv_reply`.
        """
        data = memoryview(connection.channel.seal_message(kind, meta, blob))
        payload_bytes = len(data) - 8  # minus the length prefix
        sock = connection.sock
        stall_seconds = self.retry.send_stall_seconds
        try:
            sock.setblocking(False)
            try:
                while data:
                    readable, writable, _ = select.select(
                        [sock], [sock], [], stall_seconds
                    )
                    if not readable and not writable:
                        raise socket.timeout(
                            f"send stalled for {stall_seconds:.1f}s"
                        )
                    if readable:
                        chunk = sock.recv(1 << 16)
                        if not chunk:
                            raise ConnectionLostError("node closed while receiving a command")
                        connection.channel.absorb(chunk)
                    if writable:
                        try:
                            sent = sock.send(data)
                        except BlockingIOError:
                            sent = 0
                        data = data[sent:]
            finally:
                sock.setblocking(True)
        except (ProtocolError, OSError) as error:
            raise self._node_failed(connection, error) from error
        return payload_bytes

    def _recv_reply(self, connection: _NodeConnection) -> Tuple[str, Any, bytes]:
        """Next non-heartbeat message; any frame resets the liveness clock.

        ``"error"`` replies are *returned*, not raised: a round with many
        outstanding commands must keep collecting the other replies so the
        stream stays in sync (a mid-collection raise would leave stale
        results queued for the next round to misread).  Callers pass the
        reply through :meth:`_check_reply` once their batch is drained.
        Envelope violations (corruption, bad MAC, sequence gaps) are
        fail-stop node deaths — a stream that cannot be trusted is
        indistinguishable from a dead node, and is handled the same way.
        """
        connection.sock.settimeout(self.heartbeat_timeout)
        try:
            while True:
                message = connection.channel.recv_message()
                if message is None:
                    raise self._node_failed(
                        connection, ConnectionLostError("node closed its connection")
                    )
                if message[0] == "heartbeat":
                    continue
                return message
        except socket.timeout as error:
            raise self._node_failed(
                connection,
                TimeoutError(
                    f"no frame from the node for {self.heartbeat_timeout:.1f}s "
                    f"(heartbeat interval {self.heartbeat_interval:.1f}s)"
                ),
            ) from error
        except (ProtocolError, OSError) as error:
            raise self._node_failed(connection, error) from error
        finally:
            try:
                connection.sock.settimeout(None)
            except OSError:
                pass

    def _check_reply(self, reply: Tuple[str, Any, bytes]) -> Tuple[str, Any, bytes]:
        """Raise the rebuilt remote exception if ``reply`` is an error."""
        if reply[0] == "error":
            raise self._remote_error(reply[1])
        return reply

    @staticmethod
    def _remote_error(meta: dict) -> BaseException:
        """Rebuild a task exception shipped back from a node."""
        blob = meta.get("exception")
        if blob is not None:
            try:
                return pickle.loads(blob)
            except Exception:  # noqa: BLE001 - fall back to the formatted text
                pass
        return ExecutorError(
            "a cluster shard task failed on its node:\n" + meta.get("traceback", "")
        )

    # ------------------------------------------------------------------
    # Stateless tasks
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> List[TaskResult]:
        """Round-robin the callables across the nodes (pickled whole)."""
        if not tasks:
            return []
        self._ensure_nodes()
        order = sorted(self._nodes)
        per_node: Dict[int, List[int]] = {index: [] for index in order}
        for position, task in enumerate(tasks):
            node_index = order[position % len(order)]
            blob = self._dumps_task(task)
            self._send(self._nodes[node_index], "call", None, blob)
            per_node[node_index].append(position)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        first_error: Optional[BaseException] = None
        for node_index in order:
            connection = self._nodes[node_index]
            for position in per_node[node_index]:
                kind, meta, blob = self._recv_reply(connection)
                if kind == "error":
                    if first_error is None:
                        first_error = self._remote_error(meta)
                    continue
                results[position] = TaskResult(
                    position, pickle.loads(blob), meta["wall_seconds"]
                )
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    @staticmethod
    def _dumps_task(task: Callable[[], Any]) -> bytes:
        try:
            return pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError) as error:
            if not _is_pickling_error(error):
                raise
            raise ExecutorError(
                f"the cluster executor could not serialize a task: {error}. "
                "Tasks must be picklable (module-level functions, "
                "functools.partial over importable callables)."
            ) from error

    # ------------------------------------------------------------------
    # Resident shards
    # ------------------------------------------------------------------
    def init_shards(
        self,
        factory: Callable[[int, Any], Any],
        payloads: Dict[int, Any],
        codec=None,
    ) -> None:
        if self._shard_to_node:
            raise ExecutorError(
                "resident shards are already initialized; call teardown_shards() first"
            )
        if not payloads:
            raise ExecutorError("init_shards needs at least one shard payload")
        self._ensure_nodes()
        self._shard_factory = factory
        self._shard_codec = codec
        self._lost_assignment = {}
        weights = {
            shard_id: float(len(getattr(payload, "agents", ()) or ()) or 1)
            for shard_id, payload in payloads.items()
        }
        placement = plan_placement(
            sorted(payloads), weights, self.sim_nodes, self.network
        )
        try:
            sent: List[Tuple[int, _NodeConnection]] = []
            for shard_id in sorted(payloads):
                connection = self._node(placement[shard_id])
                blob = self._encode_payload(codec, payloads[shard_id])
                self._send(
                    connection,
                    "init_shard",
                    {"shard_id": shard_id, "factory": factory,
                     "codec": self._codec_name(codec)},
                    blob,
                )
                sent.append((shard_id, connection))
            first_error: Optional[BaseException] = None
            for shard_id, connection in sent:
                kind, meta, _ = self._recv_reply(connection)
                if kind == "error":
                    if first_error is None:
                        first_error = self._remote_error(meta)
                    continue
                self._shard_to_node[shard_id] = connection.index
        except NodeLossError:
            # A half-seeded shard set is unusable: wipe what did install so
            # the recovery path can re-init from scratch on the (possibly
            # refilled) node set.
            self.teardown_shards()
            raise
        if first_error is not None:
            self.teardown_shards()  # drop the shards that did install
            raise first_error
        self._shards = None  # the base-class in-process map stays unused

    def has_shards(self) -> bool:
        return bool(self._shard_to_node)

    def run_sharded_tasks(
        self,
        tasks: Sequence[Tuple[int, Callable[[Any, Any], Any], Any]],
        codec=None,
        overlap: bool = False,
    ) -> List[ShardTaskResult]:
        """Ship ``(shard_id, fn, payload)`` tasks to the shards' nodes.

        All commands go out first (each node then works through its batch
        sequentially, preserving per-shard serialization), replies are
        collected per node afterwards — the round's wall clock is the
        slowest node, not the sum.  ``overlap`` is implied by the
        send-all-then-collect structure.
        """
        if not self._shard_to_node:
            raise ExecutorError("no resident shards are initialized; call init_shards() first")
        if self._lost_assignment:
            raise ExecutorError(
                f"resident shards {sorted(self._lost_assignment)} were lost to "
                "a node death and must be re-seeded (reseed_shards) before the "
                "next round"
            )
        if not tasks:
            return []
        codec_name = self._codec_name(codec)
        pending: List[dict] = []
        for index, (shard_id, fn, payload) in enumerate(tasks):
            node_index = self._shard_to_node.get(shard_id)
            if node_index is None:
                raise ExecutorError(f"unknown resident shard {shard_id!r}")
            connection = self._node(node_index)
            start = time.perf_counter()
            blob = self._encode_payload(codec, payload)
            encode_seconds = time.perf_counter() - start
            start = time.perf_counter()
            self._send(
                connection,
                "run_task",
                {"shard_id": shard_id, "fn": fn, "codec": codec_name},
                blob,
            )
            send_seconds = time.perf_counter() - start
            pending.append(
                {
                    "index": index,
                    "shard_id": shard_id,
                    "node": node_index,
                    "payload_bytes": len(blob),
                    "serialize": encode_seconds,
                    "transport": send_seconds,
                }
            )
        results: List[Optional[ShardTaskResult]] = [None] * len(tasks)
        first_error: Optional[BaseException] = None
        for node_index in sorted(self._nodes):
            connection = self._nodes[node_index]
            for entry in pending:
                if entry["node"] != node_index:
                    continue
                kind, meta, blob = self._recv_reply(connection)
                if kind == "error":
                    # Keep draining the other replies so the streams stay
                    # in sync; raise once the round is fully collected.
                    if first_error is None:
                        first_error = self._remote_error(meta)
                    continue
                start = time.perf_counter()
                value = self._decode_payload(codec, blob)
                decode_seconds = time.perf_counter() - start
                results[entry["index"]] = ShardTaskResult(
                    entry["shard_id"],
                    value,
                    meta["wall_seconds"],
                    payload_bytes=entry["payload_bytes"],
                    result_bytes=len(blob),
                    serialize_seconds=entry["serialize"]
                    + meta["codec_seconds"]
                    + decode_seconds,
                    transport_seconds=entry["transport"],
                )
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def teardown_shards(self) -> None:
        """Drop every node's shard state; connections and processes stay up.

        The reset is a nonce-tagged synchronization point: an aborted
        round (a node died mid-collection) can leave queued replies on
        the surviving nodes, so each node's stream is drained until the
        ``"ok"`` echoing this reset's nonce — anything older is stale and
        discarded.  A node that fails to acknowledge is disconnected (and
        respawned by the next :meth:`_ensure_nodes`), so teardown always
        leaves a clean slate even mid-failure.
        """
        self._shard_to_node = {}
        self._shard_factory = None
        self._shard_codec = None
        self._lost_assignment = {}
        self._reset_nonce += 1
        nonce = self._reset_nonce
        for index in sorted(self._nodes):
            connection = self._nodes[index]
            try:
                connection.channel.send_message("reset", {"nonce": nonce})
                connection.sock.settimeout(self.heartbeat_timeout)
                while True:
                    message = connection.channel.recv_message()
                    if message is None:
                        raise ConnectionLostError("node closed during reset")
                    if message[0] == "ok" and (message[1] or {}).get("nonce") == nonce:
                        break
                connection.sock.settimeout(None)
            except (ProtocolError, OSError):
                connection.close()
                if connection.process is not None:
                    self._spawned_by_pid.pop(connection.process.pid, None)
                    connection.process.kill()
                    connection.process.wait()
                    _unregister_spawned(connection.process)
                del self._nodes[index]
        self._shards = None

    def migrate_shard(self, shard_id: int, node_index: int) -> int:
        """Physically re-home one shard onto another node; returns the
        bytes of shard state that crossed the wire.

        The shard's owned agents travel as one codec-encoded seed frame
        (collect on the source, re-build via the original factory on the
        destination).  Replica caches and delta send histories do **not**
        travel — the caller must follow up with a full
        ``adopt_partitioning`` round so every shard reships its replicas
        from scratch (the BRACE runtime's
        ``_apply_new_partitioning_resident`` does exactly that).
        """
        source_index = self._shard_to_node.get(shard_id)
        if source_index is None:
            raise ExecutorError(f"unknown resident shard {shard_id!r}")
        if node_index not in self._nodes:
            raise ExecutorError(f"cluster node {node_index} is not connected")
        if source_index == node_index:
            return 0
        codec_name = self._codec_name(self._shard_codec)
        source = self._node(source_index)
        self._send(source, "collect_shard", {"shard_id": shard_id, "codec": codec_name})
        kind, meta, blob = self._check_reply(self._recv_reply(source))
        if kind != "shard_state":
            raise ExecutorError(
                f"cluster node {source_index} answered a shard collection with {kind!r}"
            )
        destination = self._node(node_index)
        try:
            # States with a migration_seed() hook rebuild through the original
            # factory; plain states install verbatim (factory=None).
            self._send(
                destination,
                "init_shard",
                {"shard_id": shard_id,
                 "factory": self._shard_factory if meta.get("reseed") else None,
                 "codec": codec_name},
                blob,
            )
            self._check_reply(self._recv_reply(destination))
        except NodeLossError as error:
            # The shard's state left its source and never landed: it is
            # lost with the destination, whatever the supervisor decided
            # about the destination's other shards.
            self._shard_to_node.pop(shard_id, None)
            if self._nodes:
                self._lost_assignment.setdefault(shard_id, self._emptiest_node())
            error.lost_shards = tuple(sorted(set(error.lost_shards) | {shard_id}))
            raise
        self._shard_to_node[shard_id] = node_index
        return len(blob)

    def rebalance_shards(self, weights: Dict[int, float]) -> Tuple[List[Tuple[int, int, int]], int]:
        """Re-place the shards for the observed load and migrate the diff.

        Returns ``(moves, bytes)`` where each move is ``(shard_id,
        from_node, to_node)``.  Placement is planned over the *live*
        nodes only — a degraded cluster rebalances across its survivors.
        The caller owns protocol correctness: a full adopt round must
        follow any non-empty move list.
        """
        if not self._shard_to_node:
            return [], 0
        live = sorted(self._nodes)
        positions = plan_placement(
            sorted(self._shard_to_node),
            weights,
            [self.sim_nodes[index] for index in live],
            self.network,
        )
        placement = {shard_id: live[position] for shard_id, position in positions.items()}
        moves: List[Tuple[int, int, int]] = []
        moved_bytes = 0
        for shard_id in sorted(placement):
            target = placement[shard_id]
            current = self._shard_to_node[shard_id]
            if target != current:
                moved_bytes += self.migrate_shard(shard_id, target)
                moves.append((shard_id, current, target))
        return moves, moved_bytes

    # ------------------------------------------------------------------
    # Introspection (tests, provenance, benchmarks)
    # ------------------------------------------------------------------
    def shard_node(self, shard_id: int) -> int:
        """Index of the node currently hosting ``shard_id``."""
        try:
            return self._shard_to_node[shard_id]
        except KeyError:
            raise ExecutorError(f"unknown resident shard {shard_id!r}") from None

    def shard_host_pid(self, shard_id: int) -> int:
        """Pid of the node process hosting ``shard_id`` (affinity probe)."""
        return self._node(self.shard_node(shard_id)).pid

    def node_pids(self) -> Dict[int, int]:
        """Node index -> node process pid, for every connected node."""
        return {index: connection.pid for index, connection in sorted(self._nodes.items())}

    def node_topology(self) -> Tuple[dict, ...]:
        """Resolved topology for provenance: one record per connected node."""
        return tuple(
            {
                "node": index,
                "address": f"{connection.address[0]}:{connection.address[1]}",
                "pid": connection.pid,
                "spawned": connection.process is not None,
                "authenticated": connection.channel.authenticated,
                "shards": tuple(
                    shard_id
                    for shard_id, node in sorted(self._shard_to_node.items())
                    if node == index
                ),
            }
            for index, connection in sorted(self._nodes.items())
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every node process and release the listener (idempotent)."""
        nodes, self._nodes = self._nodes, {}
        self._shard_to_node = {}
        self._shard_factory = None
        self._shard_codec = None
        self._lost_assignment = {}
        for connection in nodes.values():
            try:
                connection.channel.send_message("shutdown", None)
                connection.sock.settimeout(self.heartbeat_timeout)
                while True:
                    message = connection.channel.recv_message()
                    if message is None or message[0] != "heartbeat":
                        break
            except (ProtocolError, OSError):
                pass
            connection.close()
            if connection.process is not None:
                self._spawned_by_pid.pop(connection.process.pid, None)
                try:
                    connection.process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    connection.process.kill()
                    connection.process.wait()
                _unregister_spawned(connection.process)
        # Spawned processes that never completed a handshake (stragglers
        # from a failed cluster formation) have no connection to ask nicely
        # through; kill them so shutdown never leaks a child.
        stragglers, self._spawned_by_pid = self._spawned_by_pid, {}
        for process in stragglers.values():
            try:
                process.kill()
                process.wait(timeout=5)
            except (OSError, subprocess.TimeoutExpired):
                pass
            _unregister_spawned(process)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        super().shutdown()
