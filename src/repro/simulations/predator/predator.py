"""Predator agents in two otherwise-identical formulations.

``NonLocalPredator`` programs biting as a *non-local* effect assignment: the
biter writes a ``hurt`` effect onto its victims, so BRACE needs the second
reduce pass.  ``LocalPredator`` programs the same behaviour as a *local*
assignment — each fish collects the bites it receives from nearby biters —
which is the rewrite effect inversion produces; BRACE then needs a single
reduce pass.  Both classes share every other behaviour (crowd sensing,
movement, energy bookkeeping, spawning and dying), so any throughput
difference between them isolates the cost of the extra pass, exactly as in
the paper's Figure 5 experiment.
"""

from __future__ import annotations

import math

from repro.core.agent import Agent
from repro.core.combinators import COUNT, SUM
from repro.core.fields import EffectField, StateField
from repro.simulations.predator.model import PredatorParameters


def make_predator_classes(parameters: PredatorParameters) -> tuple[type, type]:
    """Build the (non-local, local) predator classes bound to ``parameters``."""

    class _PredatorBase(Agent):
        """Shared state, movement and energy dynamics."""

        params = parameters

        x = StateField(
            0.0, spatial=True, visibility=parameters.rho, reachability=parameters.reachability()
        )
        y = StateField(
            0.0, spatial=True, visibility=parameters.rho, reachability=parameters.reachability()
        )
        dx = StateField(1.0)
        dy = StateField(0.0)
        energy = StateField(parameters.initial_energy)

        #: Damage received this tick (written by biters or collected locally).
        hurt = EffectField(SUM)
        #: Number of bites this fish landed this tick (always local).
        bites_landed = EffectField(SUM)
        #: Number of neighbours (used to steer away from crowds).
        crowd = EffectField(COUNT)
        crowd_x = EffectField(SUM)
        crowd_y = EffectField(SUM)

        # ------------------------------------------------------------------
        # Shared movement / energy update
        # ------------------------------------------------------------------
        def update(self, ctx) -> None:
            p = self.params
            rng = ctx.rng(self)

            new_energy = (
                self.energy
                - self.hurt
                - p.metabolic_cost
                + p.grazing_gain
                + p.bite_gain * self.bites_landed
            )

            # Steer away from the local crowd centre, with random wander.
            crowd = self.crowd
            if crowd > 0:
                away_x = -(self.crowd_x / crowd)
                away_y = -(self.crowd_y / crowd)
                desired_angle = math.atan2(away_y, away_x)
            else:
                desired_angle = math.atan2(self.dy, self.dx)
            current_angle = math.atan2(self.dy, self.dx)
            turn = math.remainder(desired_angle - current_angle, 2.0 * math.pi)
            turn = max(-p.max_turn, min(p.max_turn, turn))
            turn += float(rng.normal(0.0, 0.2))
            new_angle = current_angle + turn
            new_dx, new_dy = math.cos(new_angle), math.sin(new_angle)

            new_x = self.x + new_dx * p.speed * p.time_step
            new_y = self.y + new_dy * p.speed * p.time_step
            # Keep fish inside the region with reflecting walls.
            half = p.region_size / 2.0
            if new_x > half or new_x < -half:
                new_dx = -new_dx
                new_x = max(-half, min(half, new_x))
            if new_y > half or new_y < -half:
                new_dy = -new_dy
                new_y = max(-half, min(half, new_y))

            self.dx = new_dx
            self.dy = new_dy
            self.x = new_x
            self.y = new_y

            if p.dynamic_population:
                if new_energy <= 0.0:
                    self.energy = 0.0
                    ctx.kill(self)
                    return
                if new_energy >= p.spawn_threshold and rng.random() < p.spawn_probability:
                    new_energy -= p.spawn_energy
                    child = type(self)(
                        x=self.x,
                        y=self.y,
                        dx=-self.dx,
                        dy=-self.dy,
                        energy=p.spawn_energy,
                    )
                    ctx.spawn(self, child)
            self.energy = new_energy

        # ------------------------------------------------------------------
        # Shared crowd sensing (local assignments only)
        # ------------------------------------------------------------------
        def _sense_crowd(self, ctx) -> None:
            my_x, my_y = self.x, self.y
            for other in ctx.neighbors(self, self.params.rho):
                offset_x = other.x - my_x
                offset_y = other.y - my_y
                distance = math.hypot(offset_x, offset_y)
                if distance == 0.0:
                    continue
                self.crowd = 1
                self.crowd_x = offset_x / distance
                self.crowd_y = offset_y / distance

    class NonLocalPredator(_PredatorBase):
        """Biting as a non-local effect assignment (the biter hurts its victims)."""

        def query(self, ctx) -> None:
            p = self.params
            self._sense_crowd(ctx)
            my_x, my_y = self.x, self.y
            bite_range_sq = p.bite_range * p.bite_range
            for other in ctx.neighbors(self, p.rho):
                offset_x = other.x - my_x
                offset_y = other.y - my_y
                if offset_x * offset_x + offset_y * offset_y <= bite_range_sq:
                    other.hurt = p.bite_damage  # non-local effect assignment
                    self.bites_landed = 1.0

    class LocalPredator(_PredatorBase):
        """Biting as a local effect assignment (each fish collects its bites).

        This is the effect-inverted formulation: it produces exactly the same
        aggregate ``hurt`` values because the bite predicate is symmetric in
        the positions of the two fish.
        """

        def query(self, ctx) -> None:
            p = self.params
            self._sense_crowd(ctx)
            my_x, my_y = self.x, self.y
            bite_range_sq = p.bite_range * p.bite_range
            for other in ctx.neighbors(self, p.rho):
                offset_x = other.x - my_x
                offset_y = other.y - my_y
                if offset_x * offset_x + offset_y * offset_y <= bite_range_sq:
                    self.hurt = p.bite_damage  # collected locally
                    self.bites_landed = 1.0

    NonLocalPredator.__name__ = "Predator"
    NonLocalPredator.__qualname__ = "Predator"
    LocalPredator.__name__ = "Predator"
    LocalPredator.__qualname__ = "Predator"
    return NonLocalPredator, LocalPredator


_DEFAULT_CLASSES = make_predator_classes(PredatorParameters())
#: Predator class using non-local effect assignments (needs two reduce passes).
NonLocalPredator = _DEFAULT_CLASSES[0]
#: Effect-inverted predator class (single reduce pass).
LocalPredator = _DEFAULT_CLASSES[1]
