"""Predator simulation with non-local effect assignments (spawn/bite)."""

from repro.simulations.predator.model import PredatorParameters
from repro.simulations.predator.predator import (
    NonLocalPredator,
    LocalPredator,
    make_predator_classes,
)
from repro.simulations.predator.workload import build_predator_world
from repro.simulations.predator.brasil_scripts import (
    PREDATOR_NON_LOCAL_SCRIPT,
    PREDATOR_LOCAL_SCRIPT,
)

__all__ = [
    "PredatorParameters",
    "NonLocalPredator",
    "LocalPredator",
    "make_predator_classes",
    "build_predator_world",
    "PREDATOR_NON_LOCAL_SCRIPT",
    "PREDATOR_LOCAL_SCRIPT",
]
