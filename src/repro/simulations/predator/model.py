"""Parameters of the predator simulation.

The predator simulation (Appendix C) is inspired by artificial-society
models: fish can *bite* nearby fish — hurting and possibly killing them — and
*spawn* offspring when they have accumulated enough energy, so the population
density approaches an equilibrium where births and deaths balance.

Biting is the paper's example of a non-local effect assignment (the biter
writes a ``hurt`` effect onto the victim).  The same behaviour can be written
as a local assignment (the victim collects ``hurt`` from nearby biters),
which is exactly what effect inversion produces; the Figure 5 experiment
compares the two formulations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredatorParameters:
    """Tunable constants of the predator simulation."""

    #: Perception/visibility radius.
    rho: float = 8.0
    #: Biting range (must not exceed ``rho``).
    bite_range: float = 2.0
    #: Energy removed from the victim per bite.
    bite_damage: float = 1.5
    #: Energy gained by the biter per bite landed.
    bite_gain: float = 0.5
    #: Energy spent per tick just by living.
    metabolic_cost: float = 0.4
    #: Energy gained per tick from ambient food.
    grazing_gain: float = 0.6
    #: Initial energy of a fish.
    initial_energy: float = 10.0
    #: Energy above which a fish may spawn.
    spawn_threshold: float = 14.0
    #: Probability of spawning per tick once above the threshold.
    spawn_probability: float = 0.15
    #: Energy given to the child (and removed from the parent).
    spawn_energy: float = 6.0
    #: Swimming speed (distance per tick).
    speed: float = 1.0
    #: Maximum turning angle per tick (radians).
    max_turn: float = 0.8
    #: Side length of the square world.
    region_size: float = 200.0
    #: Integration time step.
    time_step: float = 1.0

    #: When True the update phase may kill/spawn agents.  Disable to keep the
    #: population fixed, which the deterministic equivalence tests and the
    #: Appendix A MapReduce jobs require.
    dynamic_population: bool = True

    def reachability(self) -> float:
        """Upper bound on per-tick displacement."""
        return self.speed * self.time_step
