"""World construction for the predator simulation."""

from __future__ import annotations

import numpy as np

from repro.core.world import World
from repro.simulations.predator.model import PredatorParameters
from repro.simulations.predator.predator import make_predator_classes
from repro.spatial.bbox import BBox


def build_predator_world(
    num_fish: int,
    parameters: PredatorParameters | None = None,
    seed: int = 0,
    non_local: bool = True,
    agent_class: type | None = None,
) -> World:
    """Build a world with ``num_fish`` predators scattered over the region.

    ``non_local`` selects the formulation: True uses the class with non-local
    bite assignments (two reduce passes in BRACE), False the effect-inverted
    local one.  Pass ``agent_class`` to override entirely (e.g. with a
    BRASIL-compiled class).
    """
    parameters = parameters or PredatorParameters()
    if agent_class is None:
        non_local_class, local_class = make_predator_classes(parameters)
        agent_class = non_local_class if non_local else local_class
    half = parameters.region_size / 2.0
    world = World(bounds=BBox(((-half, half), (-half, half))), seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(num_fish):
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        world.add_agent(
            agent_class(
                x=float(rng.uniform(-half, half)),
                y=float(rng.uniform(-half, half)),
                dx=float(np.cos(angle)),
                dy=float(np.sin(angle)),
                energy=float(rng.uniform(0.6, 1.4) * parameters.initial_energy),
            )
        )
    return world
