"""BRASIL sources for the predator simulation.

The paper programs biting "either as a non-local effect assignment (fish
assign 'hurt' effects to others) or as a local one (fish collect 'hurt'
effects from others) in otherwise identical BRASIL scripts" because the
original BRASIL compiler did not yet implement effect inversion.  Both
scripts are reproduced here; this compiler *does* implement inversion, so
compiling the non-local script with ``effect_inversion="auto"`` yields the
local formulation automatically (the tests verify the two agree).

The scripts model a simplified, fixed-population variant of the predator
simulation (BRASIL update rules cannot express births/deaths); the full
dynamic-population model lives in :mod:`repro.simulations.predator.predator`.
"""

PREDATOR_NON_LOCAL_SCRIPT = """
class Predator {
    // Position in the plane; fish can see and move a bounded distance.
    public state float x : (x + dx); #range[-8, 8];
    public state float y : (y + dy); #range[-8, 8];
    // Heading, steered away from the local crowd.
    public state float dx : (crowd > 0) ? (0 - crowdx / crowd) : dx;
    public state float dy : (crowd > 0) ? (0 - crowdy / crowd) : dy;
    // Energy: grazing gain minus metabolic cost minus damage received.
    public state float energy : energy + 0.2 - hurt;

    private effect float hurt : sum;
    private effect float crowdx : sum;
    private effect float crowdy : sum;
    private effect int crowd : sum;

    public void run() {
        foreach (Predator p : Extent<Predator>) {
            const float distance = sqrt((p.x - x) * (p.x - x) + (p.y - y) * (p.y - y));
            if (distance > 0) {
                crowdx <- (p.x - x) / distance;
                crowdy <- (p.y - y) / distance;
                crowd <- 1;
                if (distance < 2) {
                    p.hurt <- 1.5;
                }
            }
        }
    }
}
"""

PREDATOR_LOCAL_SCRIPT = """
class Predator {
    public state float x : (x + dx); #range[-8, 8];
    public state float y : (y + dy); #range[-8, 8];
    public state float dx : (crowd > 0) ? (0 - crowdx / crowd) : dx;
    public state float dy : (crowd > 0) ? (0 - crowdy / crowd) : dy;
    public state float energy : energy + 0.2 - hurt;

    private effect float hurt : sum;
    private effect float crowdx : sum;
    private effect float crowdy : sum;
    private effect int crowd : sum;

    public void run() {
        foreach (Predator p : Extent<Predator>) {
            const float distance = sqrt((p.x - x) * (p.x - x) + (p.y - y) * (p.y - y));
            if (distance > 0) {
                crowdx <- (p.x - x) / distance;
                crowdy <- (p.y - y) / distance;
                crowd <- 1;
                if (distance < 2) {
                    hurt <- 1.5;
                }
            }
        }
    }
}
"""

FISH_SCHOOL_SCRIPT = """
class Fish {
    // The fish location.
    public state float x : (x + vx); #range[-6, 6];
    public state float y : (y + vy); #range[-6, 6];
    // The latest fish velocity, nudged by the avoidance forces.
    public state float vx : (count > 0) ? (vx + avoidx / count) : vx;
    public state float vy : (count > 0) ? (vy + avoidy / count) : vy;

    // Used to update the velocity.
    private effect float avoidx : sum;
    private effect float avoidy : sum;
    private effect int count : sum;

    /** The query phase: repel fish that are too close. */
    public void run() {
        foreach (Fish p : Extent<Fish>) {
            p.avoidx <- 1 / (x - p.x);
            p.avoidy <- 1 / (y - p.y);
            p.count <- 1;
        }
    }
}
"""
