"""Aggregate traffic statistics and the Table 2 comparison.

The paper validates its BRASIL reimplementation of the MITSIM model by
comparing, per lane, the lane changing frequency, the average density and the
average velocity against the original simulator, measured as RMSPE (Relative
Mean Square Percentage Error).  This module collects those statistics from
any engine (sequential, BRACE, or the hand-coded baseline) and computes the
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulations.traffic.model import TrafficParameters
from repro.stats.rmspe import rmspe


@dataclass
class LaneStatistics:
    """Per-lane aggregates accumulated over a run."""

    lane: int
    ticks: int = 0
    vehicle_ticks: int = 0
    speed_sum: float = 0.0
    lane_changes_out: int = 0

    def average_velocity(self) -> float:
        """Mean speed of the vehicles that were in this lane."""
        if self.vehicle_ticks == 0:
            return 0.0
        return self.speed_sum / self.vehicle_ticks

    def average_density(self, segment_length: float) -> float:
        """Mean number of vehicles per unit length (×1000 for readability)."""
        if self.ticks == 0:
            return 0.0
        average_count = self.vehicle_ticks / self.ticks
        return 1000.0 * average_count / segment_length

    def change_frequency(self) -> float:
        """Lane changes out of this lane per vehicle-tick."""
        if self.vehicle_ticks == 0:
            return 0.0
        return self.lane_changes_out / self.vehicle_ticks


class TrafficStatisticsCollector:
    """Collects per-lane statistics tick by tick.

    Works with any representation of a vehicle exposing ``x``, ``lane``,
    ``speed`` and an identifier: agents from the engines or the plain records
    of the hand-coded baseline.
    """

    def __init__(self, parameters: TrafficParameters):
        self.parameters = parameters
        self.lanes: dict[int, LaneStatistics] = {
            lane: LaneStatistics(lane) for lane in range(parameters.num_lanes)
        }
        self._previous_lane: dict[object, int] = {}
        self.ticks_observed = 0

    def observe(self, vehicles) -> None:
        """Record one tick's worth of vehicle states."""
        self.ticks_observed += 1
        for stats in self.lanes.values():
            stats.ticks += 1
        for vehicle in vehicles:
            lane = int(vehicle.lane)
            identifier = getattr(vehicle, "agent_id", None)
            if identifier is None:
                identifier = getattr(vehicle, "vehicle_id")
            stats = self.lanes.setdefault(lane, LaneStatistics(lane))
            stats.vehicle_ticks += 1
            stats.speed_sum += float(vehicle.speed)
            previous = self._previous_lane.get(identifier)
            if previous is not None and previous != lane:
                # Count the change against the lane the vehicle left.
                origin = self.lanes.setdefault(previous, LaneStatistics(previous))
                origin.lane_changes_out += 1
            self._previous_lane[identifier] = lane

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> dict[int, dict[str, float]]:
        """Per-lane summary: change frequency, average density, average velocity."""
        return {
            lane: {
                "change_frequency": stats.change_frequency(),
                "average_density": stats.average_density(self.parameters.segment_length),
                "average_velocity": stats.average_velocity(),
            }
            for lane, stats in sorted(self.lanes.items())
            if lane < self.parameters.num_lanes
        }


def compare_lane_statistics(
    reference: TrafficStatisticsCollector, candidate: TrafficStatisticsCollector
) -> dict[int, dict[str, float]]:
    """Table 2: per-lane RMSPE between two collectors' summaries.

    ``reference`` plays the role of MITSIM and ``candidate`` the BRACE
    reimplementation; each metric's RMSPE is relative to the reference.
    """
    reference_summary = reference.summary()
    candidate_summary = candidate.summary()
    comparison: dict[int, dict[str, float]] = {}
    for lane, reference_metrics in reference_summary.items():
        candidate_metrics = candidate_summary.get(lane, {})
        comparison[lane] = {
            metric: rmspe(
                [candidate_metrics.get(metric, 0.0)], [reference_value]
            )
            for metric, reference_value in reference_metrics.items()
        }
    return comparison
