"""Parameters of the MITSIM-style driver behaviour models.

The traffic simulation follows the structure of MITSIM's behavioural models
as described in Section 5.1 and Appendix C of the paper:

* a **car-following / acceleration model**: a driver adapts her acceleration
  to the lead vehicle in her lane (within the lookahead distance); without a
  lead vehicle she follows a free-flow model towards her desired speed;
* a **lane-selection model**: each tick the driver computes a utility for
  the current, left and right lanes from the average speed of the vehicles
  ahead and the gap to the lead vehicle, picks a candidate lane
  probabilistically, and only moves if the lead and rear gaps in the target
  lane pass a gap-acceptance test;
* a **reluctance factor** discourages moving to the right-most lane — the
  detail the paper uses to explain the larger RMSPE on lane 4 of Table 2.

The numbers below are not MITSIM's calibrated values (those are not public);
they are chosen to produce realistic-looking flow while keeping the model
shape identical, which is what Table 2's validation exercises.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrafficParameters:
    """Tunable constants shared by the agent model and the hand-coded baseline."""

    # Road geometry -----------------------------------------------------
    segment_length: float = 5000.0
    num_lanes: int = 4
    #: Vehicles per unit of road length per lane used when seeding the world.
    density_per_lane: float = 0.02

    # Perception ---------------------------------------------------------
    #: Fixed lookahead/lookbehind distance (the paper fixes 200 for BRACE).
    lookahead: float = 200.0

    # Car following -------------------------------------------------------
    desired_speed: float = 30.0
    speed_jitter: float = 3.0          # per-driver desired-speed variation
    max_acceleration: float = 2.0
    max_deceleration: float = 4.0
    #: Sensitivity of the car-following response to the speed difference.
    following_gain: float = 0.6
    #: Minimum safe bumper-to-bumper gap.
    min_gap: float = 5.0
    #: Desired time headway (seconds) to the lead vehicle.
    desired_headway: float = 1.4

    # Lane changing --------------------------------------------------------
    #: Weight of lane average speed in the lane utility.
    utility_speed_weight: float = 1.0
    #: Weight of the lead gap in the lane utility.
    utility_gap_weight: float = 0.02
    #: Penalty applied to the utility of the right-most lane (reluctance).
    rightmost_lane_penalty: float = 8.0
    #: Fixed bonus for staying in the current lane (discourages weaving).
    keep_lane_bonus: float = 2.0
    #: Logit scale converting utilities into lane-change probabilities.
    utility_scale: float = 0.35
    #: Minimum acceptable lead gap in the target lane.
    lead_gap_acceptance: float = 10.0
    #: Minimum acceptable rear gap in the target lane.
    rear_gap_acceptance: float = 8.0
    #: Probability scale of actually attempting a change once it is attractive.
    change_probability: float = 0.6

    # Integration -------------------------------------------------------------
    time_step: float = 1.0

    def max_speed(self) -> float:
        """Upper bound on vehicle speed (used for reachability reasoning)."""
        return self.desired_speed + 3.0 * self.speed_jitter

    def vehicles_total(self) -> int:
        """Number of vehicles implied by the density and geometry."""
        return int(self.segment_length * self.density_per_lane * self.num_lanes)

    def scaled_to(self, segment_length: float) -> "TrafficParameters":
        """A copy with a different segment length (used by the sweeps)."""
        copy = TrafficParameters(**vars(self))
        copy.segment_length = float(segment_length)
        return copy
