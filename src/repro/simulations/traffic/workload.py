"""World construction for the traffic simulation."""

from __future__ import annotations

import numpy as np

from repro.core.world import World
from repro.simulations.traffic.model import TrafficParameters
from repro.simulations.traffic.vehicle import Vehicle, make_vehicle_class
from repro.spatial.bbox import BBox


def build_traffic_world(
    parameters: TrafficParameters | None = None,
    seed: int = 0,
    vehicle_class: type | None = None,
    num_vehicles: int | None = None,
) -> World:
    """Build a :class:`World` populated with vehicles on the highway segment.

    Vehicles are placed uniformly at random along the segment and across
    lanes with speeds near their (per-driver) desired speed.  The same seed
    produces the same world, so a BRACE run and the hand-coded baseline can
    start from identical initial conditions.
    """
    parameters = parameters or TrafficParameters()
    if vehicle_class is None:
        # Reuse the canonical module-level Vehicle when the parameters allow
        # it: unlike a freshly built dynamic class, it is importable by name
        # and therefore picklable, which the process executor requires.
        if parameters == TrafficParameters():
            vehicle_class = Vehicle
        else:
            vehicle_class = make_vehicle_class(parameters)
    world = World(bounds=BBox(((0.0, parameters.segment_length),)), seed=seed)
    rng = np.random.default_rng(seed)
    count = num_vehicles if num_vehicles is not None else parameters.vehicles_total()
    # Stratified placement: vehicles are spread evenly along the segment with
    # jitter inside their slot.  This models the paper's constant upstream
    # inflow, which keeps the spatial distribution (and therefore the load on
    # every partition) nearly uniform.
    slot = parameters.segment_length / max(1, count)
    for index in range(count):
        desired = float(
            rng.normal(parameters.desired_speed, parameters.speed_jitter)
        )
        desired = max(parameters.desired_speed * 0.5, desired)
        position = (index + float(rng.uniform(0.0, 1.0))) * slot
        world.add_agent(
            vehicle_class(
                x=min(position, parameters.segment_length - 1e-6),
                lane=int(rng.integers(0, parameters.num_lanes)),
                speed=float(max(0.0, rng.normal(desired * 0.8, 2.0))),
                desired_speed=desired,
            )
        )
    return world
