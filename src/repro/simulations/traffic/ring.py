"""A hand-written Python twin of the BRASIL ring-road car model.

:data:`~repro.simulations.traffic.brasil_scripts.TRAFFIC_SCRIPT` and
:class:`RingCar` express the *same* model — nearest visible car ahead via a
``min`` effect, close the gap at half speed or accelerate toward the cap,
wrap at the segment end — once in BRASIL and once directly against the
agent framework.  Because both query through the same visible-region
semantics and both update from the pre-update state with identical
arithmetic, a run from either formulation produces bit-identical agent
states; ``examples/unified_api.py`` and the API test-suite assert exactly
that through the unified :class:`repro.api.Simulation` entry point.

The class is defined at module level (not via a factory) so it is picklable
by name — a requirement of the process executor — which pins its constants
to the defaults of :func:`~repro.simulations.traffic.brasil_scripts.traffic_script`.
"""

from __future__ import annotations

import numpy as np

from repro.core.agent import Agent
from repro.core.combinators import MIN
from repro.core.fields import EffectField, StateField
from repro.core.world import World
from repro.spatial.bbox import BBox

#: Ring length matching ``brasil_scripts.TRAFFIC_RING_LENGTH``.
RING_LENGTH = 1000.0
#: How far a car sees (and the gap it reacts to), as in the script.
RING_VISIBILITY = 50.0
#: Speed cap, also the declared per-tick reachability.
RING_MAX_SPEED = 15.0


class RingCar(Agent):
    """Hand-written equivalent of the BRASIL ``Car`` (default-size ring)."""

    x = StateField(
        0.0, spatial=True, visibility=RING_VISIBILITY, reachability=RING_MAX_SPEED,
        doc="Position along the ring road, wrapped at the segment end.",
    )
    v = StateField(0.0, doc="Current speed.")
    gap = EffectField(MIN, doc="Distance to the nearest visible car ahead.")

    def query(self, ctx):
        """Accumulate the distance to every visible car ahead (min wins)."""
        for other in ctx.visible(self):
            if other.x > self.x:
                self.gap = other.x - self.x

    def update(self, ctx):
        """Mirror the script's update rules, evaluated on pre-update state."""
        x, v, gap = self.x, self.v, self.gap
        position = x + v
        self.x = position - RING_LENGTH if position >= RING_LENGTH else position
        self.v = (
            min(gap / 2, RING_MAX_SPEED)
            if gap < RING_VISIBILITY
            else min(v + 1, RING_MAX_SPEED)
        )


def build_ring_world(num_cars: int = 50, seed: int = 0) -> World:
    """A world of :class:`RingCar` agents placed exactly like the script's.

    Uses the same rng construction as
    :func:`repro.brasil.runner.build_script_world`, so
    ``Simulation.from_agents(build_ring_world(n, seed))`` and
    ``Simulation.from_script(TRAFFIC_SCRIPT, num_agents=n, seed=seed,
    bounds=((0.0, RING_LENGTH),))`` start from identical positions.
    """
    world = World(bounds=BBox(((0.0, RING_LENGTH),)), seed=seed)
    rng = np.random.default_rng([int(seed) & 0x7FFFFFFF, int(num_cars)])
    for _ in range(int(num_cars)):
        world.add_agent(RingCar(x=float(rng.uniform(0.0, RING_LENGTH))))
    return world
