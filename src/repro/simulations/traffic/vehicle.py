"""The vehicle agent: MITSIM-style car following and lane changing.

Each vehicle is an agent on a multi-lane circular highway segment (vehicles
that reach the end re-enter at the start, which keeps the spatial
distribution near-uniform — the paper's constant upstream inflow has the same
effect).  The query phase inspects the lead and rear vehicles and the average
speeds of the current, left and right lanes within the lookahead distance;
the update phase applies the acceleration model and the probabilistic
lane-selection model.

All effect assignments are local (a driver only writes her own effects), so
BRACE runs this model with a single reduce pass, exactly as the paper notes
for its traffic workload.
"""

from __future__ import annotations

import math

from repro.core.agent import Agent
from repro.core.combinators import MIN, SUM
from repro.core.fields import EffectField, StateField
from repro.simulations.traffic.model import TrafficParameters

_INFINITY = float("inf")


def make_vehicle_class(parameters: TrafficParameters, name: str = "Vehicle") -> type:
    """Build a Vehicle agent class bound to ``parameters``.

    The lookahead distance becomes the visibility bound of the spatial field,
    so the class must be rebuilt when the lookahead changes (it is a class
    level property, exactly like BRASIL's ``#range`` annotation).
    """

    class _Vehicle(Agent):
        """One driver/vehicle on the highway segment."""

        params = parameters

        # Position along the segment.  Reachability is unbounded because the
        # segment is circular (wrap-around would violate a per-tick bound).
        x = StateField(0.0, spatial=True, visibility=parameters.lookahead)
        #: Lane index, 0 (left-most) .. num_lanes - 1 (right-most).
        lane = StateField(0)
        speed = StateField(0.0)
        #: Per-driver desired speed (sampled at construction).
        desired_speed = StateField(parameters.desired_speed)
        #: Cumulative number of lane changes (used by the statistics collector).
        lane_changes = StateField(0)

        # Current-lane observations.
        lead_gap = EffectField(MIN)
        lead_speed = EffectField(SUM)
        lane_speed_sum = EffectField(SUM)
        lane_speed_count = EffectField(SUM)
        # Left-lane observations.
        left_lead_gap = EffectField(MIN)
        left_rear_gap = EffectField(MIN)
        left_speed_sum = EffectField(SUM)
        left_speed_count = EffectField(SUM)
        # Right-lane observations.
        right_lead_gap = EffectField(MIN)
        right_rear_gap = EffectField(MIN)
        right_speed_sum = EffectField(SUM)
        right_speed_count = EffectField(SUM)

        # ------------------------------------------------------------------
        # Query phase
        # ------------------------------------------------------------------
        def query(self, ctx) -> None:
            p = self.params
            my_x = self.x
            my_lane = self.lane

            lead_gap = _INFINITY
            lead_speed = 0.0
            lane_speed_sum = 0.0
            lane_speed_count = 0
            left_lead_gap = _INFINITY
            left_rear_gap = _INFINITY
            left_speed_sum = 0.0
            left_speed_count = 0
            right_lead_gap = _INFINITY
            right_rear_gap = _INFINITY
            right_speed_sum = 0.0
            right_speed_count = 0

            for other in ctx.neighbors(self, p.lookahead):
                gap = other.x - my_x
                other_lane = other.lane
                if other_lane == my_lane:
                    if gap > 0:
                        lane_speed_sum += other.speed
                        lane_speed_count += 1
                        if gap < lead_gap:
                            lead_gap = gap
                            lead_speed = other.speed
                elif other_lane == my_lane - 1:
                    if gap > 0:
                        left_speed_sum += other.speed
                        left_speed_count += 1
                        if gap < left_lead_gap:
                            left_lead_gap = gap
                    elif -gap < left_rear_gap:
                        left_rear_gap = -gap
                elif other_lane == my_lane + 1:
                    if gap > 0:
                        right_speed_sum += other.speed
                        right_speed_count += 1
                        if gap < right_lead_gap:
                            right_lead_gap = gap
                    elif -gap < right_rear_gap:
                        right_rear_gap = -gap

            self.lead_gap = lead_gap
            self.lead_speed = lead_speed
            self.lane_speed_sum = lane_speed_sum
            self.lane_speed_count = lane_speed_count
            self.left_lead_gap = left_lead_gap
            self.left_rear_gap = left_rear_gap
            self.left_speed_sum = left_speed_sum
            self.left_speed_count = left_speed_count
            self.right_lead_gap = right_lead_gap
            self.right_rear_gap = right_rear_gap
            self.right_speed_sum = right_speed_sum
            self.right_speed_count = right_speed_count

        # ------------------------------------------------------------------
        # Update phase
        # ------------------------------------------------------------------
        def update(self, ctx) -> None:
            p = self.params
            rng = ctx.rng(self)

            acceleration = self._acceleration_model()
            new_speed = max(0.0, self.speed + acceleration * p.time_step)
            new_speed = min(new_speed, p.max_speed())

            new_lane = self._lane_selection_model(rng)
            if new_lane != self.lane:
                self.lane_changes = self.lane_changes + 1
            self.lane = new_lane
            self.speed = new_speed

            new_x = self.x + new_speed * p.time_step
            if new_x >= p.segment_length:
                new_x -= p.segment_length
            self.x = new_x

        # -- car following / free flow ---------------------------------------
        def _acceleration_model(self) -> float:
            p = self.params
            lead_gap = self.lead_gap
            if math.isinf(lead_gap):
                # Free-flow model: drive towards the desired speed.
                acceleration = p.following_gain * (self.desired_speed - self.speed)
            else:
                desired_gap = p.min_gap + self.speed * p.desired_headway
                speed_term = p.following_gain * (self.lead_speed - self.speed)
                gap_term = 0.5 * (lead_gap - desired_gap) / max(desired_gap, 1.0)
                acceleration = speed_term + gap_term
                if lead_gap < p.min_gap:
                    acceleration = -p.max_deceleration
            return max(-p.max_deceleration, min(p.max_acceleration, acceleration))

        # -- lane selection ----------------------------------------------------
        def _lane_utility(self, average_speed: float, lead_gap: float, lane_index: int) -> float:
            p = self.params
            gap = min(lead_gap, p.lookahead)
            utility = (
                p.utility_speed_weight * average_speed + p.utility_gap_weight * gap
            )
            if lane_index == p.num_lanes - 1:
                utility -= p.rightmost_lane_penalty
            return utility

        def _lane_selection_model(self, rng) -> int:
            p = self.params
            lane = self.lane

            lane_count = self.lane_speed_count
            current_average = (
                self.lane_speed_sum / lane_count if lane_count > 0 else self.desired_speed
            )
            current_utility = (
                self._lane_utility(current_average, self.lead_gap, lane) + p.keep_lane_bonus
            )

            candidates: list[tuple[int, float]] = []
            if lane > 0:
                left_count = self.left_speed_count
                left_average = (
                    self.left_speed_sum / left_count if left_count > 0 else self.desired_speed
                )
                candidates.append((lane - 1, self._lane_utility(left_average, self.left_lead_gap, lane - 1)))
            if lane < p.num_lanes - 1:
                right_count = self.right_speed_count
                right_average = (
                    self.right_speed_sum / right_count if right_count > 0 else self.desired_speed
                )
                candidates.append((lane + 1, self._lane_utility(right_average, self.right_lead_gap, lane + 1)))

            best_lane, best_utility = lane, current_utility
            for candidate_lane, utility in candidates:
                if utility > best_utility:
                    best_lane, best_utility = candidate_lane, utility
            if best_lane == lane:
                return lane

            # Probabilistic decision: the more attractive the target lane, the
            # more likely the driver attempts the change.
            advantage = best_utility - current_utility
            probability = p.change_probability * (1.0 - math.exp(-p.utility_scale * advantage))
            if rng.random() >= probability:
                return lane

            # Gap acceptance in the target lane.
            if best_lane == lane - 1:
                lead_gap, rear_gap = self.left_lead_gap, self.left_rear_gap
            else:
                lead_gap, rear_gap = self.right_lead_gap, self.right_rear_gap
            if lead_gap < p.lead_gap_acceptance or rear_gap < p.rear_gap_acceptance:
                return lane
            return best_lane

    _Vehicle.__name__ = name
    _Vehicle.__qualname__ = name
    return _Vehicle


#: Vehicle class built with the default parameters.
Vehicle = make_vehicle_class(TrafficParameters())
