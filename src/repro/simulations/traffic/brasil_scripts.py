"""BRASIL source for the traffic simulation.

A ring-road car-following model in the declarative subset of BRASIL: every
car looks for the nearest visible car ahead (a ``min``-combinator effect),
then either closes the gap at half speed or accelerates toward the speed
cap.  All effect assignments are local, so BRACE runs the script with a
single reduce pass per tick, and the bounded ``#visibility`` lets the
optimizer answer each ``foreach`` with a grid range query.

BRASIL has no script parameters, so :func:`traffic_script` generates the
source with the ring length (and therefore the problem size) baked in —
this is how the Figure 6 harness scales the road with the worker count.
"""

from __future__ import annotations

#: Default ring length used by :data:`TRAFFIC_SCRIPT`.
TRAFFIC_RING_LENGTH = 1000.0


def traffic_script(
    length: float = TRAFFIC_RING_LENGTH,
    visibility: float = 50.0,
    max_speed: float = 15.0,
) -> str:
    """BRASIL source for a ring road of ``length`` units.

    ``visibility`` bounds how far a car can see (and the gap it reacts to);
    ``max_speed`` caps both acceleration and the declared per-tick
    reachability.
    """
    return f"""
class Car {{
    // Position along the ring road, wrapped at the segment end.
    public state float x : (x + v >= {length:g}) ? (x + v - {length:g}) : (x + v);
        #visibility[{visibility:g}]; #reachability[{max_speed:g}];
    // Car following: close a visible gap at half speed, else accelerate.
    public state float v : (gap < {visibility:g}) ? min(gap / 2, {max_speed:g}) : min(v + 1, {max_speed:g});

    // Distance to the nearest visible car ahead (identity: +infinity).
    private effect float gap : min;

    public void run() {{
        foreach (Car c : Extent<Car>) {{
            if (c.x > x) {{
                gap <- c.x - x;
            }}
        }}
    }}
}}
"""


#: The default-size traffic script (1000-unit ring).
TRAFFIC_SCRIPT = traffic_script()
