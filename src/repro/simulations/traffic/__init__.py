"""MITSIM-style traffic simulation (lane changing + car following)."""

from repro.simulations.traffic.model import TrafficParameters
from repro.simulations.traffic.ring import (
    RING_LENGTH,
    RING_MAX_SPEED,
    RING_VISIBILITY,
    RingCar,
    build_ring_world,
)
from repro.simulations.traffic.vehicle import Vehicle, make_vehicle_class
from repro.simulations.traffic.workload import build_traffic_world
from repro.simulations.traffic.statistics import (
    LaneStatistics,
    TrafficStatisticsCollector,
    compare_lane_statistics,
)

__all__ = [
    "TrafficParameters",
    "RingCar",
    "build_ring_world",
    "RING_LENGTH",
    "RING_VISIBILITY",
    "RING_MAX_SPEED",
    "Vehicle",
    "make_vehicle_class",
    "build_traffic_world",
    "LaneStatistics",
    "TrafficStatisticsCollector",
    "compare_lane_statistics",
]
