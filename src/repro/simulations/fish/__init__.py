"""Couzin-style fish school simulation (information transfer in animal groups)."""

from repro.simulations.fish.model import CouzinParameters
from repro.simulations.fish.fish import Fish, make_fish_class
from repro.simulations.fish.workload import build_fish_world
from repro.simulations.fish.statistics import school_polarization, school_spread, group_centroid

__all__ = [
    "CouzinParameters",
    "Fish",
    "make_fish_class",
    "build_fish_world",
    "school_polarization",
    "school_spread",
    "group_centroid",
]
