"""School-level statistics for the fish simulation."""

from __future__ import annotations

import math
from typing import Iterable


def group_centroid(fish: Iterable) -> tuple[float, float]:
    """Mean position of the school."""
    xs, ys, count = 0.0, 0.0, 0
    for agent in fish:
        xs += agent.x
        ys += agent.y
        count += 1
    if count == 0:
        return (0.0, 0.0)
    return (xs / count, ys / count)


def school_polarization(fish: Iterable) -> float:
    """Alignment of the school: |mean heading vector| in [0, 1]."""
    dx, dy, count = 0.0, 0.0, 0
    for agent in fish:
        dx += agent.dx
        dy += agent.dy
        count += 1
    if count == 0:
        return 0.0
    return math.hypot(dx / count, dy / count)


def school_spread(fish: Iterable) -> float:
    """Root mean square distance of the fish from the school centroid."""
    agents = list(fish)
    centroid_x, centroid_y = group_centroid(agents)
    if not agents:
        return 0.0
    total = 0.0
    for agent in agents:
        total += (agent.x - centroid_x) ** 2 + (agent.y - centroid_y) ** 2
    return math.sqrt(total / len(agents))
