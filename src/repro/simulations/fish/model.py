"""Parameters of the Couzin information-transfer model.

The fish school model follows Couzin et al. (Nature 2005), the model the
paper implements: each fish reacts to neighbours in two nested zones —
*avoidance* within distance ``alpha`` (highest priority) and
*attraction/alignment* within distance ``rho`` — while *informed individuals*
additionally balance their social vector against a preferred direction with
weight ``omega``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class CouzinParameters:
    """Tunable constants of the fish school simulation."""

    #: Avoidance zone radius (fish turn away from anything closer than this).
    alpha: float = 1.0
    #: Attraction/alignment zone radius (the visibility bound of the agent).
    rho: float = 6.0
    #: Swimming speed (distance per tick).
    speed: float = 0.75
    #: Maximum turning angle per tick (radians).
    max_turn: float = 0.6
    #: Standard deviation of the rotational noise (radians).
    noise_sigma: float = 0.05
    #: Fraction of informed individuals (split evenly between the two groups).
    informed_fraction: float = 0.1
    #: Weight an informed individual gives its preferred direction.
    omega: float = 0.6
    #: Preferred directions (radians) of the two informed groups.
    preferred_directions: tuple[float, float] = (0.0, math.pi)
    #: Side length of the square region the school is seeded in.
    seed_region: float = 60.0
    #: Size of the (bounded) ocean used for spatial partitioning.  The model
    #: itself is unbounded; this box only has to be large enough that fish do
    #: not reach its edge during an experiment.
    ocean_size: float = 2000.0
    #: Integration time step.
    time_step: float = 1.0

    def reachability(self) -> float:
        """Upper bound on per-tick displacement (speed × dt)."""
        return self.speed * self.time_step
