"""World construction for the fish school simulation."""

from __future__ import annotations

import numpy as np

from repro.core.world import World
from repro.simulations.fish.model import CouzinParameters
from repro.simulations.fish.fish import make_fish_class
from repro.spatial.bbox import BBox


def build_fish_world(
    num_fish: int,
    parameters: CouzinParameters | None = None,
    seed: int = 0,
    fish_class: type | None = None,
) -> World:
    """Build a world with ``num_fish`` fish seeded in a compact square.

    Informed individuals are split evenly between the two preferred
    directions; with the default parameters they eventually pull the school
    apart into two groups, the load-imbalance scenario of Figures 7 and 8.
    """
    parameters = parameters or CouzinParameters()
    fish_class = fish_class or make_fish_class(parameters)
    half = parameters.ocean_size / 2.0
    world = World(bounds=BBox(((-half, half), (-half, half))), seed=seed)
    rng = np.random.default_rng(seed)

    num_informed = int(round(num_fish * parameters.informed_fraction))
    group_one = num_informed // 2
    group_two = num_informed - group_one

    for index in range(num_fish):
        if index < group_one:
            informed = 1
        elif index < group_one + group_two:
            informed = 2
        else:
            informed = 0
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        world.add_agent(
            fish_class(
                x=float(rng.uniform(-parameters.seed_region / 2, parameters.seed_region / 2)),
                y=float(rng.uniform(-parameters.seed_region / 2, parameters.seed_region / 2)),
                dx=float(np.cos(angle)),
                dy=float(np.sin(angle)),
                informed=informed,
            )
        )
    return world
