"""The fish agent implementing the Couzin information-transfer model.

Behaviour per tick (Appendix C of the paper):

* **avoidance** has priority: if any neighbour is closer than ``alpha`` the
  fish turns away from the sum of the unit vectors pointing at those
  neighbours;
* otherwise the fish is **attracted to and aligns with** neighbours within
  ``rho``: the desired direction is the sum of unit vectors towards them and
  of their heading vectors, normalised;
* **informed individuals** blend the social vector with their preferred
  direction using the weight ``omega``;
* the turn towards the desired direction is limited to ``max_turn`` radians
  and perturbed by Gaussian rotational noise.

Every effect assignment is local, so this model runs with a single reduce
pass in BRACE (as in the paper's evaluation).
"""

from __future__ import annotations

import math

from repro.core.agent import Agent
from repro.core.combinators import SUM
from repro.core.fields import EffectField, StateField
from repro.simulations.fish.model import CouzinParameters


def make_fish_class(parameters: CouzinParameters, name: str = "Fish") -> type:
    """Build a Fish agent class bound to ``parameters``."""

    class _Fish(Agent):
        """One fish of the school."""

        params = parameters

        x = StateField(
            0.0, spatial=True, visibility=parameters.rho, reachability=parameters.reachability()
        )
        y = StateField(
            0.0, spatial=True, visibility=parameters.rho, reachability=parameters.reachability()
        )
        #: Unit heading vector.
        dx = StateField(1.0)
        dy = StateField(0.0)
        #: 0 = uninformed, 1 = informed group one, 2 = informed group two.
        informed = StateField(0)

        # Social forces accumulated during the query phase.
        repulsion_x = EffectField(SUM)
        repulsion_y = EffectField(SUM)
        repulsion_count = EffectField(SUM)
        attraction_x = EffectField(SUM)
        attraction_y = EffectField(SUM)
        attraction_count = EffectField(SUM)

        # ------------------------------------------------------------------
        # Query phase
        # ------------------------------------------------------------------
        def query(self, ctx) -> None:
            p = self.params
            my_x, my_y = self.x, self.y
            alpha_sq = p.alpha * p.alpha

            repulsion_x = repulsion_y = 0.0
            repulsion_count = 0
            attraction_x = attraction_y = 0.0
            attraction_count = 0

            for other in ctx.neighbors(self, p.rho):
                offset_x = other.x - my_x
                offset_y = other.y - my_y
                distance_sq = offset_x * offset_x + offset_y * offset_y
                if distance_sq == 0.0:
                    continue
                distance = math.sqrt(distance_sq)
                unit_x = offset_x / distance
                unit_y = offset_y / distance
                if distance_sq < alpha_sq:
                    repulsion_x -= unit_x
                    repulsion_y -= unit_y
                    repulsion_count += 1
                else:
                    attraction_x += unit_x + other.dx
                    attraction_y += unit_y + other.dy
                    attraction_count += 1

            self.repulsion_x = repulsion_x
            self.repulsion_y = repulsion_y
            self.repulsion_count = repulsion_count
            self.attraction_x = attraction_x
            self.attraction_y = attraction_y
            self.attraction_count = attraction_count

        # ------------------------------------------------------------------
        # Update phase
        # ------------------------------------------------------------------
        def update(self, ctx) -> None:
            p = self.params
            rng = ctx.rng(self)

            if self.repulsion_count > 0:
                desired_x, desired_y = self.repulsion_x, self.repulsion_y
            elif self.attraction_count > 0:
                desired_x, desired_y = self.attraction_x, self.attraction_y
            else:
                desired_x, desired_y = self.dx, self.dy

            norm = math.hypot(desired_x, desired_y)
            if norm > 0:
                desired_x /= norm
                desired_y /= norm
            else:
                desired_x, desired_y = self.dx, self.dy

            if self.informed in (1, 2):
                preferred = p.preferred_directions[int(self.informed) - 1]
                preferred_x, preferred_y = math.cos(preferred), math.sin(preferred)
                desired_x = (1.0 - p.omega) * desired_x + p.omega * preferred_x
                desired_y = (1.0 - p.omega) * desired_y + p.omega * preferred_y
                norm = math.hypot(desired_x, desired_y)
                if norm > 0:
                    desired_x /= norm
                    desired_y /= norm

            # Limited turn towards the desired direction plus rotational noise.
            current_angle = math.atan2(self.dy, self.dx)
            desired_angle = math.atan2(desired_y, desired_x)
            turn = math.remainder(desired_angle - current_angle, 2.0 * math.pi)
            turn = max(-p.max_turn, min(p.max_turn, turn))
            turn += float(rng.normal(0.0, p.noise_sigma))
            new_angle = current_angle + turn

            new_dx, new_dy = math.cos(new_angle), math.sin(new_angle)
            self.dx = new_dx
            self.dy = new_dy
            self.x = self.x + new_dx * p.speed * p.time_step
            self.y = self.y + new_dy * p.speed * p.time_step

    _Fish.__name__ = name
    _Fish.__qualname__ = name
    return _Fish


#: Fish class built with the default parameters.
Fish = make_fish_class(CouzinParameters())
