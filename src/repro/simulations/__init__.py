"""The paper's simulation workloads.

* :mod:`repro.simulations.traffic` — the MITSIM-style highway simulation
  (lane changing + car following) used for Table 2 and Figures 3 and 6;
* :mod:`repro.simulations.fish` — the Couzin information-transfer fish
  school used for Figures 4, 7 and 8;
* :mod:`repro.simulations.predator` — the artificial-society style predator
  simulation with non-local effect assignments used for Figure 5.
"""

from repro.simulations.traffic import TrafficParameters, Vehicle, build_traffic_world
from repro.simulations.fish import CouzinParameters, Fish, build_fish_world
from repro.simulations.predator import (
    PredatorParameters,
    NonLocalPredator,
    LocalPredator,
    build_predator_world,
)

__all__ = [
    "TrafficParameters",
    "Vehicle",
    "build_traffic_world",
    "CouzinParameters",
    "Fish",
    "build_fish_world",
    "PredatorParameters",
    "NonLocalPredator",
    "LocalPredator",
    "build_predator_world",
]
