"""Effect combinators.

Every effect field has an associated *decomposable, order-independent*
combinator.  Because the combinators are commutative and associative, effect
assignments made by different agents — possibly on different workers against
different replicas of the same agent — can be aggregated in any order and
partially aggregated results can be merged later (the second reduce pass of
the map-reduce-reduce model).

A combinator is described by:

* ``identity`` — the value an effect field holds before any assignment;
* ``combine(accumulated, value)`` — folds one more assignment in;
* ``merge(a, b)`` — merges two partial aggregates (defaults to ``combine``);
* ``finalize(accumulated)`` — converts the internal accumulator into the
  value visible to the update phase (identity for most combinators; the MEAN
  combinator keeps a ``(sum, count)`` pair internally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import CombinatorError


@dataclass(frozen=True)
class Combinator:
    """A decomposable, order-independent aggregate for effect fields."""

    name: str
    identity_factory: Callable[[], Any]
    combine_fn: Callable[[Any, Any], Any]
    merge_fn: Callable[[Any, Any], Any] | None = None
    finalize_fn: Callable[[Any], Any] | None = None

    def identity(self) -> Any:
        """Return a fresh identity accumulator."""
        return self.identity_factory()

    def combine(self, accumulated: Any, value: Any) -> Any:
        """Fold a single effect assignment into the accumulator."""
        return self.combine_fn(accumulated, value)

    def merge(self, left: Any, right: Any) -> Any:
        """Merge two partial accumulators (used by the second reduce pass)."""
        if self.merge_fn is not None:
            return self.merge_fn(left, right)
        return self.combine_fn(left, right)

    def finalize(self, accumulated: Any) -> Any:
        """Convert the accumulator into the value read during the update phase."""
        if self.finalize_fn is not None:
            return self.finalize_fn(accumulated)
        return accumulated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Combinator({self.name})"


def _mean_combine(acc, value):
    total, count = acc
    return (total + value, count + 1)


def _mean_merge(left, right):
    return (left[0] + right[0], left[1] + right[1])


def _mean_finalize(acc):
    total, count = acc
    if count == 0:
        return 0.0
    return total / count


def _collect_finalize(acc):
    # Sort for order-independence: the same multiset of assignments yields the
    # same tuple regardless of assignment order or distribution.
    return tuple(sorted(acc, key=repr))


SUM = Combinator("sum", lambda: 0.0, lambda acc, v: acc + v)
COUNT = Combinator("count", lambda: 0, lambda acc, v: acc + 1, merge_fn=lambda a, b: a + b)
MIN = Combinator("min", lambda: float("inf"), min)
MAX = Combinator("max", lambda: float("-inf"), max)
PRODUCT = Combinator("product", lambda: 1.0, lambda acc, v: acc * v)
ANY = Combinator("any", lambda: False, lambda acc, v: bool(acc or v))
ALL = Combinator("all", lambda: True, lambda acc, v: bool(acc and v))
MEAN = Combinator(
    "mean",
    lambda: (0.0, 0),
    _mean_combine,
    merge_fn=_mean_merge,
    finalize_fn=_mean_finalize,
)
COLLECT = Combinator(
    "collect",
    tuple,
    lambda acc, v: acc + (v,),
    merge_fn=lambda a, b: a + b,
    finalize_fn=_collect_finalize,
)

_REGISTRY: dict[str, Combinator] = {
    combinator.name: combinator
    for combinator in (SUM, COUNT, MIN, MAX, PRODUCT, ANY, ALL, MEAN, COLLECT)
}


def register_combinator(combinator: Combinator) -> None:
    """Register a custom combinator so BRASIL scripts can refer to it by name."""
    if combinator.name in _REGISTRY:
        raise CombinatorError(f"combinator {combinator.name!r} is already registered")
    _REGISTRY[combinator.name] = combinator


def get_combinator(name_or_combinator: str | Combinator) -> Combinator:
    """Resolve a combinator by name, passing through Combinator instances."""
    if isinstance(name_or_combinator, Combinator):
        return name_or_combinator
    try:
        return _REGISTRY[name_or_combinator]
    except KeyError:
        raise CombinatorError(
            f"unknown combinator {name_or_combinator!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_combinators() -> list[str]:
    """Names of every registered combinator."""
    return sorted(_REGISTRY)
