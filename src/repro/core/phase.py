"""Tick phase tracking and enforcement of the state-effect pattern.

The engines wrap the query and update phases in the :func:`phase` context
manager; the field descriptors consult :func:`current_phase` to enforce the
read/write rules of the state-effect pattern:

=============  ===========================  ===========================
Phase          state fields                 effect fields
=============  ===========================  ===========================
IDLE (setup)   read/write                   read/write
QUERY          read-only                    write-only (aggregated)
UPDATE         read, write own              read-only
=============  ===========================  ===========================

Enforcement can be switched off globally (``set_enforcement(False)``) for
benchmark runs where the per-access check is measurable overhead; tests and
examples keep it on.
"""

from __future__ import annotations

import enum
import threading
from contextlib import contextmanager


class Phase(enum.Enum):
    """The three access-control regimes of the state-effect pattern."""

    IDLE = "idle"
    QUERY = "query"
    UPDATE = "update"


class _PhaseState(threading.local):
    """Per-thread current phase.

    Thread-local (not global) so the thread executor can run several
    workers' query or update phases concurrently: each pool thread enters
    and leaves its own phase without disturbing the others.  New threads
    start IDLE; the phase is entered inside the task they run.
    """

    def __init__(self):
        self.phase = Phase.IDLE


_state = _PhaseState()
_enforcement: bool = True


def current_phase() -> Phase:
    """Return the phase the calling thread is currently executing."""
    return _state.phase


def enforcement_enabled() -> bool:
    """Return True when phase rules are being enforced on field access."""
    return _enforcement


def set_enforcement(enabled: bool) -> None:
    """Enable or disable phase-rule enforcement globally."""
    global _enforcement
    _enforcement = bool(enabled)


@contextmanager
def phase(new_phase: Phase):
    """Execute a block under the given phase, restoring the previous one after."""
    previous = _state.phase
    _state.phase = new_phase
    try:
        yield
    finally:
        _state.phase = previous
