"""Deterministic, cross-process ordering of agent ids.

Several layers of the runtime must enumerate agents in *exactly* the same
order regardless of where the enumeration happens — the driver, an in-place
worker, or a resident shard living in a pool process:

* a worker's owned/replica iteration order fixes how the spatial index is
  built and therefore which work every query phase performs;
* the routing order of non-local effect partials fixes the order in which
  floating-point accumulators are merged, which must be bit-identical on
  every backend.

The previous implementation sorted by ``repr(agent_id)``, which is slow
(every comparison formats a string) and fragile (two ids can share a repr,
and numeric ids sort lexicographically: ``10 < 2``).  :func:`agent_sort_key`
provides a proper total order: real-valued ids sort numerically, everything
else sorts by its string form, and the two groups never interleave.
"""

from __future__ import annotations

from typing import Any


def agent_sort_key(agent_id: Any) -> tuple:
    """A total, deterministic sort key for agent ids.

    Numeric ids (``int``/``float``, excluding ``bool`` and NaN) compare
    numerically; every other id compares by ``str``.  The leading group tag
    keeps the two families apart so mixed-type id sets still sort without
    ``TypeError``, identically in every interpreter and process.
    """
    if (
        isinstance(agent_id, (int, float))
        and not isinstance(agent_id, bool)
        and agent_id == agent_id  # NaN ids fall through to the string group
    ):
        return (0, agent_id, "")
    return (1, 0.0, str(agent_id))


def sorted_agent_ids(agent_ids) -> list:
    """``agent_ids`` sorted by :func:`agent_sort_key`."""
    return sorted(agent_ids, key=agent_sort_key)
