"""Core agent model: the state-effect pattern and the tick engine.

This package implements the programming model that the whole reproduction is
built on (Section 2.1 of the paper):

* agents declare **state fields** (public, read-only during the query phase,
  updated only at tick boundaries) and **effect fields** (write-only during
  the query phase, aggregated with a commutative combinator);
* a tick is split into a **query phase** (agents read neighbours and assign
  effects) and an **update phase** (agents read their own state and
  aggregated effects and write their new state);
* spatial state fields carry **visibility** and **reachability** bounds — the
  neighborhood property that makes spatial partitioning effective.

:class:`repro.core.engine.SequentialEngine` is the single-node reference
implementation; the BRACE runtime must produce identical agent states.
"""

from repro.core.agent import Agent
from repro.core.combinators import (
    ALL,
    ANY,
    COLLECT,
    COUNT,
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    SUM,
    Combinator,
    get_combinator,
)
from repro.core.context import QueryContext, UpdateContext
from repro.core.engine import SequentialEngine, TickStatistics
from repro.core.fields import EffectField, StateField
from repro.core.phase import Phase, current_phase, phase
from repro.core.world import World

__all__ = [
    "Agent",
    "StateField",
    "EffectField",
    "Combinator",
    "get_combinator",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "MEAN",
    "PRODUCT",
    "ANY",
    "ALL",
    "COLLECT",
    "QueryContext",
    "UpdateContext",
    "SequentialEngine",
    "TickStatistics",
    "Phase",
    "phase",
    "current_phase",
    "World",
]
