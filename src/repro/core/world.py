"""The simulation world: the collection of agents plus global configuration."""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.agent import Agent
from repro.core.errors import WorldError
from repro.spatial.bbox import BBox


class World:
    """A container of agents with deterministic id allocation.

    Parameters
    ----------
    bounds:
        Optional :class:`BBox` describing the simulated space.  The BRACE
        runtime requires bounds to build its spatial partitioning; the
        sequential engine does not.
    seed:
        Seed for all randomness derived from this world.
    """

    def __init__(self, bounds: BBox | None = None, seed: int = 0):
        self.bounds = bounds
        self.seed = int(seed)
        self.tick = 0
        self._agents: dict[Any, Agent] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Agent management
    # ------------------------------------------------------------------
    def add_agent(self, agent: Agent) -> Agent:
        """Add ``agent`` to the world, allocating an id when it has none."""
        if agent.agent_id is None:
            agent.agent_id = self._allocate_id()
        if agent.agent_id in self._agents:
            raise WorldError(f"duplicate agent id {agent.agent_id}")
        self._agents[agent.agent_id] = agent
        return agent

    def add_agents(self, agents: Iterable[Agent]) -> list[Agent]:
        """Add several agents, returning them."""
        return [self.add_agent(agent) for agent in agents]

    def remove_agent(self, agent_id: Any) -> Agent:
        """Remove and return the agent with ``agent_id``."""
        try:
            return self._agents.pop(agent_id)
        except KeyError:
            raise WorldError(f"unknown agent id {agent_id}") from None

    def get_agent(self, agent_id: Any) -> Agent:
        """Return the agent with ``agent_id``."""
        try:
            return self._agents[agent_id]
        except KeyError:
            raise WorldError(f"unknown agent id {agent_id}") from None

    def has_agent(self, agent_id: Any) -> bool:
        """True when an agent with ``agent_id`` is present."""
        return agent_id in self._agents

    def agents(self) -> list[Agent]:
        """Every agent, sorted by id for deterministic iteration."""
        return [self._agents[agent_id] for agent_id in sorted(self._agents, key=repr)]

    def agent_count(self) -> int:
        """Number of agents currently in the world."""
        return len(self._agents)

    def agent_ids(self) -> list[Any]:
        """Every agent id, sorted."""
        return sorted(self._agents, key=repr)

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    @property
    def next_agent_id(self) -> int:
        """The id the next added agent would receive.

        Part of the world's reproducible identity: checkpoints and the
        persistent tick history record it so a reconstructed world allocates
        the same ids a continued run would have.
        """
        return self._next_id

    def allocate_ids(self, count: int) -> list[int]:
        """Reserve ``count`` fresh ids (used when applying spawn requests)."""
        return [self._allocate_id() for _ in range(count)]

    # ------------------------------------------------------------------
    # Population helpers
    # ------------------------------------------------------------------
    def populate(self, factory: Callable[[int], Agent], count: int) -> list[Agent]:
        """Create ``count`` agents with ``factory(index)`` and add them."""
        return self.add_agents(factory(index) for index in range(count))

    def clear(self) -> None:
        """Remove every agent (id allocation is not reset)."""
        self._agents.clear()

    # ------------------------------------------------------------------
    # Snapshots (used by checkpointing and by run-equivalence tests)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A deep snapshot of the world: tick, id counter and every agent."""
        return {
            "tick": self.tick,
            "next_id": self._next_id,
            "seed": self.seed,
            "agents": [agent.snapshot() for agent in self.agents()],
            "agent_classes": {type(agent).__name__: type(agent) for agent in self.agents()},
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Restore the world from a snapshot taken with :meth:`snapshot`."""
        self.tick = snapshot["tick"]
        self._next_id = snapshot["next_id"]
        self.seed = snapshot["seed"]
        classes = snapshot["agent_classes"]
        self._agents = {}
        for agent_snapshot in snapshot["agents"]:
            agent_class = classes[agent_snapshot["class"]]
            agent = agent_class.__new__(agent_class)
            Agent.__init__(agent, agent_id=agent_snapshot["agent_id"])
            agent.restore(agent_snapshot)
            self._agents[agent.agent_id] = agent

    def copy(self) -> "World":
        """An independent deep copy of the world (same seed and tick)."""
        duplicate = World(bounds=self.bounds, seed=self.seed)
        duplicate.tick = self.tick
        duplicate._next_id = self._next_id
        for agent in self.agents():
            duplicate._agents[agent.agent_id] = agent.clone()
        return duplicate

    def same_state_as(self, other: "World", tolerance: float = 0.0) -> bool:
        """True when both worlds hold the same agents with the same state."""
        if self.agent_ids() != other.agent_ids():
            return False
        return all(
            self.get_agent(agent_id).same_state_as(other.get_agent(agent_id), tolerance)
            for agent_id in self.agent_ids()
        )

    def __repr__(self) -> str:
        return f"<World tick={self.tick} agents={len(self._agents)}>"
