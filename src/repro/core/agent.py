"""The Agent base class.

Agents are the unit of data parallelism in BRACE.  A concrete agent class
declares :class:`~repro.core.fields.StateField` and
:class:`~repro.core.fields.EffectField` attributes and overrides
:meth:`Agent.query` (the query phase: read neighbours, assign effects) and
:meth:`Agent.update` (the update phase: read own state + aggregated effects,
write new state).

Agents are plain Python objects but expose explicit snapshot/merge hooks so
the BRACE runtime can replicate them to other partitions, merge partially
aggregated effects coming back from replicas, checkpoint workers and compare
runs for equivalence.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Iterator

from repro.core.errors import AgentDefinitionError
from repro.core.fields import EffectField, StateField
from repro.spatial.bbox import BBox


#: Value types that can be shared between an agent and its clone outright.
_ATOMIC_TYPES = frozenset(
    (float, int, bool, str, bytes, complex, type(None), frozenset)
)


def _copy_mapping(mapping: dict) -> dict:
    """Copy a field-value dict, deep-copying only what is actually mutable."""
    for value in mapping.values():
        if type(value) not in _ATOMIC_TYPES:
            return {
                name: value if type(value) in _ATOMIC_TYPES else copy.deepcopy(value)
                for name, value in mapping.items()
            }
    return dict(mapping)


class AgentMeta(type):
    """Collects field declarations (including inherited ones) in order."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)

        state_fields: dict[str, StateField] = {}
        effect_fields: dict[str, EffectField] = {}
        for base in reversed(cls.__mro__[1:]):
            state_fields.update(getattr(base, "_state_fields", {}))
            effect_fields.update(getattr(base, "_effect_fields", {}))
        for attr_name, attr_value in namespace.items():
            if isinstance(attr_value, StateField):
                if attr_name in effect_fields:
                    raise AgentDefinitionError(
                        f"{name}.{attr_name} redeclares an effect field as state"
                    )
                state_fields[attr_name] = attr_value
            elif isinstance(attr_value, EffectField):
                if attr_name in state_fields:
                    raise AgentDefinitionError(
                        f"{name}.{attr_name} redeclares a state field as effect"
                    )
                effect_fields[attr_name] = attr_value

        cls._state_fields = state_fields
        cls._effect_fields = effect_fields
        cls._spatial_fields = [
            field_name for field_name, field in state_fields.items() if field.spatial
        ]
        return cls


class Agent(metaclass=AgentMeta):
    """Base class for every simulated agent.

    Subclasses declare fields at class level and implement ``query`` and
    ``update``.  Instances may be constructed with keyword arguments naming
    any state field.
    """

    _state_fields: dict[str, StateField] = {}
    _effect_fields: dict[str, EffectField] = {}
    _spatial_fields: list[str] = []

    def __init__(self, agent_id: int | None = None, **field_values: Any):
        self.agent_id = agent_id
        self._updating = False
        self._state: dict[str, Any] = {}
        self._effects: dict[str, Any] = {}
        self._effects_touched: set[str] = set()
        for field_name, field in self._state_fields.items():
            self._state[field_name] = copy.copy(field.default)
        for field_name, field in self._effect_fields.items():
            self._effects[field_name] = field.combinator.identity()
        unknown = set(field_values) - set(self._state_fields)
        if unknown:
            raise AgentDefinitionError(
                f"unknown state field(s) {sorted(unknown)} for {type(self).__name__}"
            )
        for field_name, value in field_values.items():
            self._state[field_name] = value

    # ------------------------------------------------------------------
    # Behaviour hooks (overridden by concrete models)
    # ------------------------------------------------------------------
    def query(self, ctx) -> None:
        """Query phase: read neighbouring agents and assign effects.

        ``ctx`` is a :class:`repro.core.context.QueryContext`.
        """

    def update(self, ctx) -> None:
        """Update phase: read own state and aggregated effects, write new state.

        ``ctx`` is a :class:`repro.core.context.UpdateContext`.
        """

    # ------------------------------------------------------------------
    # Spatial accessors
    # ------------------------------------------------------------------
    @classmethod
    def spatial_field_names(cls) -> list[str]:
        """Names of the spatial state fields, in declaration order."""
        return list(cls._spatial_fields)

    @classmethod
    def spatial_dim(cls) -> int:
        """Number of spatial dimensions."""
        return len(cls._spatial_fields)

    @classmethod
    def visibility_radii(cls) -> tuple[float | None, ...]:
        """Per-dimension visibility bounds (None = unbounded)."""
        return tuple(cls._state_fields[name].visibility for name in cls._spatial_fields)

    @classmethod
    def reachability_radii(cls) -> tuple[float | None, ...]:
        """Per-dimension reachability bounds (None = unbounded)."""
        return tuple(cls._state_fields[name].reachability for name in cls._spatial_fields)

    @classmethod
    def has_bounded_visibility(cls) -> bool:
        """True when every spatial dimension has a finite visibility bound."""
        radii = cls.visibility_radii()
        return bool(radii) and all(radius is not None for radius in radii)

    def position(self) -> tuple[float, ...]:
        """The agent's spatial location (tuple of its spatial state fields)."""
        return tuple(self._state[name] for name in self._spatial_fields)

    def visible_region(self) -> BBox | None:
        """The box the agent may read from / assign effects into, or None if unbounded."""
        if not self.has_bounded_visibility():
            return None
        radii = [radius for radius in self.visibility_radii()]
        return BBox.around(self.position(), radii)

    def reachable_region(self) -> BBox | None:
        """The box the agent may move into during the next update, or None if unbounded."""
        radii = self.reachability_radii()
        if not radii or any(radius is None for radius in radii):
            return None
        return BBox.around(self.position(), list(radii))

    # ------------------------------------------------------------------
    # Raw state / effect access (bypasses phase enforcement)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """A copy of the raw state values."""
        return dict(self._state)

    def set_state_dict(self, values: dict[str, Any]) -> None:
        """Overwrite raw state values (no phase checks); unknown keys are rejected."""
        unknown = set(values) - set(self._state_fields)
        if unknown:
            raise AgentDefinitionError(f"unknown state field(s) {sorted(unknown)}")
        self._state.update(values)

    def effect_partials(self) -> dict[str, Any]:
        """A copy of the raw (not finalized) effect accumulators."""
        return dict(self._effects)

    def touched_effect_partials(self) -> dict[str, Any]:
        """Raw accumulators of only the effect fields assigned this tick."""
        return {name: self._effects[name] for name in self._effects_touched}

    def set_effect_partials(self, partials: dict[str, Any]) -> None:
        """Overwrite raw effect accumulators (no phase checks)."""
        unknown = set(partials) - set(self._effect_fields)
        if unknown:
            raise AgentDefinitionError(f"unknown effect field(s) {sorted(unknown)}")
        self._effects.update(partials)
        self._effects_touched.update(partials)

    def merge_effect_partials(self, partials: dict[str, Any]) -> None:
        """Merge partial accumulators from a replica using each field's combinator."""
        for field_name, partial in partials.items():
            field = self._effect_fields.get(field_name)
            if field is None:
                raise AgentDefinitionError(f"unknown effect field {field_name!r}")
            self._effects[field_name] = field.combinator.merge(
                self._effects[field_name], partial
            )
            self._effects_touched.add(field_name)

    def reset_effects(self) -> None:
        """Reset every effect accumulator to its combinator identity."""
        for field_name, field in self._effect_fields.items():
            self._effects[field_name] = field.combinator.identity()
        self._effects_touched.clear()

    def effect_value(self, field_name: str) -> Any:
        """Finalized value of one effect field (no phase checks)."""
        field = self._effect_fields[field_name]
        return field.combinator.finalize(self._effects[field_name])

    # ------------------------------------------------------------------
    # Replication / checkpointing helpers
    # ------------------------------------------------------------------
    def clone(self) -> "Agent":
        """A deep copy sharing nothing mutable with the original.

        Used for replication, so it is on the per-replica hot path:
        immutable values (the overwhelming majority — floats, ints, bools,
        strings) are shared rather than walked through ``copy.deepcopy``,
        which is an order of magnitude cheaper and observably identical.
        """
        duplicate = type(self).__new__(type(self))
        duplicate.agent_id = self.agent_id
        duplicate._updating = False
        duplicate._state = _copy_mapping(self._state)
        duplicate._effects = _copy_mapping(self._effects)
        duplicate._effects_touched = set(self._effects_touched)
        return duplicate

    def snapshot(self) -> dict[str, Any]:
        """A serializable snapshot (class name, id, state, effects)."""
        return {
            "class": type(self).__name__,
            "agent_id": self.agent_id,
            "state": copy.deepcopy(self._state),
            "effects": copy.deepcopy(self._effects),
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Restore state and effects from a snapshot taken with :meth:`snapshot`."""
        self.agent_id = snapshot["agent_id"]
        self._state = copy.deepcopy(snapshot["state"])
        self._effects = copy.deepcopy(snapshot["effects"])
        self._effects_touched = set()

    def same_state_as(self, other: "Agent", tolerance: float = 0.0) -> bool:
        """True when ``other`` has the same id and (numerically close) state.

        ``tolerance`` is used both as a relative and an absolute bound
        (``math.isclose``); 0.0 demands exact equality.
        """
        if self.agent_id != other.agent_id or type(self).__name__ != type(other).__name__:
            return False
        for field_name in self._state_fields:
            mine = self._state[field_name]
            theirs = other._state[field_name]
            if isinstance(mine, (int, float)) and isinstance(theirs, (int, float)):
                if not math.isclose(mine, theirs, rel_tol=tolerance, abs_tol=tolerance):
                    return False
            elif mine != theirs:
                return False
        return True

    def approximate_size_bytes(self) -> int:
        """Modeled wire footprint: one row of a columnar delta frame.

        Delegates to :func:`repro.ipc.sizing.agent_frame_bytes` — the one
        formula behind every byte account — so the cost model's virtual
        time and the measured socket traffic are charged from the same
        sizes.  (Imported lazily: ``core`` must not depend on ``ipc`` at
        import time.)
        """
        from repro.ipc.sizing import agent_frame_bytes

        return agent_frame_bytes(self)

    def __repr__(self) -> str:
        position = ", ".join(f"{value:.3g}" for value in self.position())
        return f"<{type(self).__name__} #{self.agent_id} @ ({position})>"

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        """Iterate over ``(state field name, value)`` pairs."""
        return iter(self._state.items())
