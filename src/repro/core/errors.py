"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class AgentDefinitionError(ReproError):
    """An agent class is declared incorrectly (bad fields, duplicate names...)."""


class PhaseViolationError(ReproError):
    """A state/effect access violated the state-effect pattern.

    Raised when, for example, a state field is written during the query phase
    or an effect field is read during the query phase.
    """


class VisibilityError(ReproError):
    """An agent touched another agent outside of its visible region."""


class CombinatorError(ReproError):
    """An effect combinator was used incorrectly (type mismatch, unknown name)."""


class WorldError(ReproError):
    """The simulation world is in an inconsistent configuration."""


class PartitioningError(ReproError):
    """A spatial partitioning function was configured or queried incorrectly."""


class MapReduceError(ReproError):
    """Raised by the generic MapReduce engine for malformed jobs."""


class ExecutorError(MapReduceError):
    """A parallel execution backend could not run a task.

    The most common cause is handing the :class:`ProcessExecutor` a task that
    cannot be pickled (a lambda, a closure, or an agent whose class was built
    dynamically and is not importable by name).
    """


class NodeLossError(ExecutorError):
    """A cluster node died mid-run and the executor degraded instead of
    tearing the cluster down.

    ``node_index`` is the first node observed dead, ``lost_shards`` the
    shards whose resident state was lost (after any re-admission or
    rehoming — survivors keep theirs), and ``action`` what supervision
    managed: ``"respawned"``, ``"readmitted"``, ``"rehomed"`` or
    ``"lost"``.  Callers holding checkpoints recover by restoring the
    survivors in place and re-seeding only ``lost_shards``
    (:meth:`~repro.cluster.client.ClusterExecutor.reseed_shards`).
    """

    def __init__(self, message, *, node_index, lost_shards=(), action=None):
        super().__init__(message)
        self.node_index = node_index
        self.lost_shards = tuple(lost_shards)
        self.action = action


class ClusterError(ReproError):
    """Raised by the simulated cluster (unknown node, routing failure...)."""


class BraceError(ReproError):
    """Raised by the BRACE runtime."""


class CheckpointError(BraceError):
    """Checkpointing or recovery failed."""


class LoadBalanceError(BraceError):
    """The load balancer produced an invalid repartitioning."""


class HistoryError(ReproError):
    """The persistent tick-history store was used or configured incorrectly.

    Raised for unreadable or already-populated store directories, requests
    for ticks that were never recorded (or whose deltas were thinned away by
    a retention policy), and recording gaps — ticks executed outside the
    recording session, e.g. directly through the runtime escape hatch.
    """


class SimulationSessionError(ReproError):
    """A :class:`repro.api.Simulation` session was used out of order.

    Raised for lifecycle violations — running a closed session, resuming a
    session that was never paused, re-entering a stream that is already being
    consumed — with a message saying which call was expected instead.
    """


class BrasilError(ReproError):
    """Base class for BRASIL compilation errors."""


class BrasilSyntaxError(BrasilError):
    """The BRASIL source text could not be parsed."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(f"{message}{location}")


class BrasilSemanticError(BrasilError):
    """The BRASIL program violates the state-effect pattern or typing rules."""


class BrasilRuntimeError(BrasilError):
    """A compiled BRASIL program failed while executing."""
