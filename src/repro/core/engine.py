"""The sequential reference engine.

This engine runs the state-effect tick loop on a single Python process with
no partitioning, replication or distribution.  It is the semantic ground
truth: the BRACE runtime, regardless of worker count or optimizations, must
produce exactly the same agent states after every tick (see the equivalence
tests in ``tests/brace/``).

It also doubles as the single-node performance subject of Figures 3 and 4 —
the ``index`` argument switches between the quadratic nested-loop join
(``None``) and the log-linear indexed join (``"kdtree"``, ``"grid"``,
``"quadtree"``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.context import QueryContext, UpdateContext
from repro.core.phase import Phase, phase
from repro.core.world import World


@dataclass
class TickStatistics:
    """Measurements for one simulated tick."""

    tick: int
    num_agents: int
    query_seconds: float
    update_seconds: float
    total_seconds: float
    work_units: int
    index_probes: int
    spawned: int = 0
    killed: int = 0

    @property
    def agent_ticks(self) -> int:
        """Number of agent-ticks processed (the paper's throughput unit)."""
        return self.num_agents


@dataclass
class RunStatistics:
    """Aggregated measurements for a multi-tick run."""

    ticks: list[TickStatistics] = field(default_factory=list)

    def add(self, tick_stats: TickStatistics) -> None:
        """Append the statistics of one tick."""
        self.ticks.append(tick_stats)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across every recorded tick."""
        return sum(t.total_seconds for t in self.ticks)

    @property
    def total_agent_ticks(self) -> int:
        """Total number of agent-ticks processed."""
        return sum(t.agent_ticks for t in self.ticks)

    @property
    def total_work_units(self) -> int:
        """Total abstract work units (candidate evaluations) performed."""
        return sum(t.work_units for t in self.ticks)

    def throughput(self) -> float:
        """Agent-ticks per second of wall-clock time."""
        seconds = self.total_seconds
        if seconds == 0:
            return 0.0
        return self.total_agent_ticks / seconds

    def discard_warmup(self, warmup_ticks: int) -> "RunStatistics":
        """Return statistics with the first ``warmup_ticks`` ticks removed.

        The paper eliminates start-up transients "by discarding initial ticks
        until a stable tick rate is achieved".
        """
        trimmed = RunStatistics()
        trimmed.ticks = self.ticks[warmup_ticks:]
        return trimmed


class SequentialEngine:
    """Single-process reference implementation of the tick loop.

    Parameters
    ----------
    world:
        The :class:`~repro.core.world.World` to simulate (mutated in place).
    index:
        Spatial index for the query phase: ``"kdtree"``, ``"grid"``,
        ``"quadtree"`` or ``None`` for the nested-loop join.
    cell_size:
        Cell size when ``index == "grid"``.
    check_visibility:
        Forwarded to the query context; disable only for benchmarks.
    spatial_backend:
        ``"python"``, ``"vectorized"`` or ``None`` (automatic) — how the
        query phase's spatial joins execute; states are bit-identical
        either way.
    on_tick_end:
        Optional callback ``f(world, tick_statistics)`` invoked after every tick.
    """

    def __init__(
        self,
        world: World,
        index: str | None = "kdtree",
        cell_size: float | None = None,
        check_visibility: bool = True,
        spatial_backend: str | None = None,
        on_tick_end: Callable[[World, TickStatistics], None] | None = None,
    ):
        self.world = world
        self.index = index
        self.cell_size = cell_size
        self.check_visibility = check_visibility
        self.spatial_backend = spatial_backend
        self.on_tick_end = on_tick_end
        self.statistics = RunStatistics()

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    def run_tick(self) -> TickStatistics:
        """Execute one tick (query phase, update phase, births/deaths)."""
        world = self.world
        agents = world.agents()
        tick_start = time.perf_counter()

        for agent in agents:
            agent.reset_effects()

        query_context = QueryContext(
            agents,
            tick=world.tick,
            seed=world.seed,
            index=self.index,
            cell_size=self.cell_size,
            check_visibility=self.check_visibility,
            spatial_backend=self.spatial_backend,
        )
        query_start = time.perf_counter()
        with phase(Phase.QUERY):
            for agent in agents:
                agent.query(query_context)
        query_seconds = time.perf_counter() - query_start

        update_context = UpdateContext(
            tick=world.tick, seed=world.seed, world_bounds=world.bounds
        )
        update_start = time.perf_counter()
        with phase(Phase.UPDATE):
            for agent in agents:
                agent._updating = True
                try:
                    agent.update(update_context)
                finally:
                    agent._updating = False
        update_seconds = time.perf_counter() - update_start

        spawned_agents, killed_ids = apply_births_and_deaths(world, update_context)
        spawned, killed = len(spawned_agents), len(killed_ids)
        world.tick += 1

        total_seconds = time.perf_counter() - tick_start
        tick_stats = TickStatistics(
            tick=world.tick - 1,
            num_agents=len(agents),
            query_seconds=query_seconds,
            update_seconds=update_seconds,
            total_seconds=total_seconds,
            work_units=query_context.work_units,
            index_probes=query_context.index_probes,
            spawned=spawned,
            killed=killed,
        )
        self.statistics.add(tick_stats)
        if self.on_tick_end is not None:
            self.on_tick_end(world, tick_stats)
        return tick_stats

    def run(self, ticks: int) -> RunStatistics:
        """Execute ``ticks`` ticks and return the accumulated statistics."""
        for _ in range(ticks):
            self.run_tick()
        return self.statistics


def apply_births_and_deaths(
    world: World, update_context: UpdateContext
) -> tuple[list[Any], list[Any]]:
    """Apply the spawn/kill requests collected during an update phase.

    Requests are applied in a deterministic order (kills first, then spawns
    sorted by ``(parent id, per-parent sequence)``) so that a sequential run
    and a distributed run allocate identical ids to identical children.
    Returns ``(spawned agents, killed agent ids)``.
    """
    killed_ids: list[Any] = []
    for agent_id in sorted(update_context.kill_requests, key=repr):
        if world.has_agent(agent_id):
            world.remove_agent(agent_id)
            killed_ids.append(agent_id)

    spawn_requests = sorted(
        update_context.spawn_requests, key=lambda request: (repr(request[0]), request[1])
    )
    new_ids = world.allocate_ids(len(spawn_requests))
    spawned_agents: list[Any] = []
    for (parent_id, sequence, child), new_id in zip(spawn_requests, new_ids):
        child.agent_id = new_id
        world.add_agent(child)
        spawned_agents.append(child)
    return spawned_agents, killed_ids
