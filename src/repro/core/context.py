"""Query- and update-phase contexts handed to agent behaviour code.

The *query context* is how an agent sees the rest of the world during the
query phase: it can enumerate the agents inside its visible region (a spatial
index accelerates the lookup) and draw deterministic random numbers.  The
*update context* lets an agent draw random numbers and request births and
deaths, which the engine applies at the tick boundary.

Both the sequential reference engine and the BRACE workers build the same
context classes, so agent code is oblivious to where it runs — exactly the
transparency BRASIL promises domain scientists.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.core.errors import VisibilityError, WorldError
from repro.spatial.bbox import BBox
from repro.spatial.grid import UniformGrid
from repro.spatial.kdtree import KDTree
from repro.spatial.quadtree import QuadTree


def agent_rng(seed: int, tick: int, agent_id: Any) -> np.random.Generator:
    """A deterministic per-(seed, tick, agent) random generator.

    The stream depends only on the triple, never on execution order, so a
    sequential run and a distributed BRACE run draw identical numbers for the
    same agent at the same tick — the foundation of the equivalence tests.
    """
    if isinstance(agent_id, (tuple, list)):
        components = [int(part) for part in agent_id]
    else:
        components = [int(agent_id)]
    return np.random.default_rng([int(seed) & 0x7FFFFFFF, int(tick), *components])


class QueryContext:
    """The read-only view of the world an agent gets during the query phase.

    Parameters
    ----------
    agents:
        Every agent this context can serve (the full extent for the
        sequential engine; owned agents plus replicas for a BRACE worker).
    tick:
        Current tick number.
    seed:
        Simulation seed used for the per-agent random streams.
    index:
        ``"kdtree"``, ``"grid"``, ``"quadtree"`` or ``None`` (linear scan).
    cell_size:
        Grid cell size when ``index == "grid"``.
    check_visibility:
        When True, :meth:`neighbors` raises :class:`VisibilityError` if asked
        for a radius larger than the probing agent's declared visibility.
    """

    def __init__(
        self,
        agents: Sequence[Any],
        tick: int,
        seed: int,
        index: str | None = "kdtree",
        cell_size: float | None = None,
        check_visibility: bool = True,
    ):
        self._agents = list(agents)
        self.tick = tick
        self.seed = seed
        self.index_kind = index
        self.check_visibility = check_visibility
        self.work_units = 0
        self.index_probes = 0
        self._index = self._build_index(index, cell_size)

    def _build_index(self, index: str | None, cell_size: float | None):
        if index is None or not self._agents:
            return None
        key = lambda agent: agent.position()
        if index == "kdtree":
            return KDTree(self._agents, key=key)
        if index == "grid":
            if cell_size is None:
                cell_size = self._default_cell_size()
            return UniformGrid(self._agents, cell_size, key=key)
        if index == "quadtree":
            return QuadTree(self._agents, key=key)
        raise WorldError(f"unknown spatial index {index!r}")

    def _default_cell_size(self) -> float:
        radii = [
            radius
            for agent in self._agents
            for radius in agent.visibility_radii()
            if radius is not None
        ]
        return max(radii) if radii else 1.0

    # ------------------------------------------------------------------
    # Extent access
    # ------------------------------------------------------------------
    def agents(self) -> list[Any]:
        """Every agent visible to this context (the BRASIL ``Extent``)."""
        self.work_units += len(self._agents)
        return list(self._agents)

    def __len__(self) -> int:
        return len(self._agents)

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def neighbors(
        self,
        agent: Any,
        radius: float | None = None,
        include_self: bool = False,
    ) -> list[Any]:
        """Agents within Euclidean ``radius`` of ``agent``.

        ``radius`` defaults to the agent's smallest declared visibility bound.
        """
        if radius is None:
            radius = self._default_radius(agent)
        self._check_radius(agent, radius)
        center = agent.position()
        candidates = self._candidates(BBox.around(center, radius))
        radius_sq = radius * radius
        matches = []
        for candidate in candidates:
            if candidate is agent and not include_self:
                continue
            point = candidate.position()
            dist_sq = sum((p - c) ** 2 for p, c in zip(point, center))
            if dist_sq <= radius_sq:
                matches.append(candidate)
        self.work_units += len(candidates)
        return matches

    def neighbors_in_box(self, agent: Any, box: BBox, include_self: bool = False) -> list[Any]:
        """Agents whose position lies inside ``box``."""
        candidates = self._candidates(box)
        matches = []
        for candidate in candidates:
            if candidate is agent and not include_self:
                continue
            if box.contains_point(candidate.position()):
                matches.append(candidate)
        self.work_units += len(candidates)
        return matches

    def visible(self, agent: Any, include_self: bool = False) -> list[Any]:
        """Agents inside ``agent``'s declared visible region (box semantics)."""
        region = agent.visible_region()
        if region is None:
            result = [a for a in self._agents if include_self or a is not agent]
            self.work_units += len(self._agents)
            return result
        return self.neighbors_in_box(agent, region, include_self=include_self)

    def nearest(self, agent: Any, k: int = 1, max_radius: float | None = None) -> list[Any]:
        """Up to ``k`` nearest other agents, optionally within ``max_radius``."""
        center = agent.position()
        if isinstance(self._index, KDTree):
            self.index_probes += 1
            # Ask for one extra in case the agent itself is indexed here.
            found = [a for a in self._index.k_nearest(center, k + 1) if a is not agent][:k]
        else:
            ranked = sorted(
                (a for a in self._agents if a is not agent),
                key=lambda a: sum((p - c) ** 2 for p, c in zip(a.position(), center)),
            )
            self.work_units += len(self._agents)
            found = ranked[:k]
        if max_radius is not None:
            radius_sq = max_radius * max_radius
            found = [
                a
                for a in found
                if sum((p - c) ** 2 for p, c in zip(a.position(), center)) <= radius_sq
            ]
        return found

    def rng(self, agent: Any) -> np.random.Generator:
        """Deterministic random generator for ``agent`` at this tick."""
        return agent_rng(self.seed, self.tick, agent.agent_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidates(self, box: BBox) -> Iterable[Any]:
        if self._index is None:
            return self._agents
        self.index_probes += 1
        self.work_units += max(1, int(math.log2(len(self._agents) + 1)))
        return self._index.range_query(box)

    def _default_radius(self, agent: Any) -> float:
        radii = [radius for radius in agent.visibility_radii() if radius is not None]
        if not radii:
            raise WorldError(
                f"{type(agent).__name__} has no bounded visibility; pass an explicit radius"
            )
        return min(radii)

    def _check_radius(self, agent: Any, radius: float) -> None:
        if not self.check_visibility:
            return
        for bound in agent.visibility_radii():
            if bound is not None and radius > bound * (1 + 1e-9):
                raise VisibilityError(
                    f"{type(agent).__name__} #{agent.agent_id} queried radius {radius} "
                    f"which exceeds its visibility bound {bound}"
                )


class UpdateContext:
    """The view an agent gets during the update phase.

    Only the agent's own state and aggregated effects may be read; the context
    additionally offers deterministic randomness and birth/death requests.
    """

    def __init__(self, tick: int, seed: int, world_bounds: BBox | None = None):
        self.tick = tick
        self.seed = seed
        self.world_bounds = world_bounds
        self._spawn_requests: list[tuple[Any, int, Any]] = []
        self._kill_requests: set[Any] = set()
        self._spawn_counts: dict[Any, int] = {}

    def rng(self, agent: Any) -> np.random.Generator:
        """Deterministic random generator for ``agent`` at this tick.

        The stream is offset from the query-phase stream so query and update
        draws never overlap.
        """
        return agent_rng(self.seed ^ 0x5BD1E995, self.tick, agent.agent_id)

    def spawn(self, parent: Any, child: Any) -> None:
        """Request that ``child`` (an agent without an id) joins the world next tick."""
        sequence = self._spawn_counts.get(parent.agent_id, 0)
        self._spawn_counts[parent.agent_id] = sequence + 1
        self._spawn_requests.append((parent.agent_id, sequence, child))

    def kill(self, agent: Any) -> None:
        """Request that ``agent`` is removed from the world at the tick boundary."""
        self._kill_requests.add(agent.agent_id)

    @property
    def spawn_requests(self) -> list[tuple[Any, int, Any]]:
        """Pending ``(parent_id, sequence, child)`` spawn requests."""
        return list(self._spawn_requests)

    @property
    def kill_requests(self) -> set[Any]:
        """Ids of agents whose removal has been requested."""
        return set(self._kill_requests)

    def merge(self, other: "UpdateContext") -> None:
        """Fold another context's birth/death requests into this one.

        Used by the BRACE master to combine the requests collected by every
        worker before applying them globally in a deterministic order.
        """
        self._spawn_requests.extend(other._spawn_requests)
        self._kill_requests.update(other._kill_requests)
