"""Query- and update-phase contexts handed to agent behaviour code.

The *query context* is how an agent sees the rest of the world during the
query phase: it can enumerate the agents inside its visible region (a spatial
index accelerates the lookup) and draw deterministic random numbers.  The
*update context* lets an agent draw random numbers and request births and
deaths, which the engine applies at the tick boundary.

Both the sequential reference engine and the BRACE workers build the same
context classes, so agent code is oblivious to where it runs — exactly the
transparency BRASIL promises domain scientists.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.core.errors import VisibilityError, WorldError
from repro.core.ordering import agent_sort_key
from repro.spatial.bbox import BBox
from repro.spatial.columnar import PointSet, VectorizedGrid, batch_neighbor_lists
from repro.spatial.grid import UniformGrid
from repro.spatial.kdtree import KDTree
from repro.spatial.quadtree import QuadTree

#: Extent size from which ``spatial_backend=None`` (auto) prefers the
#: columnar kernels: below this the per-tick snapshot costs more than the
#: handful of interpreted probes it replaces.
AUTO_VECTORIZE_MIN_AGENTS = 64


def resolve_spatial_backend(backend: str | None, index: str | None, num_agents: int) -> str:
    """Resolve a ``spatial_backend`` knob to ``"python"`` or ``"vectorized"``.

    ``None`` (auto) picks the vectorized columnar kernels when an index was
    requested (``index=None`` is an explicit ask for the un-indexed
    nested-loop baseline, which stays interpreted so the Figure 3/4
    no-indexing series keep their meaning) and the extent is large enough
    to amortize the snapshot.
    """
    if backend in ("python", "vectorized"):
        return backend
    if backend is not None:
        raise WorldError(
            f"unknown spatial backend {backend!r}; expected 'python', "
            "'vectorized' or None for automatic selection"
        )
    if index is not None and num_agents >= AUTO_VECTORIZE_MIN_AGENTS:
        return "vectorized"
    return "python"


def agent_rng(seed: int, tick: int, agent_id: Any) -> np.random.Generator:
    """A deterministic per-(seed, tick, agent) random generator.

    The stream depends only on the triple, never on execution order, so a
    sequential run and a distributed BRACE run draw identical numbers for the
    same agent at the same tick — the foundation of the equivalence tests.
    """
    if isinstance(agent_id, (tuple, list)):
        components = [int(part) for part in agent_id]
    else:
        components = [int(agent_id)]
    return np.random.default_rng([int(seed) & 0x7FFFFFFF, int(tick), *components])


class QueryContext:
    """The read-only view of the world an agent gets during the query phase.

    Parameters
    ----------
    agents:
        Every agent this context can serve (the full extent for the
        sequential engine; owned agents plus replicas for a BRACE worker).
    tick:
        Current tick number.
    seed:
        Simulation seed used for the per-agent random streams.
    index:
        ``"kdtree"``, ``"grid"``, ``"quadtree"`` or ``None`` (linear scan).
    cell_size:
        Grid cell size when ``index == "grid"``.
    check_visibility:
        When True, :meth:`neighbors` raises :class:`VisibilityError` if asked
        for a radius larger than the probing agent's declared visibility.
    spatial_backend:
        ``"python"`` (interpreted per-probe queries against the chosen
        index), ``"vectorized"`` (columnar batch kernels answering every
        probe of the tick in a handful of array operations) or ``None`` for
        automatic selection (:func:`resolve_spatial_backend`).
    snapshot:
        Optional prebuilt :class:`~repro.spatial.columnar.PointSet` over
        exactly these agents in canonical (:func:`agent_sort_key`) order —
        how a worker reuses the positions it already packed during the
        distribution phase.  Ignored by the python backend.

    Both backends return neighbour/visible matches in the *canonical agent
    order* (ascending :func:`agent_sort_key`), so every floating-point
    accumulation an agent performs over its matches is bit-identical
    regardless of backend, index choice, or how the extent was assembled.
    """

    def __init__(
        self,
        agents: Sequence[Any],
        tick: int,
        seed: int,
        index: str | None = "kdtree",
        cell_size: float | None = None,
        check_visibility: bool = True,
        spatial_backend: str | None = None,
        snapshot: PointSet | None = None,
    ):
        self._agents = list(agents)
        self.tick = tick
        self.seed = seed
        self.index_kind = index
        self.check_visibility = check_visibility
        self.work_units = 0
        self.index_probes = 0
        self.spatial_backend = resolve_spatial_backend(
            spatial_backend, index, len(self._agents)
        )
        self._snapshot = snapshot if self.spatial_backend == "vectorized" else None
        self._canonical_list: list[Any] | None = (
            list(snapshot.items) if self._snapshot is not None else None
        )
        self._canonical_rank: dict[int, int] | None = None
        #: radius -> (per-row neighbour arrays, per-row examined counts).
        self._neighbor_batches: dict[float, tuple] = {}
        #: Lazily computed per-row visible-region matches (vectorized only).
        self._visible_batch = None
        if self.spatial_backend == "vectorized":
            self._index = None
        else:
            self._index = self._build_index(index, cell_size)

    def _build_index(self, index: str | None, cell_size: float | None):
        if index is None or not self._agents:
            return None
        key = lambda agent: agent.position()
        if index == "kdtree":
            return KDTree(self._agents, key=key)
        if index == "grid":
            if cell_size is None:
                cell_size = self._default_cell_size()
            return UniformGrid(self._agents, cell_size, key=key)
        if index == "quadtree":
            return QuadTree(self._agents, key=key)
        raise WorldError(f"unknown spatial index {index!r}")

    def _default_cell_size(self) -> float:
        radii = [
            radius
            for agent in self._agents
            for radius in agent.visibility_radii()
            if radius is not None
        ]
        return max(radii) if radii else 1.0

    # ------------------------------------------------------------------
    # Extent access
    # ------------------------------------------------------------------
    def agents(self) -> list[Any]:
        """Every agent visible to this context (the BRASIL ``Extent``)."""
        self.work_units += len(self._agents)
        return list(self._agents)

    def __len__(self) -> int:
        return len(self._agents)

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def neighbors(
        self,
        agent: Any,
        radius: float | None = None,
        include_self: bool = False,
    ) -> list[Any]:
        """Agents within Euclidean ``radius`` of ``agent``, in canonical order.

        ``radius`` defaults to the agent's smallest declared visibility bound.
        """
        if radius is None:
            radius = self._default_radius(agent)
        self._check_radius(agent, radius)
        radius = float(radius)
        if self.spatial_backend == "vectorized":
            return self._neighbors_vectorized(agent, radius, include_self)
        center = agent.position()
        candidates = self._candidates(BBox.around(center, radius))
        radius_sq = radius * radius
        matches = []
        for candidate in candidates:
            if candidate is agent and not include_self:
                continue
            point = candidate.position()
            dist_sq = sum((p - c) ** 2 for p, c in zip(point, center))
            if dist_sq <= radius_sq:
                matches.append(candidate)
        self.work_units += len(candidates)
        return self._in_canonical_order(matches)

    def neighbors_in_box(self, agent: Any, box: BBox, include_self: bool = False) -> list[Any]:
        """Agents whose position lies inside ``box``, in canonical order."""
        if self.spatial_backend == "vectorized":
            snapshot = self._ensure_snapshot()
            rows = snapshot.scan_box(box.lows, box.highs)
            self.work_units += self._probe_work(len(rows))
            self.index_probes += 1
            return self._materialize(snapshot, rows, agent, include_self)
        candidates = self._candidates(box)
        matches = []
        for candidate in candidates:
            if candidate is agent and not include_self:
                continue
            if box.contains_point(candidate.position()):
                matches.append(candidate)
        self.work_units += len(candidates)
        return self._in_canonical_order(matches)

    def visible(self, agent: Any, include_self: bool = False) -> list[Any]:
        """Agents inside ``agent``'s declared visible region, in canonical order."""
        if self.spatial_backend == "vectorized":
            return self._visible_vectorized(agent, include_self)
        region = agent.visible_region()
        if region is None:
            result = [
                a for a in self._canonical_agents() if include_self or a is not agent
            ]
            self.work_units += len(self._agents)
            return result
        return self.neighbors_in_box(agent, region, include_self=include_self)

    def nearest(self, agent: Any, k: int = 1, max_radius: float | None = None) -> list[Any]:
        """Up to ``k`` nearest other agents, optionally within ``max_radius``.

        The vectorized backend breaks exact distance ties by canonical order;
        the k-d tree path breaks them by traversal order.
        """
        center = agent.position()
        if self.spatial_backend == "vectorized":
            found = self._nearest_vectorized(agent, center, k)
        elif isinstance(self._index, KDTree):
            self.index_probes += 1
            # Ask for one extra in case the agent itself is indexed here.
            found = [a for a in self._index.k_nearest(center, k + 1) if a is not agent][:k]
        else:
            ranked = sorted(
                (a for a in self._agents if a is not agent),
                key=lambda a: sum((p - c) ** 2 for p, c in zip(a.position(), center)),
            )
            self.work_units += len(self._agents)
            found = ranked[:k]
        if max_radius is not None:
            radius_sq = max_radius * max_radius
            found = [
                a
                for a in found
                if sum((p - c) ** 2 for p, c in zip(a.position(), center)) <= radius_sq
            ]
        return found

    def rng(self, agent: Any) -> np.random.Generator:
        """Deterministic random generator for ``agent`` at this tick."""
        return agent_rng(self.seed, self.tick, agent.agent_id)

    # ------------------------------------------------------------------
    # Internals — canonical ordering
    # ------------------------------------------------------------------
    def _canonical_agents(self) -> list[Any]:
        """The extent in canonical order (also the snapshot's row order)."""
        if self._canonical_list is None:
            self._canonical_list = sorted(
                self._agents, key=lambda agent: agent_sort_key(agent.agent_id)
            )
        return self._canonical_list

    def _rank(self) -> dict[int, int]:
        """Object id → canonical rank, built once per context."""
        if self._canonical_rank is None:
            self._canonical_rank = {
                id(agent): rank for rank, agent in enumerate(self._canonical_agents())
            }
        return self._canonical_rank

    def _in_canonical_order(self, matches: list[Any]) -> list[Any]:
        """Sort ``matches`` into canonical order (in place, returned)."""
        if len(matches) > 1:
            rank = self._rank()
            matches.sort(key=lambda agent: rank[id(agent)])
        return matches

    # ------------------------------------------------------------------
    # Internals — vectorized backend
    # ------------------------------------------------------------------
    def _ensure_snapshot(self) -> PointSet:
        """The columnar snapshot over the extent, built at most once."""
        if self._snapshot is None:
            self._snapshot = PointSet(
                self._canonical_agents(), key=lambda agent: agent.position()
            )
        return self._snapshot

    def _materialize(self, snapshot, rows, agent, include_self) -> list[Any]:
        """Turn match rows into agent objects, honouring self-exclusion."""
        row = snapshot.row_of(agent)
        if not include_self and row is not None:
            rows = rows[rows != row]
            return snapshot.take(rows)
        matches = snapshot.take(rows)
        if not include_self and row is None:
            matches = [match for match in matches if match is not agent]
        return matches

    def _probe_work(self, candidates: int) -> int:
        """The python backend's work charge for one indexed probe.

        One log-cost index descent plus the surfaced candidates — charged
        identically on both backends so virtual-time measurements stay
        comparable when the backend flips between runs or worker sizes.
        """
        return max(1, int(math.log2(len(self._agents) + 1))) + candidates

    def _neighbors_vectorized(self, agent, radius, include_self) -> list[Any]:
        snapshot = self._ensure_snapshot()
        row = snapshot.row_of(agent)
        self.index_probes += 1
        if row is None:
            # Probe from outside the extent: one columnar scan.
            rows = snapshot.scan_radius(agent.position(), radius)
            self.work_units += self._probe_work(len(rows))
            return self._materialize(snapshot, rows, agent, include_self)
        batch = self._neighbor_batches.get(radius)
        if batch is None:
            batch = batch_neighbor_lists(snapshot, radius, include_self=True)
            self._neighbor_batches[radius] = batch
        lists, examined = batch
        self.work_units += self._probe_work(int(examined[row]))
        rows = lists[row]
        if not include_self:
            rows = rows[rows != row]
        return snapshot.take(rows)

    def _visible_vectorized(self, agent, include_self) -> list[Any]:
        snapshot = self._ensure_snapshot()
        region = agent.visible_region()
        if region is None:
            # Mirror the interpreted path exactly, including its work charge:
            # a full-extent scan, no index probe.
            self.work_units += len(self._agents)
            return [a for a in snapshot.items if include_self or a is not agent]
        row = snapshot.row_of(agent)
        self.index_probes += 1
        if row is None:
            rows = snapshot.scan_box(region.lows, region.highs)
            self.work_units += self._probe_work(len(rows))
            return self._materialize(snapshot, rows, agent, include_self)
        if self._visible_batch is None:
            self._visible_batch = self._build_visible_batch(snapshot)
        lists, examined = self._visible_batch
        self.work_units += self._probe_work(int(examined[row]))
        rows = lists[row]
        if not include_self:
            rows = rows[rows != row]
        return snapshot.take(rows)

    def _build_visible_batch(self, snapshot: PointSet):
        """Batch σ_V probe: every row's declared visible region at once.

        Rows with unbounded visibility never consult the batch (they take
        the full-extent path above), so their probe boxes are voided —
        the kernel marks them invalid and does no work for them.
        """
        points = snapshot.points
        lows = np.empty_like(points)
        highs = np.empty_like(points)
        sides: list[Any] = []
        for row, candidate in enumerate(snapshot.items):
            region = candidate.visible_region()
            if region is None:
                lows[row] = np.inf
                highs[row] = -np.inf
            else:
                lows[row] = region.lows
                highs[row] = region.highs
                sides.append(highs[row] - lows[row])
        if sides:
            cell = np.maximum(np.max(sides, axis=0), 1e-12)
        else:
            cell = np.maximum(points.max(axis=0) - points.min(axis=0), 1.0)
        grid = VectorizedGrid(snapshot, cell)
        probe_ids, rows, examined = grid.batch_range_query(lows, highs)
        cuts = np.searchsorted(probe_ids, np.arange(1, len(snapshot)))
        return np.split(rows, cuts), examined

    def _nearest_vectorized(self, agent, center, k: int) -> list[Any]:
        snapshot = self._ensure_snapshot()
        points = snapshot.points
        # Charge what the python path would for the configured index, so
        # virtual-time accounting stays backend-independent.
        if self.index_kind == "kdtree":
            self.index_probes += 1
        else:
            self.work_units += len(self._agents)
        if len(points) == 0 or k <= 0:
            return []
        center_arr = np.asarray(tuple(map(float, center)), dtype=np.float64)
        diff = points - center_arr
        dist_sq = diff[:, 0] * diff[:, 0]
        for dimension in range(1, points.shape[1]):
            dist_sq = dist_sq + diff[:, dimension] * diff[:, dimension]
        order = np.argsort(dist_sq, kind="stable")
        row = snapshot.row_of(agent)
        found = []
        for candidate_row in order:
            candidate = snapshot.items[int(candidate_row)]
            if candidate is agent or (row is not None and int(candidate_row) == row):
                continue
            found.append(candidate)
            if len(found) == k:
                break
        return found

    def _candidates(self, box: BBox) -> Iterable[Any]:
        if self._index is None:
            return self._agents
        self.index_probes += 1
        self.work_units += max(1, int(math.log2(len(self._agents) + 1)))
        return self._index.range_query(box)

    def _default_radius(self, agent: Any) -> float:
        radii = [radius for radius in agent.visibility_radii() if radius is not None]
        if not radii:
            raise WorldError(
                f"{type(agent).__name__} has no bounded visibility; pass an explicit radius"
            )
        return min(radii)

    def _check_radius(self, agent: Any, radius: float) -> None:
        if not self.check_visibility:
            return
        for bound in agent.visibility_radii():
            if bound is not None and radius > bound * (1 + 1e-9):
                raise VisibilityError(
                    f"{type(agent).__name__} #{agent.agent_id} queried radius {radius} "
                    f"which exceeds its visibility bound {bound}"
                )


class UpdateContext:
    """The view an agent gets during the update phase.

    Only the agent's own state and aggregated effects may be read; the context
    additionally offers deterministic randomness and birth/death requests.
    """

    def __init__(self, tick: int, seed: int, world_bounds: BBox | None = None):
        self.tick = tick
        self.seed = seed
        self.world_bounds = world_bounds
        self._spawn_requests: list[tuple[Any, int, Any]] = []
        self._kill_requests: set[Any] = set()
        self._spawn_counts: dict[Any, int] = {}

    def rng(self, agent: Any) -> np.random.Generator:
        """Deterministic random generator for ``agent`` at this tick.

        The stream is offset from the query-phase stream so query and update
        draws never overlap.
        """
        return agent_rng(self.seed ^ 0x5BD1E995, self.tick, agent.agent_id)

    def spawn(self, parent: Any, child: Any) -> None:
        """Request that ``child`` (an agent without an id) joins the world next tick."""
        sequence = self._spawn_counts.get(parent.agent_id, 0)
        self._spawn_counts[parent.agent_id] = sequence + 1
        self._spawn_requests.append((parent.agent_id, sequence, child))

    def kill(self, agent: Any) -> None:
        """Request that ``agent`` is removed from the world at the tick boundary."""
        self._kill_requests.add(agent.agent_id)

    @property
    def spawn_requests(self) -> list[tuple[Any, int, Any]]:
        """Pending ``(parent_id, sequence, child)`` spawn requests."""
        return list(self._spawn_requests)

    @property
    def kill_requests(self) -> set[Any]:
        """Ids of agents whose removal has been requested."""
        return set(self._kill_requests)

    def merge(self, other: "UpdateContext") -> None:
        """Fold another context's birth/death requests into this one.

        Used by the BRACE master to combine the requests collected by every
        worker before applying them globally in a deterministic order.
        """
        self._spawn_requests.extend(other._spawn_requests)
        self._kill_requests.update(other._kill_requests)
